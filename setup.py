"""Setuptools entry point.

The pinned environment ships setuptools without the ``wheel`` package, so the
PEP 517 editable-install path (``build_editable`` -> ``bdist_wheel``) is not
available.  Keeping a ``setup.py`` allows ``pip install -e .`` to fall back to
the legacy ``setup.py develop`` code path, which works offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of 'Breaking Boundaries: Distributed Domain "
        "Decomposition with Scalable Physics-Informed Neural PDE Solvers' (SC '23)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
