"""Model checkpointing.

The paper's motivation for fast training is building a *library of
pre-trained SDNets* for different PDEs that can be reused purely through
inference (Section 3).  This module provides the storage side of that
library: models are saved as ``.npz`` archives holding every parameter plus a
JSON-encoded configuration, and can be reloaded either into an existing
module or reconstructed from the stored configuration.

Compiled modules (:class:`repro.engine.CompiledModule`) round-trip through
the same archives: saving stores the *source* module's state (a compiled
module is a derived artifact, never serialized itself), and loading
re-traces — :func:`load_compiled_sdnet` reconstructs the SDNet and compiles
it, while :func:`load_model` into an existing compiled module loads the
state and invalidates its cached graphs.  Re-traced outputs are bitwise
identical to the pre-save compiled outputs.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..models import ConcatSolver, SDNet
from ..nn import Module

__all__ = [
    "save_checkpoint",
    "load_state",
    "load_sdnet",
    "load_model",
    "load_compiled_sdnet",
]


def _unwrap_compiled(model):
    """Return ``(source_module, compiled_or_None)`` for any model argument."""

    from ..engine import CompiledModule

    if isinstance(model, CompiledModule):
        return model.module, model
    return model, None

_CONFIG_KEY = "__config_json__"
_CLASS_KEY = "__model_class__"


def save_checkpoint(model: Module, path: str | Path, config: dict | None = None) -> Path:
    """Save a model's parameters (and optional config) to an ``.npz`` archive.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module`, or a
        :class:`repro.engine.CompiledModule` (its source module's state is
        stored; the compiled graphs are a derived artifact and re-created by
        tracing on load).
    path:
        Target file; the ``.npz`` suffix is added if missing.
    config:
        Constructor configuration to embed (``SDNet.config()`` is used
        automatically when available and no explicit config is given).

    Returns
    -------
    The path actually written.
    """

    model, _ = _unwrap_compiled(model)
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    state = model.state_dict()
    if config is None and hasattr(model, "config"):
        config = model.config()
    payload = {name: np.asarray(value) for name, value in state.items()}
    payload[_CONFIG_KEY] = np.frombuffer(
        json.dumps(config or {}).encode("utf-8"), dtype=np.uint8
    )
    payload[_CLASS_KEY] = np.frombuffer(
        type(model).__name__.encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **payload)
    return path


def _decode(archive, key: str) -> str:
    return bytes(archive[key].tolist()).decode("utf-8")


def load_state(path: str | Path) -> tuple[dict, dict, str]:
    """Load ``(state_dict, config, class_name)`` from a checkpoint archive."""

    path = Path(path)
    with np.load(path) as archive:
        config = json.loads(_decode(archive, _CONFIG_KEY)) if _CONFIG_KEY in archive else {}
        class_name = _decode(archive, _CLASS_KEY) if _CLASS_KEY in archive else ""
        state = {
            name: archive[name]
            for name in archive.files
            if name not in (_CONFIG_KEY, _CLASS_KEY)
        }
    return state, config, class_name


def load_model(path: str | Path, model: Module) -> Module:
    """Load checkpoint parameters into an already-constructed ``model``.

    ``model`` may be a :class:`repro.engine.CompiledModule`: the state loads
    into its source module and the compiled graphs are invalidated so the
    next call re-traces against the restored parameters.
    """

    target, compiled = _unwrap_compiled(model)
    state, _, _ = load_state(path)
    target.load_state_dict(state)
    if compiled is not None:
        compiled.retrace()
    return model


def load_sdnet(path: str | Path, **overrides) -> SDNet:
    """Reconstruct an :class:`SDNet` from a checkpoint written by :func:`save_checkpoint`.

    The stored configuration provides the constructor arguments; keyword
    ``overrides`` take precedence (e.g. to change the activation for an
    ablation while keeping the boundary size).
    """

    state, config, class_name = load_state(path)
    if class_name and class_name != "SDNet":
        raise ValueError(f"checkpoint stores a {class_name}, not an SDNet")
    if not config:
        raise ValueError("checkpoint has no embedded configuration")
    kwargs = dict(config)
    kwargs.update(overrides)
    # Infer architecture sizes not covered by SDNet.config() from the state.
    trunk_layer_names = [k for k in state if k.startswith("trunk.layers.") and k.endswith(".weight")]
    embedding_conv_names = [k for k in state if k.startswith("embedding.convs.") and k.endswith(".weight")]
    kwargs.setdefault("trunk_layers", max(len(trunk_layer_names) - 1, 1))
    if embedding_conv_names:
        channels = tuple(state[name].shape[0] for name in sorted(embedding_conv_names))
        kwargs.setdefault("embedding_channels", channels)
        kwargs.setdefault("conv_kernel_size", state[sorted(embedding_conv_names)[0]].shape[2])
    else:
        kwargs.setdefault("embedding_channels", ())
    kwargs.pop("activation", None)
    model = SDNet(activation=config.get("activation", "gelu"), **kwargs)
    model.load_state_dict(state)
    return model


def load_compiled_sdnet(path: str | Path, **overrides):
    """Reconstruct an SDNet from a checkpoint and compile it for inference.

    The returned :class:`repro.engine.CompiledModule` traces lazily on first
    call; its outputs are bitwise identical to those of a compiled module
    saved before the round-trip (same parameters, same traced operations).
    ``overrides`` are forwarded to :func:`load_sdnet`.
    """

    from ..engine import compile_module

    return compile_module(load_sdnet(path, **overrides))
