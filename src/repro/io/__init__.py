"""Checkpoint I/O for the pre-trained SDNet library."""

from .checkpoint import (
    load_compiled_sdnet,
    load_model,
    load_sdnet,
    load_state,
    save_checkpoint,
)

__all__ = [
    "save_checkpoint",
    "load_state",
    "load_model",
    "load_sdnet",
    "load_compiled_sdnet",
]
