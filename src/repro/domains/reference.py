"""Ground-truth reference solves on composite domains.

The composite analogue of :func:`repro.fd.solve.solve_laplace_from_loop`:
Dirichlet data given along the (re-entrant) composite boundary loop, solved
with the masked finite-difference system of :mod:`repro.fd.masked` on the
bounding-box grid.  Used to evaluate composite Mosaic Flow solves the same
way the rectangular reference evaluates the Fig.-1 benchmark.
"""

from __future__ import annotations

import numpy as np

from ..fd.masked import solve_laplace_masked

__all__ = ["composite_reference_solution"]


def composite_reference_solution(
    geometry,
    boundary_loop: np.ndarray,
    method: str = "direct",
    tol: float = 1e-10,
) -> np.ndarray:
    """Exact masked FD solution of the Laplace BVP posed by ``boundary_loop``.

    ``geometry`` may be a :class:`~repro.domains.geometry.
    CompositeMosaicGeometry` or a plain rectangular :class:`~repro.mosaic.
    geometry.MosaicGeometry` (for which this reduces to the rectangular
    reference solve).  Points outside the domain are zero in the result.
    """

    boundary_field = geometry.insert_global_boundary(boundary_loop)
    return solve_laplace_masked(
        geometry.global_grid(),
        geometry.interior_mask(),
        geometry.boundary_point_mask(),
        boundary_field,
        method=method,
        tol=tol,
    )
