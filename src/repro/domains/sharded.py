"""Load-balanced distributed assembly for composite domains.

On a rectangle every rank of a block partition owns the same number of
anchors (give or take one row/column), so the paper's block decomposition is
automatically balanced.  On a composite domain anchor counts vary wildly
across blocks — a rank whose block falls in a notch owns nothing — so the
dense-assembly stage shards the *anchor list* instead, using
:func:`repro.distributed.cartesian.shard_anchors` (optionally Morton-ordered
for locality) to give every rank an equal share of the subdomain solves.
Each rank accumulates its shard's dense predictions; an allreduce merges the
per-rank sum/count fields before the overlap average.
"""

from __future__ import annotations

import numpy as np

from ..distributed.cartesian import shard_anchors
from ..distributed.comm import Communicator, ReduceOp
from ..distributed.simulated import run_spmd
from ..mosaic.assembly import accumulate_dense_predictions, overlap_average

__all__ = ["sharded_assemble"]


def sharded_assemble(
    field: np.ndarray,
    geometry,
    solver_factory,
    world_size: int,
    boundary_loop: np.ndarray | None = None,
    ordering: str = "row",
    batch_size: int = 256,
    timeout: float = 300.0,
) -> np.ndarray:
    """Dense assembly of a converged lattice field, sharded over ranks.

    Parameters
    ----------
    field:
        Converged global lattice field (bounding-box shape).
    geometry:
        A :class:`~repro.domains.geometry.CompositeMosaicGeometry` or plain
        :class:`~repro.mosaic.geometry.MosaicGeometry`.
    solver_factory:
        ``solver_factory(geometry) -> SubdomainSolver``, one per rank.
    world_size:
        Number of simulated ranks to shard the anchors across.
    boundary_loop:
        Optional global Dirichlet loop restored exactly in the result.
    ordering:
        Anchor ordering of the shards (``"row"`` or ``"morton"``).
    """

    anchors = geometry.anchors()
    shards = shard_anchors(anchors, world_size, ordering=ordering)

    def rank_program(comm: Communicator) -> tuple[np.ndarray, np.ndarray]:
        solver = solver_factory(geometry)
        accumulator, counts = accumulate_dense_predictions(
            field, geometry, solver, shards[comm.rank], batch_size=batch_size
        )
        total_acc = comm.allreduce(accumulator, op=ReduceOp.SUM)
        total_counts = comm.allreduce(counts, op=ReduceOp.SUM)
        return total_acc, total_counts

    accumulator, counts = run_spmd(world_size, rank_program, timeout=timeout)[0]
    solution = overlap_average(accumulator, counts)
    if boundary_loop is not None:
        solution = geometry.insert_global_boundary(boundary_loop, solution)
    return solution
