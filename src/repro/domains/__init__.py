"""Composite (non-rectangular) target domains for Mosaic Flow.

The transferable-subdomain design of the paper makes inference on unseen,
larger *and irregular* geometries possible; this package supplies the
geometric layer for the irregular part:

* :class:`CompositeDomain` — the shape: a validated union of axis-aligned
  rectangles on the half-subdomain step lattice (L-shapes, T-shapes,
  plus-shapes, notched plates, staircases),
* :class:`CompositeMosaicGeometry` — the interface-lattice geometry on such a
  shape, drop-in compatible with :class:`~repro.mosaic.MosaicGeometry`
  everywhere the predictor, the fused serving runner and the dense assembly
  consume geometry,
* :func:`composite_reference_solution` — the masked finite-difference ground
  truth on the composite grid,
* :func:`sharded_assemble` — load-balanced (anchor-count, not block)
  distributed dense assembly for irregular anchor sets.
"""

from .composite import CompositeDomain
from .geometry import CompositeMosaicGeometry
from .reference import composite_reference_solution
from .sharded import sharded_assemble

__all__ = [
    "CompositeDomain",
    "CompositeMosaicGeometry",
    "composite_reference_solution",
    "sharded_assemble",
]
