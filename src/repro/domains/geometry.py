"""Mosaic Flow interface-lattice geometry on composite domains.

:class:`CompositeMosaicGeometry` plays the role of
:class:`~repro.mosaic.geometry.MosaicGeometry` for a non-rectangular target
domain: the union-of-rectangles shape of a :class:`~repro.domains.composite.
CompositeDomain` embedded in its bounding-box grid.  It implements the same
geometric interface — anchors, phases, subdomain windows, local index sets,
lattice masks and the global-boundary accessors — so the sequential predictor,
the fused serving runner and the dense assembly all work on composite domains
unchanged:

* only anchors whose full subdomain window lies inside the domain are
  enumerated (in the same row-major order as the rectangular geometry),
* the global Dirichlet boundary is the *true* re-entrant boundary loop of the
  composite polygon, traced counter-clockwise with the same corner-duplicating
  segment convention as the rectangular ``2*nx + 2*ny`` loop,
* the lattice/convergence masks are restricted to grid points inside the
  domain.

For a domain that happens to be a full rectangle every accessor reduces
*exactly* (bit for bit) to the rectangular geometry, so composite solves of
rectangles reproduce classical results identically.

Construction validates that the decomposition is solvable: every covered step
cell must lie inside at least one anchor window (otherwise part of the domain
would never be predicted) and every interior lattice point must be written by
some anchor's centre lines (otherwise stale initialization values would leak
into the iteration).  Shapes violating these conditions — e.g. single-step-
wide appendages or diagonal zigzags — raise a :class:`ValueError` up front.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..fd.grid import Grid2D
from ..mosaic.geometry import MosaicGeometry
from .composite import CompositeDomain

__all__ = ["CompositeMosaicGeometry"]


@dataclass(frozen=True)
class CompositeMosaicGeometry:
    """Interface-lattice geometry of a composite (union-of-rectangles) domain.

    Parameters
    ----------
    subdomain_points, subdomain_extent:
        Atomic-subdomain resolution and physical size, exactly as in
        :class:`~repro.mosaic.geometry.MosaicGeometry`.
    domain:
        Shape of the target domain in half-subdomain step units.
    """

    subdomain_points: int
    subdomain_extent: float
    domain: CompositeDomain

    def __post_init__(self):
        if self.domain.steps_x < 2 or self.domain.steps_y < 2:
            raise ValueError(
                f"the composite domain must span at least one full subdomain "
                f"(2 half-subdomain steps) per axis to place any anchor, got "
                f"steps ({self.domain.steps_x}, {self.domain.steps_y})"
            )
        _ = self.box  # validates subdomain_points / subdomain_extent / steps
        self._validate_anchor_coverage()

    # -- the bounding-box geometry ---------------------------------------------------

    @cached_property
    def box(self) -> MosaicGeometry:
        """Rectangular geometry of the bounding box (shared index arithmetic)."""

        return MosaicGeometry(
            subdomain_points=self.subdomain_points,
            subdomain_extent=self.subdomain_extent,
            steps_x=self.domain.steps_x,
            steps_y=self.domain.steps_y,
        )

    def as_mosaic_geometry(self) -> MosaicGeometry:
        """The equivalent rectangular geometry (only for rectangular domains)."""

        if not self.is_rectangular:
            raise ValueError("domain is not a rectangle")
        return self.box

    # -- derived sizes (bounding box) -------------------------------------------------

    @property
    def is_rectangular(self) -> bool:
        return self.domain.is_rectangle

    @property
    def half(self) -> int:
        return self.box.half

    @property
    def spacing(self) -> float:
        return self.box.spacing

    @property
    def steps_x(self) -> int:
        return self.domain.steps_x

    @property
    def steps_y(self) -> int:
        return self.domain.steps_y

    @property
    def global_nx(self) -> int:
        return self.box.global_nx

    @property
    def global_ny(self) -> int:
        return self.box.global_ny

    @property
    def global_extent(self) -> tuple[float, float]:
        return self.box.global_extent

    @property
    def anchor_rows(self) -> int:
        return self.box.anchor_rows

    @property
    def anchor_cols(self) -> int:
        return self.box.anchor_cols

    @property
    def num_subdomains(self) -> int:
        return len(self.anchors())

    def global_grid(self, origin: tuple[float, float] = (0.0, 0.0)) -> Grid2D:
        """The bounding-box grid the composite field arrays live on."""

        return self.box.global_grid(origin)

    def subdomain_grid(self) -> Grid2D:
        return self.box.subdomain_grid()

    # -- anchors and phases ------------------------------------------------------------

    @cached_property
    def _anchor_ok(self) -> np.ndarray:
        """(anchor_rows, anchor_cols) mask of anchors fully inside the domain."""

        cells = self.domain.cell_mask()
        ok = cells[:-1, :-1] & cells[1:, :-1] & cells[:-1, 1:] & cells[1:, 1:]
        ok.flags.writeable = False
        return ok

    def anchors(self) -> list[tuple[int, int]]:
        """Anchors whose 2x2-cell subdomain window lies inside the domain.

        Row-major order, matching :meth:`MosaicGeometry.anchors` exactly when
        the domain is the full bounding box.
        """

        return [(int(r), int(c)) for r, c in zip(*np.nonzero(self._anchor_ok))]

    def anchors_for_phase(self, phase: int) -> list[tuple[int, int]]:
        return [
            (r, c)
            for (r, c) in self.box.anchors_for_phase(phase)
            if self._anchor_ok[r, c]
        ]

    def anchor_window(self, anchor: tuple[int, int]) -> tuple[int, int]:
        r, c = anchor
        if not (0 <= r < self.anchor_rows and 0 <= c < self.anchor_cols) or not (
            self._anchor_ok[r, c]
        ):
            raise ValueError(f"anchor {anchor} is not inside the composite domain")
        return r * self.half, c * self.half

    # -- local index helpers (independent of the domain shape) -------------------------

    def boundary_loop_local_indices(self) -> tuple[np.ndarray, np.ndarray]:
        return self.box.boundary_loop_local_indices()

    def center_line_local_indices(self) -> tuple[np.ndarray, np.ndarray]:
        return self.box.center_line_local_indices()

    def center_line_local_coordinates(self) -> np.ndarray:
        return self.box.center_line_local_coordinates()

    def interior_local_indices(self) -> tuple[np.ndarray, np.ndarray]:
        return self.box.interior_local_indices()

    def interior_local_coordinates(self) -> np.ndarray:
        return self.box.interior_local_coordinates()

    # -- masks -------------------------------------------------------------------------

    @cached_property
    def _valid(self) -> np.ndarray:
        half = self.half
        mask = np.zeros((self.global_ny, self.global_nx), dtype=bool)
        for i, j in zip(*np.nonzero(self.domain.cell_mask())):
            mask[i * half: (i + 1) * half + 1, j * half: (j + 1) * half + 1] = True
        mask.flags.writeable = False
        return mask

    @cached_property
    def _interior(self) -> np.ndarray:
        # A valid point is interior iff its full 8-neighbourhood is valid
        # (3x3 erosion); with half >= 2 every covered cell is at least two
        # grid units thick, so this is exactly "not on the boundary polygon".
        valid = self._valid
        ny, nx = valid.shape
        padded = np.zeros((ny + 2, nx + 2), dtype=bool)
        padded[1:-1, 1:-1] = valid
        interior = valid.copy()
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                interior &= padded[1 + dr: 1 + dr + ny, 1 + dc: 1 + dc + nx]
        interior.flags.writeable = False
        return interior

    def valid_mask(self) -> np.ndarray:
        """Grid points inside (or on the boundary of) the composite domain."""

        return self._valid.copy()

    def boundary_point_mask(self) -> np.ndarray:
        """Grid points on the (possibly re-entrant) domain boundary."""

        return self._valid & ~self._interior

    def interior_mask(self) -> np.ndarray:
        """Grid points strictly inside the domain."""

        return self._interior.copy()

    def lattice_mask(self) -> np.ndarray:
        """Interface-lattice points inside the domain (iterated state)."""

        return self.box.lattice_mask() & self._valid

    # -- global boundary loop ----------------------------------------------------------

    @cached_property
    def _boundary_loop(self) -> tuple[np.ndarray, np.ndarray]:
        half = self.half
        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        for (r0, c0), (r1, c1) in self.domain.boundary_segments():
            R0, C0, R1, C1 = r0 * half, c0 * half, r1 * half, c1 * half
            if R0 == R1:
                step = 1 if C1 >= C0 else -1
                cols = np.arange(C0, C1 + step, step)
                rows = np.full(cols.size, R0)
            else:
                step = 1 if R1 >= R0 else -1
                rows = np.arange(R0, R1 + step, step)
                cols = np.full(rows.size, C0)
            rows_parts.append(rows)
            cols_parts.append(cols)
        rows = np.concatenate(rows_parts)
        cols = np.concatenate(cols_parts)
        rows.flags.writeable = False
        cols.flags.writeable = False
        return rows, cols

    @property
    def global_boundary_size(self) -> int:
        """Number of samples in the composite Dirichlet boundary loop.

        Each maximal straight boundary segment contributes its grid points
        including both endpoints, so polygon corners are duplicated exactly as
        in the rectangular ``2*nx + 2*ny`` convention (to which this reduces
        for rectangular domains).
        """

        return int(self._boundary_loop[0].size)

    def global_boundary_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """(row, col) bounding-grid indices tracing the composite boundary loop."""

        rows, cols = self._boundary_loop
        return rows.copy(), cols.copy()

    def global_boundary_coordinates(self) -> np.ndarray:
        rows, cols = self._boundary_loop
        return np.stack([cols * self.spacing, rows * self.spacing], axis=1)

    def boundary_from_function(self, fn) -> np.ndarray:
        """Sample ``fn(x, y)`` along the composite boundary loop."""

        coords = self.global_boundary_coordinates()
        return np.asarray(fn(coords[:, 0], coords[:, 1]), dtype=float)

    def insert_global_boundary(
        self, boundary_loop: np.ndarray, field: np.ndarray | None = None
    ) -> np.ndarray:
        """Write the composite boundary loop into a (new or existing) field.

        Duplicated corner samples follow last-write-wins, exactly like
        :meth:`Grid2D.insert_boundary`.
        """

        boundary_loop = np.asarray(boundary_loop, dtype=float)
        if boundary_loop.shape != (self.global_boundary_size,):
            raise ValueError(
                f"boundary loop must have length {self.global_boundary_size}, "
                f"got {boundary_loop.shape}"
            )
        if field is None:
            field = np.zeros((self.global_ny, self.global_nx))
        else:
            field = np.array(field, dtype=float, copy=True)
        rows, cols = self._boundary_loop
        field[rows, cols] = boundary_loop
        return field

    # -- construction-time validation --------------------------------------------------

    def _validate_anchor_coverage(self) -> None:
        anchors = self.anchors()
        if not anchors:
            raise ValueError(
                "composite domain admits no anchors: no 2x2 block of covered "
                "step cells exists, so no subdomain fits inside the domain"
            )

        # Every covered cell must fall inside some anchor window, otherwise
        # the dense assembly would never predict parts of the domain.
        cells = self.domain.cell_mask()
        cell_covered = np.zeros_like(cells)
        for r, c in anchors:
            cell_covered[r: r + 2, c: c + 2] = True
        missing = cells & ~cell_covered
        if missing.any():
            rows, cols = np.nonzero(missing)
            raise ValueError(
                f"composite domain has {rows.size} step cell(s) outside every "
                f"subdomain window (first: ({int(rows[0])}, {int(cols[0])})); "
                f"appendages must be at least 2 half-subdomain steps wide"
            )

        # Every interior lattice point must be written by some anchor's
        # centre lines, otherwise the iteration would keep its init value.
        crow, ccol = self.center_line_local_indices()
        updated = np.zeros((self.global_ny, self.global_nx), dtype=bool)
        half = self.half
        for r, c in anchors:
            updated[r * half + crow, c * half + ccol] = True
        stale = self.lattice_mask() & self._interior & ~updated
        if stale.any():
            rows, cols = np.nonzero(stale)
            raise ValueError(
                f"composite domain has {rows.size} interior lattice point(s) "
                f"not updated by any anchor centre line (first grid point: "
                f"({int(rows[0])}, {int(cols[0])})); the shape pinches the "
                f"anchor lattice — thicken the offending region"
            )

    # -- construction helpers ----------------------------------------------------------

    @classmethod
    def from_domain(
        cls,
        domain: CompositeDomain,
        subdomain_points: int = 33,
        subdomain_extent: float = 0.5,
    ) -> "CompositeMosaicGeometry":
        return cls(
            subdomain_points=subdomain_points,
            subdomain_extent=subdomain_extent,
            domain=domain,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompositeMosaicGeometry(m={self.subdomain_points}, "
            f"extent={self.subdomain_extent}, domain={self.domain!r}, "
            f"anchors={self.num_subdomains})"
        )
