"""Composite (non-rectangular) domains as unions of axis-aligned rectangles.

A :class:`CompositeDomain` describes the *shape* of a target domain on the
half-subdomain step lattice of the Mosaic Flow decomposition: the union of
axis-aligned rectangles whose corners sit on that lattice.  L-shapes, T-shapes,
plus-shapes, notched plates and staircases are all expressible; the shape is
purely combinatorial (integer step units) and independent of the subdomain
resolution, which :class:`~repro.domains.geometry.CompositeMosaicGeometry`
adds on top.

The domain is validated at construction: it must be non-empty, edge-connected,
free of holes and free of *pinched* corners (two boundary loops meeting at a
point), so that its boundary is a single closed axis-aligned polygon.  The
boundary is traced counter-clockwise starting from the bottom-left-most
corner and reported as maximal straight segments; for a plain rectangle this
reproduces exactly the bottom/right/top/left edge order (with corners shared
between consecutive edges) of the :class:`~repro.fd.grid.Grid2D` boundary-loop
convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

__all__ = ["CompositeDomain"]

#: step offsets of the four edge-neighbouring cells
_CELL_NEIGHBORS = ((-1, 0), (1, 0), (0, -1), (0, 1))


@dataclass(frozen=True)
class CompositeDomain:
    """Union of axis-aligned rectangles on the half-subdomain step lattice.

    Parameters
    ----------
    rects:
        Tuple of rectangles ``(row0, col0, rows, cols)`` in half-subdomain
        step units: the rectangle covers step cells ``[row0, row0+rows) x
        [col0, col0+cols)``.  Rectangles may overlap; the domain is their
        union.  Use :meth:`from_rects` (which normalizes the placement so the
        bounding box starts at the origin) rather than the raw constructor.
    """

    rects: tuple[tuple[int, int, int, int], ...]

    def __post_init__(self):
        if not self.rects:
            raise ValueError("a CompositeDomain needs at least one rectangle")
        for rect in self.rects:
            row0, col0, rows, cols = rect
            if rows < 1 or cols < 1:
                raise ValueError(f"rectangle {rect} has a non-positive side")
        if min(r[0] for r in self.rects) != 0 or min(r[1] for r in self.rects) != 0:
            raise ValueError(
                "rectangles must be normalized so the bounding box starts at "
                "(0, 0); build the domain with CompositeDomain.from_rects"
            )
        # Validate connectivity and the boundary topology eagerly so every
        # constructed domain is known to be a single hole-free polygon.
        self._check_connected()
        _ = self.boundary_corners

    # -- construction ----------------------------------------------------------------

    @classmethod
    def from_rects(cls, rects) -> "CompositeDomain":
        """Build a domain from rectangles, translating them to the origin."""

        rects = tuple((int(r), int(c), int(h), int(w)) for r, c, h, w in rects)
        if not rects:
            raise ValueError("a CompositeDomain needs at least one rectangle")
        row_min = min(r[0] for r in rects)
        col_min = min(r[1] for r in rects)
        return cls(tuple((r - row_min, c - col_min, h, w) for r, c, h, w in rects))

    @classmethod
    def rectangle(cls, steps_x: int, steps_y: int) -> "CompositeDomain":
        """A plain ``steps_x x steps_y`` rectangle (the classical Mosaic case)."""

        return cls(((0, 0, int(steps_y), int(steps_x)),))

    @classmethod
    def l_shape(
        cls, steps_x: int, steps_y: int, notch_x: int, notch_y: int
    ) -> "CompositeDomain":
        """An L: the ``steps_x x steps_y`` box minus its top-right notch."""

        steps_x, steps_y = int(steps_x), int(steps_y)
        notch_x, notch_y = int(notch_x), int(notch_y)
        if not (0 < notch_x < steps_x and 0 < notch_y < steps_y):
            raise ValueError(
                f"notch ({notch_x}, {notch_y}) must be strictly inside the "
                f"({steps_x}, {steps_y}) bounding box"
            )
        return cls(
            (
                (0, 0, steps_y - notch_y, steps_x),
                (steps_y - notch_y, 0, notch_y, steps_x - notch_x),
            )
        )

    @classmethod
    def t_shape(cls, bar_x: int, bar_y: int, stem_x: int, stem_y: int) -> "CompositeDomain":
        """A T: a ``bar_x x bar_y`` top bar over a centred ``stem_x x stem_y`` stem."""

        bar_x, bar_y, stem_x, stem_y = int(bar_x), int(bar_y), int(stem_x), int(stem_y)
        if stem_x > bar_x:
            raise ValueError("the stem cannot be wider than the bar")
        offset = (bar_x - stem_x) // 2
        return cls.from_rects(
            (
                (stem_y, 0, bar_y, bar_x),
                (0, offset, stem_y, stem_x),
            )
        )

    @classmethod
    def plus_shape(cls, arm: int, thickness: int) -> "CompositeDomain":
        """A plus: two centred ``(2*arm + thickness)``-long crossing bars."""

        arm, thickness = int(arm), int(thickness)
        span = 2 * arm + thickness
        return cls.from_rects(
            (
                (arm, 0, thickness, span),
                (0, arm, span, thickness),
            )
        )

    @classmethod
    def from_cells(cls, cells: np.ndarray) -> "CompositeDomain":
        """Build a domain from a boolean cell mask (row-run decomposition)."""

        cells = np.asarray(cells, dtype=bool)
        if cells.ndim != 2 or not cells.any():
            raise ValueError("cells must be a non-empty 2-D boolean mask")
        rects = []
        for i in range(cells.shape[0]):
            j = 0
            while j < cells.shape[1]:
                if cells[i, j]:
                    start = j
                    while j < cells.shape[1] and cells[i, j]:
                        j += 1
                    rects.append((i, start, 1, j - start))
                else:
                    j += 1
        return cls.from_rects(rects)

    # -- cell-level queries -----------------------------------------------------------

    @property
    def steps_x(self) -> int:
        """Half-subdomain steps spanned by the bounding box along x."""

        return max(r[1] + r[3] for r in self.rects)

    @property
    def steps_y(self) -> int:
        return max(r[0] + r[2] for r in self.rects)

    @cached_property
    def _cells(self) -> np.ndarray:
        cells = np.zeros((self.steps_y, self.steps_x), dtype=bool)
        for row0, col0, rows, cols in self.rects:
            cells[row0: row0 + rows, col0: col0 + cols] = True
        cells.flags.writeable = False
        return cells

    def cell_mask(self) -> np.ndarray:
        """Boolean mask of covered step cells, shape ``(steps_y, steps_x)``."""

        return self._cells.copy()

    @property
    def num_cells(self) -> int:
        return int(self._cells.sum())

    @property
    def is_rectangle(self) -> bool:
        """Whether the union is exactly its bounding box."""

        return bool(self._cells.all())

    def contains_cell(self, row: int, col: int) -> bool:
        cells = self._cells
        return (
            0 <= row < cells.shape[0]
            and 0 <= col < cells.shape[1]
            and bool(cells[row, col])
        )

    def _check_connected(self) -> None:
        cells = self._cells
        covered = list(zip(*np.nonzero(cells)))
        seen = {covered[0]}
        stack = [covered[0]]
        while stack:
            i, j = stack.pop()
            for di, dj in _CELL_NEIGHBORS:
                nb = (i + di, j + dj)
                if nb not in seen and self.contains_cell(*nb):
                    seen.add(nb)
                    stack.append(nb)
        if len(seen) != len(covered):
            raise ValueError(
                f"composite domain is not edge-connected: {len(covered) - len(seen)} "
                f"of {len(covered)} cells are unreachable from cell {covered[0]}"
            )

    # -- boundary tracing -------------------------------------------------------------

    @cached_property
    def boundary_corners(self) -> tuple[tuple[int, int], ...]:
        """Corners ``(row, col)`` of the boundary polygon, counter-clockwise.

        The trace starts at the bottom-left-most corner heading right (+x);
        consecutive corners differ along exactly one axis.  The first corner
        is not repeated at the end.  Raises :class:`ValueError` for pinched
        corners or interior holes.
        """

        cells = self._cells
        # Directed unit edges (start -> end in corner coordinates), oriented
        # counter-clockwise: the domain interior lies to the left of travel.
        outgoing: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for i, j in zip(*np.nonzero(cells)):
            i, j = int(i), int(j)
            if not self.contains_cell(i - 1, j):   # bottom edge, heading +x
                outgoing.setdefault((i, j), []).append((i, j + 1))
            if not self.contains_cell(i, j + 1):   # right edge, heading +y
                outgoing.setdefault((i, j + 1), []).append((i + 1, j + 1))
            if not self.contains_cell(i + 1, j):   # top edge, heading -x
                outgoing.setdefault((i + 1, j + 1), []).append((i + 1, j))
            if not self.contains_cell(i, j - 1):   # left edge, heading -y
                outgoing.setdefault((i + 1, j), []).append((i, j))

        num_edges = sum(len(ends) for ends in outgoing.values())
        start = min(outgoing)
        path = [start]
        current = start
        while True:
            ends = outgoing.get(current, [])
            if len(ends) != 1:
                raise ValueError(
                    f"composite domain boundary is pinched at corner {current}: "
                    f"the domain touches itself at a point; thicken the "
                    f"connection to at least one full step"
                )
            nxt = ends.pop()
            if not ends:
                del outgoing[current]
            if nxt == start:
                break
            path.append(nxt)
            current = nxt
        if outgoing:
            raise ValueError(
                f"composite domain has interior holes ({num_edges - len(path)} "
                f"boundary edges remain after tracing the outer loop); holes "
                f"are not supported"
            )

        # Merge collinear unit edges into maximal polygon corners.
        corners: list[tuple[int, int]] = []
        n = len(path)
        for k in range(n):
            prev_pt, pt, next_pt = path[k - 1], path[k], path[(k + 1) % n]
            direction_in = (pt[0] - prev_pt[0], pt[1] - prev_pt[1])
            direction_out = (next_pt[0] - pt[0], next_pt[1] - pt[1])
            if direction_in != direction_out:
                corners.append(pt)
        return tuple(corners)

    def boundary_segments(self) -> tuple[tuple[tuple[int, int], tuple[int, int]], ...]:
        """Maximal straight boundary segments ``((r0, c0), (r1, c1))``, CCW.

        The segments form a closed loop: each ends where the next begins, and
        the last ends at the first's start.  For a rectangle this is exactly
        bottom, right, top, left.
        """

        corners = self.boundary_corners
        return tuple(
            (corners[k], corners[(k + 1) % len(corners)]) for k in range(len(corners))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompositeDomain({self.steps_x}x{self.steps_y} steps, "
            f"{len(self.rects)} rects, {self.num_cells} cells)"
        )
