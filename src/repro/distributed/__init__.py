"""Distributed runtime: MPI-like communicators, process grids and cost models."""

from .cartesian import (
    BlockPartition,
    ProcessGrid,
    block_range,
    choose_grid_dims,
    morton_encode,
    shard_anchors,
)
from .comm import CommunicationTrace, Communicator, ReduceOp, payload_bytes
from .costmodel import INTERCONNECTS, AlphaBetaModel, estimate_trace_time
from .simulated import SelfCommunicator, SpmdFailure, ThreadCommunicator, run_spmd

__all__ = [
    "Communicator",
    "CommunicationTrace",
    "ReduceOp",
    "payload_bytes",
    "SelfCommunicator",
    "ThreadCommunicator",
    "run_spmd",
    "SpmdFailure",
    "ProcessGrid",
    "BlockPartition",
    "block_range",
    "choose_grid_dims",
    "morton_encode",
    "shard_anchors",
    "AlphaBetaModel",
    "INTERCONNECTS",
    "estimate_trace_time",
]
