"""Alpha-beta communication cost model (Section 4.3 of the paper).

The paper models the per-iteration communication cost of the distributed
Mosaic Flow predictor as

    C_comm = 8 * I * alpha + I * 16 * N * d / (sqrt(P) * beta)

(latency term for up to eight neighbour messages per iteration, bandwidth
term proportional to the processor-subdomain side length).  This module
implements the generic alpha-beta primitives used to turn recorded
communication traces into estimated wall-clock times on the paper's
interconnects, plus helpers for the collective algorithms (ring allreduce /
allgather) used in training and solution assembly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .comm import CommunicationTrace

__all__ = ["AlphaBetaModel", "INTERCONNECTS", "estimate_trace_time"]


@dataclass(frozen=True)
class AlphaBetaModel:
    """Latency/bandwidth (alpha-beta) model of a network link.

    Attributes
    ----------
    alpha:
        Per-message latency in seconds (includes software overhead such as
        the mpi4py serialization the paper calls out).
    beta:
        Bandwidth in bytes per second.
    name:
        Human-readable label.
    """

    alpha: float
    beta: float
    name: str = "custom"

    def __post_init__(self):
        if self.alpha < 0 or self.beta <= 0:
            raise ValueError("alpha must be >= 0 and beta > 0")

    # -- point to point -----------------------------------------------------------

    def point_to_point(self, nbytes: float, messages: int = 1) -> float:
        """Time for ``messages`` point-to-point messages totalling ``nbytes``."""

        return messages * self.alpha + nbytes / self.beta

    # -- collectives -----------------------------------------------------------------

    def ring_allreduce(self, nbytes: float, world_size: int) -> float:
        """Ring allreduce: ``2 (P-1)`` steps moving ``nbytes / P`` each."""

        if world_size <= 1:
            return 0.0
        steps = 2 * (world_size - 1)
        return steps * self.alpha + steps * (nbytes / world_size) / self.beta

    def ring_allgather(self, nbytes_per_rank: float, world_size: int) -> float:
        """Ring allgather: ``P-1`` steps each moving one rank's contribution."""

        if world_size <= 1:
            return 0.0
        steps = world_size - 1
        return steps * self.alpha + steps * nbytes_per_rank / self.beta

    def broadcast(self, nbytes: float, world_size: int) -> float:
        """Binomial-tree broadcast."""

        if world_size <= 1:
            return 0.0
        import math

        steps = math.ceil(math.log2(world_size))
        return steps * (self.alpha + nbytes / self.beta)

    # -- paper-specific formulas --------------------------------------------------------

    def mfp_iteration_comm(
        self, iterations: int, resolution: int, density: int, world_size: int
    ) -> float:
        """Section 4.3 closed form for the distributed MFP communication cost.

        ``C_comm = 8 I alpha + I 16 N d / (sqrt(P) beta)`` with ``N`` the global
        resolution per side, ``d`` the subdomain placement density and ``P``
        the processor count.  Values are interpreted as 8-byte floats.
        """

        import math

        if world_size <= 1:
            return 0.0
        latency = 8.0 * iterations * self.alpha
        bandwidth_words = iterations * 16.0 * resolution * density / math.sqrt(world_size)
        return latency + (bandwidth_words * 8.0) / self.beta


#: Interconnects of the paper's evaluation platforms (Table 2).  ``alpha``
#: includes an estimate of the software overhead of mpi4py serialization the
#: paper identifies as a latency bottleneck.
INTERCONNECTS: dict[str, AlphaBetaModel] = {
    # 100 Gbit/s ConnectX-5 InfiniBand between nodes.
    "infiniband-100g": AlphaBetaModel(alpha=20e-6, beta=12.5e9, name="infiniband-100g"),
    # Intra-node PCIe 32 GB/s (V100 platform).
    "pcie-32g": AlphaBetaModel(alpha=10e-6, beta=32e9, name="pcie-32g"),
    # Intra-node NVLink 200 GB/s (A30 platform).
    "nvlink-200g": AlphaBetaModel(alpha=5e-6, beta=200e9, name="nvlink-200g"),
    # Intra-node NVLink 600 GB/s (A100 platform).
    "nvlink-600g": AlphaBetaModel(alpha=5e-6, beta=600e9, name="nvlink-600g"),
}


def estimate_trace_time(
    trace: CommunicationTrace, model: AlphaBetaModel, world_size: int
) -> dict[str, float]:
    """Estimate wall-clock communication time for a recorded trace.

    Returns a breakdown with keys ``sendrecv``, ``allreduce``, ``allgather``
    and ``broadcast`` (seconds), mirroring the stacked components of
    Figure 9a.
    """

    sendrecv = model.point_to_point(trace.send_bytes + trace.recv_bytes, trace.sends + trace.receives)
    if trace.allreduces:
        avg = trace.allreduce_bytes / trace.allreduces
        allreduce = trace.allreduces * model.ring_allreduce(avg, world_size)
    else:
        allreduce = 0.0
    if trace.allgathers:
        avg = trace.allgather_bytes / trace.allgathers
        allgather = trace.allgathers * model.ring_allgather(avg, world_size)
    else:
        allgather = 0.0
    if trace.broadcasts:
        avg = trace.broadcast_bytes / max(trace.broadcasts, 1)
        broadcast = trace.broadcasts * model.broadcast(avg, world_size)
    else:
        broadcast = 0.0
    return {
        "sendrecv": sendrecv,
        "allreduce": allreduce,
        "allgather": allgather,
        "broadcast": broadcast,
        "total": sendrecv + allreduce + allgather + broadcast,
    }
