"""Communicator interface and communication tracing.

The paper's distributed algorithms (data-parallel training, Algorithm 1, and
the distributed Mosaic Flow predictor, Algorithm 2) are written against a
small MPI-like API.  The reproduction runs them on a thread-backed simulated
cluster (:mod:`repro.distributed.simulated`), but the algorithms only see the
abstract :class:`Communicator`, so they would run unchanged on real MPI.

Every communicator carries a :class:`CommunicationTrace` that records the
number and volume of messages per primitive.  The trace, combined with the
alpha-beta cost model, is what regenerates the communication-time breakdowns
of Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["Communicator", "CommunicationTrace", "ReduceOp", "payload_bytes"]


class ReduceOp:
    """Reduction operators supported by :meth:`Communicator.allreduce`."""

    SUM = "sum"
    MEAN = "mean"
    MAX = "max"
    MIN = "min"

    _FUNCTIONS = {
        "sum": lambda arrays: np.sum(arrays, axis=0),
        "mean": lambda arrays: np.mean(arrays, axis=0),
        "max": lambda arrays: np.max(arrays, axis=0),
        "min": lambda arrays: np.min(arrays, axis=0),
    }

    @classmethod
    def apply(cls, op: str, arrays: list[np.ndarray]) -> np.ndarray:
        try:
            fn = cls._FUNCTIONS[op]
        except KeyError as exc:
            raise ValueError(f"unknown reduce op '{op}'") from exc
        return fn(np.stack(arrays, axis=0))


def payload_bytes(payload: Any) -> int:
    """Best-effort size in bytes of a message payload."""

    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (int, float, np.floating, np.integer)):
        return 8
    if isinstance(payload, (tuple, list)):
        return sum(payload_bytes(item) for item in payload)
    if isinstance(payload, dict):
        return sum(payload_bytes(v) for v in payload.values())
    if payload is None:
        return 0
    return 64  # opaque Python object: count a nominal pickle overhead


@dataclass
class CommunicationTrace:
    """Per-rank record of communication activity."""

    sends: int = 0
    receives: int = 0
    send_bytes: int = 0
    recv_bytes: int = 0
    allreduces: int = 0
    allreduce_bytes: int = 0
    allgathers: int = 0
    allgather_bytes: int = 0
    broadcasts: int = 0
    broadcast_bytes: int = 0
    barriers: int = 0

    def record_send(self, nbytes: int) -> None:
        self.sends += 1
        self.send_bytes += int(nbytes)

    def record_recv(self, nbytes: int) -> None:
        self.receives += 1
        self.recv_bytes += int(nbytes)

    def record_allreduce(self, nbytes: int) -> None:
        self.allreduces += 1
        self.allreduce_bytes += int(nbytes)

    def record_allgather(self, nbytes: int) -> None:
        self.allgathers += 1
        self.allgather_bytes += int(nbytes)

    def record_broadcast(self, nbytes: int) -> None:
        self.broadcasts += 1
        self.broadcast_bytes += int(nbytes)

    def record_barrier(self) -> None:
        self.barriers += 1

    def merge(self, other: "CommunicationTrace") -> "CommunicationTrace":
        """Return a new trace with the element-wise sum of both traces."""

        merged = CommunicationTrace()
        for name in vars(merged):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


class Communicator:
    """Abstract MPI-like communicator.

    Concrete implementations provide point-to-point ``send`` / ``recv`` and
    the collectives used by the paper's algorithms (``allreduce`` for
    data-parallel gradient averaging, ``allgather`` for assembling the
    distributed Mosaic Flow solution, ``bcast`` for parameter broadcast).
    """

    rank: int
    size: int
    trace: CommunicationTrace

    # -- point to point ----------------------------------------------------------

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:  # pragma: no cover
        raise NotImplementedError

    def recv(self, source: int, tag: int = 0) -> Any:  # pragma: no cover
        raise NotImplementedError

    def sendrecv(self, payload: Any, peer: int, tag: int = 0) -> Any:
        """Exchange payloads with ``peer`` (send ours, receive theirs)."""

        self.send(payload, peer, tag)
        return self.recv(peer, tag)

    # -- collectives --------------------------------------------------------------

    def barrier(self) -> None:  # pragma: no cover
        raise NotImplementedError

    def allreduce(self, array: np.ndarray, op: str = ReduceOp.SUM) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def allgather(self, payload: Any) -> list[Any]:  # pragma: no cover
        raise NotImplementedError

    def bcast(self, payload: Any, root: int = 0) -> Any:  # pragma: no cover
        raise NotImplementedError

    # -- conveniences ---------------------------------------------------------------

    def allreduce_mean(self, array: np.ndarray) -> np.ndarray:
        return self.allreduce(array, op=ReduceOp.MEAN)

    @property
    def is_root(self) -> bool:
        return self.rank == 0
