"""2-D Cartesian process grids, rank mappings and block partitioning.

Section 4.2 of the paper assigns processors to a 2-D grid in a row-wise scan
pattern and notes that locality-preserving orderings (Morton / Z-order) could
improve load balance; both mappings are implemented here.  The module also
provides balanced 1-D/2-D block partitioning of the interface lattice and the
8-neighbour (orthogonal + diagonal) stencil used by the halo exchange in
Figure 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "choose_grid_dims",
    "morton_encode",
    "ProcessGrid",
    "block_range",
    "BlockPartition",
    "shard_anchors",
]


def choose_grid_dims(size: int) -> tuple[int, int]:
    """Pick process grid dimensions ``(rows, cols)`` as close to square as possible."""

    if size <= 0:
        raise ValueError("size must be positive")
    rows = int(math.isqrt(size))
    while rows > 1 and size % rows != 0:
        rows -= 1
    return rows, size // rows


def morton_encode(row: int, col: int) -> int:
    """Interleave the bits of (row, col) to produce the Morton (Z-order) key."""

    result = 0
    for bit in range(32):
        result |= ((col >> bit) & 1) << (2 * bit)
        result |= ((row >> bit) & 1) << (2 * bit + 1)
    return result


def block_range(total: int, parts: int, index: int) -> tuple[int, int]:
    """Balanced contiguous partition of ``total`` items into ``parts`` blocks.

    Returns the half-open range ``[start, stop)`` of block ``index``; the
    first ``total % parts`` blocks receive one extra item.
    """

    if parts <= 0:
        raise ValueError("parts must be positive")
    if not 0 <= index < parts:
        raise ValueError("index out of range")
    base, remainder = divmod(total, parts)
    start = index * base + min(index, remainder)
    stop = start + base + (1 if index < remainder else 0)
    return start, stop


def shard_anchors(
    anchors, parts: int, ordering: str = "row"
) -> list[list[tuple[int, int]]]:
    """Load-balanced sharding of an *arbitrary* anchor list over ``parts`` ranks.

    Block partitioning (:meth:`ProcessGrid.partition`) assumes a dense
    rectangular anchor lattice; composite domains enumerate an irregular
    subset of it, so an anchor-count-balanced split is used instead: anchors
    are ordered (``"row"`` keeps the given row-major order, ``"morton"``
    re-orders by Z-curve for locality) and cut into ``parts`` contiguous
    shards whose sizes differ by at most one.  Ranks beyond the anchor count
    receive empty shards.
    """

    anchors = [(int(r), int(c)) for r, c in anchors]
    if parts <= 0:
        raise ValueError("parts must be positive")
    if ordering == "morton":
        anchors.sort(key=lambda rc: morton_encode(rc[0], rc[1]))
    elif ordering != "row":
        raise ValueError("ordering must be 'row' or 'morton'")
    return [
        anchors[slice(*block_range(len(anchors), parts, index))]
        for index in range(parts)
    ]


@dataclass(frozen=True)
class BlockPartition:
    """The sub-block of a global 2-D lattice owned by one processor."""

    row_start: int
    row_stop: int
    col_start: int
    col_stop: int

    @property
    def rows(self) -> int:
        return self.row_stop - self.row_start

    @property
    def cols(self) -> int:
        return self.col_stop - self.col_start

    @property
    def count(self) -> int:
        return self.rows * self.cols

    def contains(self, row: int, col: int) -> bool:
        return self.row_start <= row < self.row_stop and self.col_start <= col < self.col_stop


class ProcessGrid:
    """A 2-D logical grid of processors with a configurable rank mapping.

    Parameters
    ----------
    size:
        Number of processors.
    dims:
        Optional explicit ``(rows, cols)``; chosen automatically otherwise.
    ordering:
        ``"row"`` for the paper's row-wise scan or ``"morton"`` for Z-order.
    """

    def __init__(self, size: int, dims: tuple[int, int] | None = None, ordering: str = "row"):
        if dims is None:
            dims = choose_grid_dims(size)
        rows, cols = dims
        if rows * cols != size:
            raise ValueError(f"dims {dims} do not multiply to size {size}")
        if ordering not in ("row", "morton"):
            raise ValueError("ordering must be 'row' or 'morton'")
        self.size = int(size)
        self.rows = int(rows)
        self.cols = int(cols)
        self.ordering = ordering

        coords = [(r, c) for r in range(rows) for c in range(cols)]
        if ordering == "morton":
            coords.sort(key=lambda rc: morton_encode(rc[0], rc[1]))
        # rank -> (row, col) and the inverse map
        self._rank_to_coord = {rank: rc for rank, rc in enumerate(coords)}
        self._coord_to_rank = {rc: rank for rank, rc in self._rank_to_coord.items()}

    # -- mapping ------------------------------------------------------------------

    def coords(self, rank: int) -> tuple[int, int]:
        """Grid coordinates ``(row, col)`` of ``rank``."""

        return self._rank_to_coord[rank]

    def rank_at(self, row: int, col: int) -> int:
        return self._coord_to_rank[(row, col)]

    def neighbors(self, rank: int) -> dict[tuple[int, int], int]:
        """Existing neighbours of ``rank`` keyed by offset ``(drow, dcol)``.

        Includes the four orthogonal and four diagonal neighbours (Figure 4's
        stencil communication pattern); processors on the domain boundary have
        fewer neighbours.
        """

        row, col = self.coords(rank)
        result: dict[tuple[int, int], int] = {}
        for drow in (-1, 0, 1):
            for dcol in (-1, 0, 1):
                if drow == 0 and dcol == 0:
                    continue
                nr, nc = row + drow, col + dcol
                if 0 <= nr < self.rows and 0 <= nc < self.cols:
                    result[(drow, dcol)] = self.rank_at(nr, nc)
        return result

    def orthogonal_neighbors(self, rank: int) -> dict[tuple[int, int], int]:
        return {
            offset: r
            for offset, r in self.neighbors(rank).items()
            if abs(offset[0]) + abs(offset[1]) == 1
        }

    def diagonal_neighbors(self, rank: int) -> dict[tuple[int, int], int]:
        return {
            offset: r
            for offset, r in self.neighbors(rank).items()
            if abs(offset[0]) + abs(offset[1]) == 2
        }

    # -- partitioning ----------------------------------------------------------------

    def partition(self, global_rows: int, global_cols: int, rank: int) -> BlockPartition:
        """Balanced block of a ``global_rows x global_cols`` lattice owned by ``rank``."""

        row, col = self.coords(rank)
        r0, r1 = block_range(global_rows, self.rows, row)
        c0, c1 = block_range(global_cols, self.cols, col)
        return BlockPartition(r0, r1, c0, c1)

    def all_partitions(self, global_rows: int, global_cols: int) -> list[BlockPartition]:
        return [self.partition(global_rows, global_cols, rank) for rank in range(self.size)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessGrid(size={self.size}, dims=({self.rows}, {self.cols}), ordering='{self.ordering}')"
