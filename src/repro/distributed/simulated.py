"""Thread-backed simulated cluster.

Each simulated rank runs the SPMD program in its own Python thread and
communicates through in-memory mailboxes, reproducing MPI semantics
(point-to-point messages matched on source and tag, barrier, allreduce,
allgather, broadcast).  Because the ranks execute concurrently, ordering
hazards and deadlocks in the distributed algorithms surface exactly as they
would on a real cluster — while remaining deterministic in the data they
produce.

There is also :class:`SelfCommunicator`, a world of size one with zero-cost
collectives, which lets every distributed code path run un-modified in a
single process (used for the baseline configurations in the benchmarks).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from .comm import CommunicationTrace, Communicator, ReduceOp, payload_bytes

__all__ = ["SelfCommunicator", "ThreadCommunicator", "run_spmd", "SpmdFailure"]


class SpmdFailure(RuntimeError):
    """Raised when one or more simulated ranks raise an exception."""

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = failures
        detail = "; ".join(f"rank {r}: {exc!r}" for r, exc in sorted(failures.items()))
        super().__init__(f"SPMD program failed on {len(failures)} rank(s): {detail}")


class SelfCommunicator(Communicator):
    """A communicator for a world of size one (no-op collectives)."""

    def __init__(self):
        self.rank = 0
        self.size = 1
        self.trace = CommunicationTrace()

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        raise RuntimeError("cannot send point-to-point messages in a world of size 1")

    def recv(self, source: int, tag: int = 0) -> Any:
        raise RuntimeError("cannot receive point-to-point messages in a world of size 1")

    def barrier(self) -> None:
        self.trace.record_barrier()

    def allreduce(self, array: np.ndarray, op: str = ReduceOp.SUM) -> np.ndarray:
        array = np.asarray(array)
        self.trace.record_allreduce(array.nbytes)
        return array.copy()

    def allgather(self, payload: Any) -> list[Any]:
        self.trace.record_allgather(payload_bytes(payload))
        return [payload]

    def bcast(self, payload: Any, root: int = 0) -> Any:
        self.trace.record_broadcast(payload_bytes(payload))
        return payload


class _Mailbox:
    """Per-rank mailbox with (source, tag) matching."""

    def __init__(self):
        self._messages: list[tuple[int, int, Any]] = []
        self._condition = threading.Condition()

    def put(self, source: int, tag: int, payload: Any) -> None:
        with self._condition:
            self._messages.append((source, tag, payload))
            self._condition.notify_all()

    def get(self, source: int, tag: int, timeout: float) -> Any:
        deadline = None if timeout is None else timeout
        with self._condition:
            while True:
                for i, (src, t, payload) in enumerate(self._messages):
                    if src == source and t == tag:
                        self._messages.pop(i)
                        return payload
                if not self._condition.wait(timeout=deadline):
                    raise TimeoutError(
                        f"timed out waiting for message from rank {source} with tag {tag}"
                    )


class _ThreadWorld:
    """Shared state of a simulated cluster."""

    def __init__(self, size: int, timeout: float):
        self.size = size
        self.timeout = timeout
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.barrier = threading.Barrier(size)
        # Collective exchange area: one slot per rank, guarded by two barriers.
        self.slots: list[Any] = [None] * size
        self.collective_lock = threading.Lock()


class ThreadCommunicator(Communicator):
    """Communicator bound to one rank of a :class:`_ThreadWorld`."""

    def __init__(self, world: _ThreadWorld, rank: int):
        self._world = world
        self.rank = rank
        self.size = world.size
        self.trace = CommunicationTrace()

    # -- point to point -----------------------------------------------------------

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise ValueError(f"peer rank {peer} out of range for world size {self.size}")
        if peer == self.rank:
            raise ValueError("sending to self is not supported")

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        self._check_peer(dest)
        self.trace.record_send(payload_bytes(payload))
        self._world.mailboxes[dest].put(self.rank, tag, payload)

    def recv(self, source: int, tag: int = 0) -> Any:
        self._check_peer(source)
        payload = self._world.mailboxes[self.rank].get(source, tag, self._world.timeout)
        self.trace.record_recv(payload_bytes(payload))
        return payload

    # -- collectives -----------------------------------------------------------------

    def barrier(self) -> None:
        self.trace.record_barrier()
        self._world.barrier.wait(timeout=self._world.timeout)

    def _exchange(self, payload: Any) -> list[Any]:
        """All ranks deposit a payload and read back every slot."""

        self._world.slots[self.rank] = payload
        self._world.barrier.wait(timeout=self._world.timeout)
        gathered = list(self._world.slots)
        self._world.barrier.wait(timeout=self._world.timeout)
        return gathered

    def allreduce(self, array: np.ndarray, op: str = ReduceOp.SUM) -> np.ndarray:
        array = np.asarray(array)
        self.trace.record_allreduce(array.nbytes)
        gathered = self._exchange(array)
        return ReduceOp.apply(op, [np.asarray(a) for a in gathered])

    def allgather(self, payload: Any) -> list[Any]:
        self.trace.record_allgather(payload_bytes(payload))
        return self._exchange(payload)

    def bcast(self, payload: Any, root: int = 0) -> Any:
        self.trace.record_broadcast(payload_bytes(payload) if self.rank == root else 0)
        gathered = self._exchange(payload if self.rank == root else None)
        return gathered[root]


def run_spmd(
    world_size: int,
    fn: Callable[..., Any],
    args: Sequence[Any] = (),
    kwargs: dict | None = None,
    timeout: float = 120.0,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on every rank of a simulated cluster.

    Parameters
    ----------
    world_size:
        Number of simulated ranks.  ``1`` uses :class:`SelfCommunicator`
        directly (no threads).
    fn:
        SPMD program.  Receives the rank's :class:`Communicator` as its first
        argument.
    timeout:
        Per-operation timeout; a deadlocked program raises instead of
        hanging the test suite.

    Returns
    -------
    List of per-rank return values, ordered by rank.
    """

    kwargs = kwargs or {}
    if world_size <= 0:
        raise ValueError("world_size must be positive")
    if world_size == 1:
        return [fn(SelfCommunicator(), *args, **kwargs)]

    world = _ThreadWorld(world_size, timeout)
    results: list[Any] = [None] * world_size
    failures: dict[int, BaseException] = {}

    def worker(rank: int) -> None:
        comm = ThreadCommunicator(world, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - propagate to the caller
            failures[rank] = exc
            # Release peers stuck in a barrier so the run terminates quickly.
            world.barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"spmd-rank-{rank}")
        for rank in range(world_size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if failures:
        raise SpmdFailure(failures)
    return results
