"""Lightweight timers for instrumenting the predictors and trainers."""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager

__all__ = ["Timer", "Timings"]


class Timer:
    """A simple start/stop timer."""

    def __init__(self):
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer was not started")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class Timings:
    """Named accumulation of wall-clock time per category."""

    def __init__(self):
        self._totals: dict[str, float] = defaultdict(float)

    @contextmanager
    def measure(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self._totals[name] += time.perf_counter() - start

    def add(self, name: str, seconds: float) -> None:
        self._totals[name] += float(seconds)

    def total(self) -> float:
        return sum(self._totals.values())

    def as_dict(self) -> dict[str, float]:
        return dict(self._totals)

    def __getitem__(self, name: str) -> float:
        return self._totals[name]
