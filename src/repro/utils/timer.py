"""Lightweight timers for instrumenting the predictors and trainers.

:class:`Timings` is the per-component accumulator (named wall-clock totals)
used by the predictors' ``timings`` breakdowns.  It is thread-safe — the
simulated-cluster ranks and the serving worker pool accumulate concurrently —
and integrates with :mod:`repro.obs`: every :meth:`Timings.measure` section
also opens an observability span of the same name (free when tracing is
disabled), and :meth:`snapshot`/:meth:`merge` fold per-rank timings into
pool-wide totals the way the distributed counters are allreduced.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from contextlib import contextmanager

from ..obs.trace import span

__all__ = ["Timer", "Timings"]


class Timer:
    """A simple start/stop timer."""

    def __init__(self):
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer was not started")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class Timings:
    """Named accumulation of wall-clock time per category (thread-safe).

    Behaves like a mapping of category name to accumulated seconds —
    ``get``/``__getitem__``/``__setitem__``/``__contains__`` mirror the plain
    dict this class replaced, so call sites that treat their ``timings``
    argument as a dict keep working when handed a :class:`Timings`.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._totals: dict[str, float] = defaultdict(float)

    @contextmanager
    def measure(self, name: str):
        """Time a ``with`` section; also emits an obs span of the same name."""

        with span(name):
            start = time.perf_counter()
            try:
                yield
            finally:
                self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        with self._lock:
            self._totals[name] += float(seconds)

    def total(self) -> float:
        with self._lock:
            return sum(self._totals.values())

    def as_dict(self) -> dict[str, float]:
        return self.snapshot()

    def snapshot(self) -> dict[str, float]:
        """Plain-dict copy of the accumulated totals."""

        with self._lock:
            return dict(self._totals)

    def merge(self, other: "Timings | dict") -> None:
        """Fold another accumulator (or its snapshot) into this one."""

        snapshot = other.snapshot() if isinstance(other, Timings) else other
        with self._lock:
            for name, seconds in snapshot.items():
                self._totals[name] += float(seconds)

    # -- dict-compatible access ---------------------------------------------------

    def get(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._totals.get(name, default)

    def __getitem__(self, name: str) -> float:
        with self._lock:
            return self._totals[name]

    def __setitem__(self, name: str, seconds: float) -> None:
        with self._lock:
            self._totals[name] = float(seconds)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._totals
