"""Reproducible random number generation helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["seeded_rng", "spawn_rngs"]


def seeded_rng(seed: int | None = 0) -> np.random.Generator:
    """Create a numpy Generator from an integer seed (``None`` = OS entropy)."""

    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` independent generators from one seed.

    Used to give every data-parallel rank (and every benchmark trial) its own
    stream without correlations.
    """

    if count <= 0:
        raise ValueError("count must be positive")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
