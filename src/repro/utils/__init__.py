"""Shared utilities: seeding, timing and simple logging."""

from .rng import seeded_rng, spawn_rngs
from .timer import Timer, Timings

__all__ = ["seeded_rng", "spawn_rngs", "Timer", "Timings"]
