"""repro — reproduction of distributed Mosaic Flow (SC '23).

The package implements, from scratch and on top of numpy only:

* ``repro.autodiff`` — reverse-mode AD with higher-order gradients,
* ``repro.nn`` / ``repro.models`` / ``repro.optim`` — the SDNet physics-
  informed neural PDE solver, its input-concat baseline, and optimizers,
* ``repro.pde`` / ``repro.fd`` — boundary-value problems and the finite
  difference / geometric multigrid substrate used for ground truth,
* ``repro.data`` — Gaussian-process boundary condition generation,
* ``repro.distributed`` — an MPI-like simulated communicator with a
  communication cost model,
* ``repro.training`` — single-device and data-parallel (Algorithm 1)
  training,
* ``repro.mosaic`` — the Mosaic Flow predictor: sequential, batched and
  distributed (Algorithm 2),
* ``repro.schwarz`` — classical Schwarz domain decomposition baselines,
* ``repro.perfmodel`` — GPU and alpha-beta scaling models used to
  regenerate the paper's performance figures.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
