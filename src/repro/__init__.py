"""repro — reproduction of distributed Mosaic Flow (SC '23).

The package implements, from scratch and on top of numpy only:

* ``repro.autodiff`` — reverse-mode AD with higher-order gradients,
* ``repro.nn`` / ``repro.models`` / ``repro.optim`` — the SDNet physics-
  informed neural PDE solver, its input-concat baseline, and optimizers,
* ``repro.pde`` / ``repro.fd`` — boundary-value problems and the finite
  difference / geometric multigrid substrate used for ground truth,
* ``repro.data`` — Gaussian-process boundary condition generation,
* ``repro.distributed`` — an MPI-like simulated communicator with a
  communication cost model,
* ``repro.training`` — single-device and data-parallel (Algorithm 1)
  training,
* ``repro.mosaic`` — the Mosaic Flow predictor: sequential, batched and
  distributed (Algorithm 2),
* ``repro.schwarz`` — classical Schwarz domain decomposition baselines,
* ``repro.perfmodel`` — GPU and alpha-beta scaling models used to
  regenerate the paper's performance figures,
* ``repro.serving`` — the batched inference service: request validation,
  an async submit/future front-end over an idempotent request store,
  dynamic batching, solution caching, retries/deadlines/quotas and
  worker-pool sharding in front of the Mosaic Flow predictor, with a
  deterministic fault-injection harness,
* ``repro.domains`` — composite (non-rectangular) target domains:
  union-of-rectangles geometries, masked reference solves and load-balanced
  anchor sharding,
* ``repro.engine`` — the trace-and-fuse inference compiler: records one
  forward pass of a model into a static operator graph, optimizes it
  (constant folding, elementwise fusion, dead-code elimination) and runs it
  through preallocated numpy kernels with bitwise parity to eager mode,
* ``repro.obs`` — unified observability: hierarchical span tracing with a
  Chrome-trace exporter, a thread-safe metrics registry (counters, gauges,
  bounded histograms) with JSON/Prometheus export, and opt-in per-kernel
  profiling of compiled engine plans.
"""

__version__ = "0.1.0"

#: serving front-door names re-exported at the package top level
_SERVING_EXPORTS = (
    "Server",
    "SolveRequest",
    "SolveResult",
    "BatchPolicy",
    "SolutionCache",
    "ServingEstimator",
    "SolveFuture",
    "SolveError",
    "RetryExhaustedError",
    "DeadlineExceededError",
    "QuotaExceededError",
    "RequestStore",
    "TenantQuota",
    "FaultInjector",
    "FaultSchedule",
    "RequestJournal",
    "WorkerSupervisor",
    "BreakerPolicy",
)

#: composite-domain names re-exported at the package top level
_DOMAINS_EXPORTS = (
    "CompositeDomain",
    "CompositeMosaicGeometry",
    "composite_reference_solution",
    "sharded_assemble",
)

#: inference-engine names re-exported at the package top level
_ENGINE_EXPORTS = (
    "CompiledModule",
    "CompiledValueAndGrad",
    "compile_module",
    "compile_solver",
    "compile_value_and_grad",
)

#: observability names re-exported at the package top level
_OBS_EXPORTS = (
    "span",
    "enable_tracing",
    "disable_tracing",
    "get_tracer",
    "MetricsRegistry",
    "KernelProfiler",
)

__all__ = [
    "__version__", "serving", "domains", "engine", "obs",
    *_SERVING_EXPORTS, *_DOMAINS_EXPORTS, *_ENGINE_EXPORTS, *_OBS_EXPORTS,
]


def __getattr__(name: str):
    """Lazily expose the serving, domains and engine subsystems (PEP 562).

    Keeps ``import repro`` free of subpackage import costs while still
    allowing ``repro.Server`` / ``repro.CompositeDomain`` /
    ``repro.compile_module`` without an explicit subpackage import.
    """

    import importlib

    if name == "serving" or name in _SERVING_EXPORTS:
        serving = importlib.import_module(__name__ + ".serving")
        return serving if name == "serving" else getattr(serving, name)
    if name == "domains" or name in _DOMAINS_EXPORTS:
        domains = importlib.import_module(__name__ + ".domains")
        return domains if name == "domains" else getattr(domains, name)
    if name == "engine" or name in _ENGINE_EXPORTS:
        engine = importlib.import_module(__name__ + ".engine")
        return engine if name == "engine" else getattr(engine, name)
    if name == "obs" or name in _OBS_EXPORTS:
        obs = importlib.import_module(__name__ + ".obs")
        return obs if name == "obs" else getattr(obs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
