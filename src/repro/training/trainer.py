"""Single-device SDNet trainer.

Implements the paper's training recipe on one (simulated) device: the
two-term physics-informed loss, LAMB/AdamW optimization, warmup + polynomial
learning-rate decay, and per-epoch validation MSE tracking.  The data-parallel
trainer (:mod:`repro.training.ddp`) reuses this class per rank and adds the
Algorithm 1 gradient synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..autodiff import grad
from ..autodiff.tensor import Tensor
from ..data.dataset import BatchIterator, SDNetDataset, TrainingBatch
from ..models.base import NeuralSolver
from ..obs.trace import span
from ..optim import LAMB, AdamW, Optimizer, WarmupPolynomialDecay
from ..pde.losses import PinnLoss
from .metrics import mse

__all__ = ["TrainingConfig", "TrainingHistory", "Trainer", "evaluate_validation_mse"]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyperparameters of an SDNet training run (paper Section 5.2 defaults)."""

    epochs: int = 10
    batch_size: int = 32
    max_lr: float = 1e-3
    warmup_fraction: float = 0.001
    lr_decay_power: float = 1.0
    weight_decay: float = 0.0
    optimizer: str = "lamb"                # "lamb", "adamw"
    data_points_per_domain: int = 64
    collocation_points_per_domain: int = 64
    pde_weight: float = 1.0
    use_pde_loss: bool = True
    laplacian_method: str = "taylor"
    #: run the physics-loss forward+backward through the repro.engine jet
    #: compiler (bitwise-identical gradients, compiled speed)
    engine: bool = False
    seed: int = 0


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run."""

    train_loss: list = field(default_factory=list)
    train_data_loss: list = field(default_factory=list)
    train_pde_loss: list = field(default_factory=list)
    validation_mse: list = field(default_factory=list)
    learning_rates: list = field(default_factory=list)
    epoch_times: list = field(default_factory=list)

    def best_validation_mse(self) -> float:
        return min(self.validation_mse) if self.validation_mse else float("inf")

    def epochs_to_reach(self, target_mse: float) -> int | None:
        """First epoch (1-based) whose validation MSE is below ``target_mse``."""

        for epoch, value in enumerate(self.validation_mse, start=1):
            if value <= target_mse:
                return epoch
        return None


def build_optimizer(model: NeuralSolver, config: TrainingConfig, lr: float) -> Optimizer:
    """Create the optimizer named in the config."""

    if config.optimizer == "lamb":
        return LAMB(model.parameters(), lr=lr, weight_decay=config.weight_decay)
    if config.optimizer == "adamw":
        return AdamW(model.parameters(), lr=lr, weight_decay=config.weight_decay)
    raise ValueError("optimizer must be 'lamb' or 'adamw'")


def evaluate_validation_mse(
    model: NeuralSolver, dataset: SDNetDataset, max_instances: int | None = None
) -> float:
    """Validation MSE over full solution fields (paper's validation metric)."""

    from ..autodiff import no_grad

    n = len(dataset) if max_instances is None else min(len(dataset), max_instances)
    if n == 0:
        return float("nan")
    indices = np.arange(n)
    boundaries, x, u = dataset.full_grid_batch(indices)
    with no_grad():
        prediction = model(Tensor(boundaries), Tensor(x)).data
    return mse(prediction, u)


class Trainer:
    """Single-device physics-informed trainer."""

    def __init__(
        self,
        model: NeuralSolver,
        config: TrainingConfig,
        train_dataset: SDNetDataset,
        validation_dataset: SDNetDataset | None = None,
    ):
        self.model = model
        self.config = config
        self.train_dataset = train_dataset
        self.validation_dataset = validation_dataset
        self.loss_fn = PinnLoss(
            pde_weight=config.pde_weight,
            laplacian_method=config.laplacian_method,
            use_pde_loss=config.use_pde_loss,
            engine=config.engine,
        )
        self.optimizer = build_optimizer(model, config, config.max_lr)
        iterations = max(len(self._iterator(rank=0, world_size=1)) * config.epochs, 1)
        self.scheduler = WarmupPolynomialDecay(
            self.optimizer,
            max_lr=config.max_lr,
            total_iterations=iterations,
            warmup_fraction=config.warmup_fraction,
            power=config.lr_decay_power,
        )

    # -- plumbing ---------------------------------------------------------------

    def _iterator(self, rank: int, world_size: int) -> BatchIterator:
        return BatchIterator(
            self.train_dataset,
            batch_size=self.config.batch_size,
            data_points_per_domain=self.config.data_points_per_domain,
            collocation_points_per_domain=self.config.collocation_points_per_domain,
            seed=self.config.seed,
            rank=rank,
            world_size=world_size,
        )

    # -- core steps ---------------------------------------------------------------

    def compute_gradients(self, batch: TrainingBatch) -> tuple[list[np.ndarray], dict]:
        """Algorithm 1, steps 1-2: two passes with locally accumulated gradients.

        Returns the per-parameter gradient arrays (data + PDE contributions
        summed locally, *not* yet averaged across ranks) and the loss values.
        """

        params = self.model.parameters()
        g = Tensor(batch.boundaries)
        x_data = Tensor(batch.x_data)
        u_data = Tensor(batch.u_data)

        # Step 1: data points.
        with span("train.data_loss"):
            data_term = self.loss_fn.data_term(self.model, g, x_data, u_data)
            grads_data = grad(data_term, params)
            grads = [gd.data.copy() for gd in grads_data]

        # Step 2: collocation points, accumulated onto the data gradients.
        # The weighted-gradient computation goes through PinnLoss so the
        # engine-compiled jet program (config.engine) and the eager tape are
        # interchangeable — they produce bitwise-identical gradients.
        pde_value = 0.0
        if self.config.use_pde_loss:
            with span("train.pde_loss", engine=self.config.engine):
                x_coll = Tensor(batch.x_collocation)
                pde_value, grads_pde = self.loss_fn.pde_term_and_grads(
                    self.model, g, x_coll
                )
                for acc, gp in zip(grads, grads_pde):
                    acc += gp

        losses = {
            "data": data_term.item(),
            "pde": pde_value,
            "total": data_term.item() + self.config.pde_weight * pde_value,
        }
        return grads, losses

    def apply_gradients(self, grads: list[np.ndarray]) -> None:
        """Install gradients on the parameters and take an optimizer step."""

        with span("train.optimizer"):
            for param, g_arr in zip(self.model.parameters(), grads):
                param.grad = Tensor(g_arr)
            self.scheduler.step()
            self.optimizer.step()
            self.optimizer.zero_grad()

    def train_step(self, batch: TrainingBatch) -> dict:
        with span("train.step"):
            grads, losses = self.compute_gradients(batch)
            self.apply_gradients(grads)
        return losses

    # -- full loop -------------------------------------------------------------------

    def fit(self, epochs: int | None = None) -> TrainingHistory:
        """Train for ``epochs`` (defaults to the config value)."""

        import time

        epochs = epochs if epochs is not None else self.config.epochs
        iterator = self._iterator(rank=0, world_size=1)
        history = TrainingHistory()
        for epoch in range(epochs):
            iterator.set_epoch(epoch)
            tic = time.perf_counter()
            epoch_losses = []
            for batch in iterator:
                epoch_losses.append(self.train_step(batch))
            history.epoch_times.append(time.perf_counter() - tic)
            if epoch_losses:
                history.train_loss.append(float(np.mean([l["total"] for l in epoch_losses])))
                history.train_data_loss.append(float(np.mean([l["data"] for l in epoch_losses])))
                history.train_pde_loss.append(float(np.mean([l["pde"] for l in epoch_losses])))
            history.learning_rates.append(self.optimizer.lr)
            if self.validation_dataset is not None:
                history.validation_mse.append(
                    evaluate_validation_mse(self.model, self.validation_dataset)
                )
        return history
