"""Error metrics used across training and evaluation."""

from __future__ import annotations

import numpy as np

__all__ = ["mse", "mae", "max_error", "relative_l2", "EvaluationMetrics"]


def mse(prediction: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error."""

    prediction, target = np.asarray(prediction), np.asarray(target)
    return float(np.mean((prediction - target) ** 2))


def mae(prediction: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error (the paper's MFP accuracy metric)."""

    prediction, target = np.asarray(prediction), np.asarray(target)
    return float(np.mean(np.abs(prediction - target)))


def max_error(prediction: np.ndarray, target: np.ndarray) -> float:
    """Maximum absolute error."""

    prediction, target = np.asarray(prediction), np.asarray(target)
    return float(np.max(np.abs(prediction - target)))


def relative_l2(prediction: np.ndarray, target: np.ndarray) -> float:
    """Relative L2 error ``||p - t|| / ||t||``."""

    prediction, target = np.asarray(prediction), np.asarray(target)
    denom = np.linalg.norm(target)
    return float(np.linalg.norm(prediction - target) / (denom if denom > 0 else 1.0))


class EvaluationMetrics:
    """Convenience container computing all metrics at once."""

    def __init__(self, prediction: np.ndarray, target: np.ndarray):
        self.mse = mse(prediction, target)
        self.mae = mae(prediction, target)
        self.max_error = max_error(prediction, target)
        self.relative_l2 = relative_l2(prediction, target)

    def as_dict(self) -> dict[str, float]:
        return {
            "mse": self.mse,
            "mae": self.mae,
            "max_error": self.max_error,
            "relative_l2": self.relative_l2,
        }
