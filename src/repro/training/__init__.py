"""Training: single-device trainer, data-parallel Algorithm 1, metrics, memory."""

from .ddp import DataParallelTrainer, DdpTrainingResult, scale_config_for_world_size
from .memory import MemoryReport, V100_MEMORY_BYTES, measure_training_memory
from .metrics import EvaluationMetrics, mae, max_error, mse, relative_l2
from .trainer import (
    Trainer,
    TrainingConfig,
    TrainingHistory,
    build_optimizer,
    evaluate_validation_mse,
)

__all__ = [
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "build_optimizer",
    "evaluate_validation_mse",
    "DataParallelTrainer",
    "DdpTrainingResult",
    "scale_config_for_world_size",
    "MemoryReport",
    "measure_training_memory",
    "V100_MEMORY_BYTES",
    "mse",
    "mae",
    "max_error",
    "relative_l2",
    "EvaluationMetrics",
]
