"""Distributed data-parallel SDNet training (Algorithm 1 of the paper).

Each rank processes its shard of the global batch, computes the data-loss
gradients and the collocation (PDE) loss gradients in two separate passes,
accumulates them locally, and participates in a *single* allreduce that
averages the accumulated gradients across ranks.  This preserves exact SGD
semantics — the result equals the gradient of the global mean loss — while
paying one collective per iteration instead of two (Section 3.3).

The module also implements the paper's large-batch scaling rules: when the
global batch is ``k`` times the single-GPU batch, the peak learning rate is
scaled by ``sqrt(k)`` and the warmup fraction linearly with ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..autodiff.tensor import Tensor
from ..data.dataset import SDNetDataset
from ..distributed.comm import Communicator, ReduceOp
from ..distributed.simulated import run_spmd
from ..models.base import NeuralSolver
from ..obs.trace import span
from ..optim import scale_lr_sqrt, scale_warmup_linear
from .trainer import Trainer, TrainingConfig, TrainingHistory, evaluate_validation_mse

__all__ = ["DdpTrainingResult", "DataParallelTrainer", "scale_config_for_world_size"]


def scale_config_for_world_size(config: TrainingConfig, world_size: int) -> TrainingConfig:
    """Apply the paper's large-batch hyperparameter scaling rules.

    The per-rank batch size stays fixed (the global batch grows with the
    world size), the maximum learning rate scales with the square root of the
    batch-size increase, and the warmup fraction scales linearly.
    """

    if world_size <= 1:
        return config
    return replace(
        config,
        batch_size=config.batch_size * world_size,
        max_lr=scale_lr_sqrt(config.max_lr, world_size),
        warmup_fraction=scale_warmup_linear(config.warmup_fraction, world_size),
    )


@dataclass
class DdpTrainingResult:
    """Per-rank result of a data-parallel training run."""

    rank: int
    world_size: int
    history: TrainingHistory
    state_dict: dict
    gradient_allreduce_count: int = 0
    comm_stats: dict = field(default_factory=dict)


class DataParallelTrainer:
    """Runs Algorithm 1 on a (simulated) multi-GPU cluster.

    Parameters
    ----------
    model_factory:
        Zero-argument callable constructing the model.  Every rank calls it;
        rank 0's initial parameters are broadcast so all replicas start
        identically (as PyTorch DDP does).
    config:
        Single-device training configuration; scaling rules are applied
        automatically based on the world size.
    train_dataset / validation_dataset:
        Datasets shared by all ranks (each rank reads only its shard of every
        global batch).
    """

    def __init__(
        self,
        model_factory,
        config: TrainingConfig,
        train_dataset: SDNetDataset,
        validation_dataset: SDNetDataset | None = None,
        apply_scaling_rules: bool = True,
    ):
        self.model_factory = model_factory
        self.base_config = config
        self.train_dataset = train_dataset
        self.validation_dataset = validation_dataset
        self.apply_scaling_rules = apply_scaling_rules

    # -- per-rank program -----------------------------------------------------------

    def run_rank(self, comm: Communicator, epochs: int | None = None) -> DdpTrainingResult:
        config = (
            scale_config_for_world_size(self.base_config, comm.size)
            if self.apply_scaling_rules
            else self.base_config
        )
        model: NeuralSolver = self.model_factory()

        # Broadcast rank 0's initial parameters so every replica starts equal.
        state = comm.bcast(model.state_dict() if comm.is_root else None, root=0)
        model.load_state_dict(state)

        trainer = Trainer(model, config, self.train_dataset, self.validation_dataset)
        iterator = trainer._iterator(rank=comm.rank, world_size=comm.size)
        epochs = epochs if epochs is not None else config.epochs

        import time

        history = TrainingHistory()
        allreduce_count = 0
        for epoch in range(epochs):
            iterator.set_epoch(epoch)
            tic = time.perf_counter()
            epoch_losses = []
            # Each rank runs on its own thread, so the epoch span roots that
            # thread's trace (children: train.* spans and ddp.allreduce).
            with span("ddp.epoch", rank=comm.rank, epoch=epoch):
                for batch in iterator:
                    # Steps 1-2 of Algorithm 1: local gradient accumulation.
                    grads, losses = trainer.compute_gradients(batch)
                    # Step 3: one allreduce for the accumulated gradient.
                    flat = np.concatenate([g.reshape(-1) for g in grads])
                    with span("ddp.allreduce", rank=comm.rank, elements=int(flat.size)):
                        averaged = comm.allreduce(flat, op=ReduceOp.MEAN)
                    allreduce_count += 1
                    offset = 0
                    averaged_grads = []
                    for g in grads:
                        averaged_grads.append(averaged[offset: offset + g.size].reshape(g.shape))
                        offset += g.size
                    trainer.apply_gradients(averaged_grads)
                    epoch_losses.append(losses)
            history.epoch_times.append(time.perf_counter() - tic)
            if epoch_losses:
                history.train_loss.append(float(np.mean([l["total"] for l in epoch_losses])))
                history.train_data_loss.append(float(np.mean([l["data"] for l in epoch_losses])))
                history.train_pde_loss.append(float(np.mean([l["pde"] for l in epoch_losses])))
            history.learning_rates.append(trainer.optimizer.lr)
            if self.validation_dataset is not None:
                history.validation_mse.append(
                    evaluate_validation_mse(model, self.validation_dataset)
                )

        return DdpTrainingResult(
            rank=comm.rank,
            world_size=comm.size,
            history=history,
            state_dict=model.state_dict(),
            gradient_allreduce_count=allreduce_count,
            comm_stats=comm.trace.as_dict(),
        )

    # -- driver --------------------------------------------------------------------------

    def run(self, world_size: int, epochs: int | None = None, timeout: float = 600.0) -> list[DdpTrainingResult]:
        """Train on ``world_size`` simulated ranks; returns per-rank results."""

        return run_spmd(
            world_size,
            self.run_rank,
            kwargs={"epochs": epochs},
            timeout=timeout,
        )
