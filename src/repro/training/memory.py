"""Autograd-graph memory accounting (the Table 3 study).

Table 3 of the paper measures the device memory allocated during a training
step with and without the PDE loss: the higher-order derivative computation
retains a much larger set of intermediate activations, which is what limits
the per-GPU batch size and motivates data-parallel training.

On the CPU reproduction we measure the same effect by tracking the bytes of
every tensor recorded on the autodiff graph during a forward/backward pass
(:class:`repro.autodiff.GraphMemoryTracker`), and we map the result onto the
paper's 16 GB V100 budget to reproduce the "OOM" entries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import GraphMemoryTracker, grad
from ..autodiff.tensor import Tensor
from ..models.base import NeuralSolver
from ..pde.losses import PinnLoss

__all__ = ["MemoryReport", "measure_training_memory"]

#: memory budget of the paper's V100 platform (Table 2), in bytes
V100_MEMORY_BYTES = 16 * 1024 ** 3


@dataclass
class MemoryReport:
    """Graph-memory measurement for one configuration."""

    num_domains: int
    points_per_domain: int
    with_pde_loss: bool
    graph_bytes: int
    tensor_count: int

    @property
    def gigabytes(self) -> float:
        return self.graph_bytes / 1024 ** 3

    def would_oom(self, budget_bytes: int = V100_MEMORY_BYTES, scale: float = 1.0) -> bool:
        """Whether the configuration exceeds the (scaled) device budget."""

        return self.graph_bytes * scale > budget_bytes


def measure_training_memory(
    model: NeuralSolver,
    num_domains: int,
    points_per_domain: int = 64,
    with_pde_loss: bool = True,
    laplacian_method: str = "autograd",
    seed: int = 0,
) -> MemoryReport:
    """Measure the autodiff-graph bytes of one training step.

    A synthetic batch of ``num_domains`` boundary conditions and
    ``points_per_domain`` data/collocation points is pushed through the model
    with the data loss and (optionally) the PDE loss, and gradients with
    respect to the parameters are computed.  The returned report contains the
    bytes of every tensor retained by the graph.
    """

    rng = np.random.default_rng(seed)
    g = Tensor(rng.normal(size=(num_domains, model.boundary_size)))
    x_data = Tensor(rng.uniform(size=(num_domains, points_per_domain, model.coord_dim)))
    u_data = Tensor(rng.normal(size=(num_domains, points_per_domain)))
    x_coll = Tensor(rng.uniform(size=(num_domains, points_per_domain, model.coord_dim)))

    loss_fn = PinnLoss(laplacian_method=laplacian_method, use_pde_loss=with_pde_loss)
    params = model.parameters()

    with GraphMemoryTracker() as tracker:
        values = loss_fn(model, g, x_data, u_data, x_coll if with_pde_loss else None)
        grad(values.total, params)

    return MemoryReport(
        num_domains=num_domains,
        points_per_domain=points_per_domain,
        with_pde_loss=with_pde_loss,
        graph_bytes=tracker.graph_bytes,
        tensor_count=tracker.tensor_count,
    )
