"""Classical overlapping Schwarz methods on the finite-difference substrate.

These are the traditional domain-decomposition baselines the Mosaic Flow
predictor is inspired by (Section 2.3): the alternating (multiplicative)
Schwarz method sweeps the overlapping subdomains in order, solving each local
Dirichlet problem exactly and using the freshest interface values; the
additive variant solves all subdomains from the same state and averages the
overlaps, which exposes the parallelism the distributed MFP exploits.

Unlike the Mosaic Flow predictor, classical Schwarz recomputes *every* grid
point of every subdomain in every iteration — the cost the paper's
interface-only iteration avoids.  The ``points_solved_per_iteration``
property quantifies that difference for the comparison benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fd.grid import Grid2D
from ..fd.solve import solve_laplace

__all__ = ["SubdomainWindow", "SchwarzResult", "AlternatingSchwarz", "uniform_decomposition"]


@dataclass(frozen=True)
class SubdomainWindow:
    """An overlapping rectangular subdomain in global grid indices."""

    row_start: int
    row_stop: int
    col_start: int
    col_stop: int

    @property
    def shape(self) -> tuple[int, int]:
        return (self.row_stop - self.row_start, self.col_stop - self.col_start)

    @property
    def num_points(self) -> int:
        return self.shape[0] * self.shape[1]


def uniform_decomposition(
    grid: Grid2D, blocks: tuple[int, int], overlap: int
) -> list[SubdomainWindow]:
    """Split a grid into ``blocks`` overlapping windows with ``overlap`` points.

    Every window is extended by ``overlap`` grid points into its neighbours
    (clipped at the domain boundary).  Windows must contain at least three
    points per direction so a local Dirichlet solve is well posed.
    """

    if overlap < 1:
        raise ValueError("classical Schwarz requires overlap >= 1 grid point")
    rows_blocks, cols_blocks = blocks
    if rows_blocks < 1 or cols_blocks < 1:
        raise ValueError("blocks must be positive")
    row_edges = np.linspace(0, grid.ny, rows_blocks + 1, dtype=int)
    col_edges = np.linspace(0, grid.nx, cols_blocks + 1, dtype=int)
    windows = []
    for i in range(rows_blocks):
        for j in range(cols_blocks):
            r0 = max(int(row_edges[i]) - overlap, 0)
            r1 = min(int(row_edges[i + 1]) + overlap, grid.ny)
            c0 = max(int(col_edges[j]) - overlap, 0)
            c1 = min(int(col_edges[j + 1]) + overlap, grid.nx)
            if r1 - r0 < 3 or c1 - c0 < 3:
                raise ValueError("subdomain windows too small; reduce blocks or overlap")
            windows.append(SubdomainWindow(r0, r1, c0, c1))
    return windows


@dataclass
class SchwarzResult:
    """Result of a Schwarz iteration."""

    solution: np.ndarray
    iterations: int
    converged: bool
    deltas: list = field(default_factory=list)
    error_history: list = field(default_factory=list)


class AlternatingSchwarz:
    """Multiplicative (alternating) or additive overlapping Schwarz solver.

    Parameters
    ----------
    grid:
        Global discretization grid.
    windows:
        Overlapping subdomain windows covering the grid.
    mode:
        ``"multiplicative"`` (alternating sweeps, the classical ASM) or
        ``"additive"`` (Jacobi-like parallel variant).
    solver_method:
        Local Dirichlet solver method (forwarded to :func:`solve_laplace`).
    """

    def __init__(
        self,
        grid: Grid2D,
        windows: list[SubdomainWindow],
        mode: str = "multiplicative",
        solver_method: str = "direct",
    ):
        if mode not in ("multiplicative", "additive"):
            raise ValueError("mode must be 'multiplicative' or 'additive'")
        if not windows:
            raise ValueError("at least one subdomain window is required")
        self.grid = grid
        self.windows = list(windows)
        self.mode = mode
        self.solver_method = solver_method
        self._subgrids = [
            grid.subgrid(w.row_start, w.col_start, w.shape[0], w.shape[1]) for w in windows
        ]

    @property
    def points_solved_per_iteration(self) -> int:
        """Grid points recomputed per iteration (all interior subdomain points)."""

        return sum((w.shape[0] - 2) * (w.shape[1] - 2) for w in self.windows)

    def _solve_window(self, field: np.ndarray, index: int) -> np.ndarray:
        window = self.windows[index]
        subgrid = self._subgrids[index]
        local_bc = field[
            window.row_start: window.row_stop, window.col_start: window.col_stop
        ]
        return solve_laplace(subgrid, local_bc, method=self.solver_method)

    def run(
        self,
        boundary_field: np.ndarray,
        max_iterations: int = 50,
        tol: float = 1e-8,
        reference: np.ndarray | None = None,
        initial_value: float = 0.0,
    ) -> SchwarzResult:
        """Iterate Schwarz sweeps until the interior update stalls below ``tol``."""

        field_array = np.array(boundary_field, dtype=float, copy=True)
        mask = self.grid.boundary_mask()
        field_array[~mask] = initial_value

        deltas: list[float] = []
        errors: list[float] = []
        converged = False
        iterations = 0
        for iteration in range(1, max_iterations + 1):
            iterations = iteration
            previous = field_array.copy()
            if self.mode == "multiplicative":
                for index, window in enumerate(self.windows):
                    local = self._solve_window(field_array, index)
                    field_array[
                        window.row_start + 1: window.row_stop - 1,
                        window.col_start + 1: window.col_stop - 1,
                    ] = local[1:-1, 1:-1]
            else:  # additive
                accumulator = np.zeros_like(field_array)
                counts = np.zeros_like(field_array)
                for index, window in enumerate(self.windows):
                    local = self._solve_window(previous, index)
                    accumulator[
                        window.row_start + 1: window.row_stop - 1,
                        window.col_start + 1: window.col_stop - 1,
                    ] += local[1:-1, 1:-1]
                    counts[
                        window.row_start + 1: window.row_stop - 1,
                        window.col_start + 1: window.col_stop - 1,
                    ] += 1.0
                updated = counts > 0
                field_array[updated] = accumulator[updated] / counts[updated]
                field_array[mask] = np.asarray(boundary_field)[mask]

            denom = np.linalg.norm(previous)
            delta = float(np.linalg.norm(field_array - previous) / (denom if denom > 0 else 1.0))
            deltas.append(delta)
            if reference is not None:
                errors.append(float(np.mean(np.abs(field_array - reference))))
            if delta < tol:
                converged = True
                break

        return SchwarzResult(
            solution=field_array,
            iterations=iterations,
            converged=converged,
            deltas=deltas,
            error_history=errors,
        )
