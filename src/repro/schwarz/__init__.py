"""Classical Schwarz domain-decomposition baselines."""

from .alternating import (
    AlternatingSchwarz,
    SchwarzResult,
    SubdomainWindow,
    uniform_decomposition,
)

__all__ = [
    "AlternatingSchwarz",
    "SchwarzResult",
    "SubdomainWindow",
    "uniform_decomposition",
]
