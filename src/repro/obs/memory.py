"""Byte-accounting registry: who owns the bytes this process is holding.

The serving and engine layers keep long-lived buffers in several places —
compiled-plan buffers (:class:`~repro.engine.runtime.ExecutionPlan` /
:class:`~repro.engine.bucketing.BucketedPlan` entries of a
:class:`~repro.engine.runtime.PlanCache`), LRU solution-cache entries,
settled request-store results, per-request boundary payloads, mega-batch
concatenation scratch.  ``psutil``-style RSS numbers cannot attribute any of
it; this module does, with explicit instrumentation:

    from ..obs import memory as obs_memory

    obs_memory.add("engine.plan_buffers", buffer.nbytes)
    ...
    obs_memory.sub("engine.plan_buffers", buffer.nbytes)

Each *owner* (a dotted string) gets live/peak gauges plus cumulative
allocation totals, and the registry derives a machine-independent
``bytes_per_request`` stream for the benchmark trajectory gate (bytes are
bytes on every machine, unlike seconds).

**Accounting is off by default** and the disabled path mirrors the tracer's:
:func:`add`/:func:`sub` read one module global and return — no allocation,
no locking, no clock — so permanent instrumentation of allocation sites is
safe (bounded below 2% by ``benchmarks/test_obs_overhead.py``).
"""

from __future__ import annotations

import threading

__all__ = [
    "ENGINE_PLAN_BUFFERS",
    "SOLUTION_CACHE",
    "REQUEST_STORE",
    "REQUEST_PAYLOADS",
    "MEGA_SCRATCH",
    "OwnerStats",
    "MemoryAccountant",
    "add",
    "sub",
    "enable_memory_accounting",
    "disable_memory_accounting",
    "get_accountant",
]

#: canonical owner names used by the built-in instrumentation sites
ENGINE_PLAN_BUFFERS = "engine.plan_buffers"
SOLUTION_CACHE = "serving.solution_cache"
REQUEST_STORE = "serving.request_store"
REQUEST_PAYLOADS = "serving.request_payloads"
MEGA_SCRATCH = "serving.mega_batch_scratch"


class OwnerStats:
    """Byte accounting of one owner (mutated under the accountant's lock)."""

    __slots__ = ("live", "peak", "allocated", "allocs", "frees")

    def __init__(self):
        self.live = 0        #: bytes currently held
        self.peak = 0        #: high-water mark of ``live``
        self.allocated = 0   #: cumulative bytes ever added
        self.allocs = 0      #: number of add() events
        self.frees = 0       #: number of sub() events

    def as_dict(self) -> dict:
        return {
            "live_bytes": self.live,
            "peak_bytes": self.peak,
            "allocated_bytes": self.allocated,
            "allocs": self.allocs,
            "frees": self.frees,
        }


class MemoryAccountant:
    """Thread-safe per-owner byte accounting with live/peak/cumulative gauges.

    Parameters
    ----------
    budget_bytes:
        Optional live-bytes budget.  Setting one turns the accountant from a
        pure observer into the signal driving graceful degradation: the
        serving :class:`~repro.serving.store.AdmissionController` compares
        :meth:`pressure` (total live bytes over budget) against per-priority
        shed thresholds and sheds lowest-priority tenants first as live
        bytes approach the budget.
    """

    def __init__(self, budget_bytes: int | None = None):
        self._lock = threading.Lock()
        self._owners: dict[str, OwnerStats] = {}
        self._budget: int | None = None
        if budget_bytes is not None:
            self.set_budget(budget_bytes)

    # -- recording ----------------------------------------------------------------

    def add(self, owner: str, nbytes: int) -> None:
        """Charge ``nbytes`` to ``owner`` (an allocation or insertion)."""

        nbytes = int(nbytes)
        with self._lock:
            stats = self._owners.get(owner)
            if stats is None:
                stats = self._owners[owner] = OwnerStats()
            stats.live += nbytes
            if stats.live > stats.peak:
                stats.peak = stats.live
            stats.allocated += nbytes
            stats.allocs += 1

    def sub(self, owner: str, nbytes: int) -> None:
        """Release ``nbytes`` from ``owner`` (a free or eviction).

        Clamped at zero: releasing bytes that were charged while accounting
        was disabled must not drive the gauge negative.
        """

        nbytes = int(nbytes)
        with self._lock:
            stats = self._owners.get(owner)
            if stats is None:
                stats = self._owners[owner] = OwnerStats()
            stats.live = max(0, stats.live - nbytes)
            stats.frees += 1

    # -- reads --------------------------------------------------------------------

    def owners(self) -> list[str]:
        with self._lock:
            return sorted(self._owners)

    def live_bytes(self, owner: str | None = None) -> int:
        """Live bytes of one owner, or the total across all owners."""

        with self._lock:
            if owner is not None:
                stats = self._owners.get(owner)
                return stats.live if stats is not None else 0
            return sum(s.live for s in self._owners.values())

    def peak_bytes(self, owner: str | None = None) -> int:
        """Peak live bytes of one owner, or the sum of per-owner peaks.

        The summed total is an upper bound on the true joint peak (owners
        may not peak simultaneously), which is the conservative direction
        for a memory gate.
        """

        with self._lock:
            if owner is not None:
                stats = self._owners.get(owner)
                return stats.peak if stats is not None else 0
            return sum(s.peak for s in self._owners.values())

    def allocated_bytes(self, owner: str | None = None) -> int:
        """Cumulative bytes ever charged (the ``bytes_per_request`` numerator)."""

        with self._lock:
            if owner is not None:
                stats = self._owners.get(owner)
                return stats.allocated if stats is not None else 0
            return sum(s.allocated for s in self._owners.values())

    def event_count(self) -> int:
        """Total add/sub events recorded (overhead-benchmark site count)."""

        with self._lock:
            return sum(s.allocs + s.frees for s in self._owners.values())

    def set_budget(self, budget_bytes: int | None) -> None:
        """Install (or clear, with ``None``) the live-bytes budget."""

        if budget_bytes is not None:
            budget_bytes = int(budget_bytes)
            if budget_bytes <= 0:
                raise ValueError("budget_bytes must be positive (or None)")
        with self._lock:
            self._budget = budget_bytes

    @property
    def budget_bytes(self) -> int | None:
        with self._lock:
            return self._budget

    def headroom_bytes(self) -> int | None:
        """Budget minus total live bytes (floored at 0), or ``None`` unbudgeted."""

        with self._lock:
            if self._budget is None:
                return None
            live = sum(s.live for s in self._owners.values())
            return max(0, self._budget - live)

    def pressure(self) -> float | None:
        """Total live bytes as a fraction of the budget, or ``None`` unbudgeted.

        Exceeding the budget returns values above 1.0 — shed decisions
        compare this against thresholds in (0, 1], so over-budget pressure
        sheds every priority.
        """

        with self._lock:
            if self._budget is None:
                return None
            live = sum(s.live for s in self._owners.values())
            return live / self._budget

    def bytes_per_request(self, completed_requests: int) -> float:
        """Machine-independent cumulative-bytes-per-request ratio."""

        if completed_requests <= 0:
            return 0.0
        return self.allocated_bytes() / completed_requests

    def snapshot(self) -> dict:
        """Plain-dict snapshot: per-owner stats plus the totals."""

        with self._lock:
            owners = {name: stats.as_dict() for name, stats in sorted(self._owners.items())}
            budget = self._budget
        snap = {
            "owners": owners,
            "total_live_bytes": sum(o["live_bytes"] for o in owners.values()),
            "total_peak_bytes": sum(o["peak_bytes"] for o in owners.values()),
            "total_allocated_bytes": sum(o["allocated_bytes"] for o in owners.values()),
        }
        if budget is not None:
            snap["budget_bytes"] = budget
            snap["headroom_bytes"] = max(0, budget - snap["total_live_bytes"])
            snap["pressure"] = snap["total_live_bytes"] / budget
        return snap

    def publish(self, registry) -> None:
        """Mirror the gauges into a :class:`~repro.obs.metrics.MetricsRegistry`.

        Uses labeled gauges (``memory_live_bytes{owner="..."}``) so the
        Prometheus exporter attributes every byte.
        """

        snap = self.snapshot()
        for name, stats in snap["owners"].items():
            labels = {"owner": name}
            registry.gauge("memory.live_bytes", labels=labels).set(stats["live_bytes"])
            registry.gauge("memory.peak_bytes", labels=labels).set(stats["peak_bytes"])
            registry.gauge("memory.allocated_bytes", labels=labels).set(
                stats["allocated_bytes"]
            )
        if "budget_bytes" in snap:
            # Budget/headroom/pressure ride the export so dashboards and
            # health() agree on when shedding starts.
            registry.gauge("memory.budget_bytes").set(snap["budget_bytes"])
            registry.gauge("memory.headroom_bytes").set(snap["headroom_bytes"])
            registry.gauge("memory.pressure").set(snap["pressure"])

    def report(self) -> str:
        """Terminal table of per-owner live/peak/cumulative bytes."""

        snap = self.snapshot()
        lines = ["=== memory accounting ===",
                 f"{'owner':<32s} {'live':>12s} {'peak':>12s} {'allocated':>12s}"]
        for name, stats in snap["owners"].items():
            lines.append(
                f"{name:<32s} {stats['live_bytes']:>12,d} "
                f"{stats['peak_bytes']:>12,d} {stats['allocated_bytes']:>12,d}"
            )
        lines.append(
            f"{'total':<32s} {snap['total_live_bytes']:>12,d} "
            f"{snap['total_peak_bytes']:>12,d} {snap['total_allocated_bytes']:>12,d}"
        )
        return "\n".join(lines)

    def clear(self) -> None:
        with self._lock:
            self._owners.clear()


# ---------------------------------------------------------------------------
# Global accountant (what instrumented allocation sites use)
# ---------------------------------------------------------------------------

#: the active accountant, or ``None`` while accounting is disabled
_ACTIVE: MemoryAccountant | None = None


def add(owner: str, nbytes: int) -> None:
    """Charge bytes on the active accountant, or a free no-op when disabled."""

    accountant = _ACTIVE
    if accountant is None:
        return
    accountant.add(owner, nbytes)


def sub(owner: str, nbytes: int) -> None:
    """Release bytes on the active accountant, or a free no-op when disabled."""

    accountant = _ACTIVE
    if accountant is None:
        return
    accountant.sub(owner, nbytes)


def enable_memory_accounting(
    accountant: MemoryAccountant | None = None,
) -> MemoryAccountant:
    """Install (and return) the active accountant; a fresh one by default."""

    global _ACTIVE
    _ACTIVE = accountant if accountant is not None else MemoryAccountant()
    return _ACTIVE


def disable_memory_accounting() -> None:
    """Disable accounting; instrumented sites return to the no-op path."""

    global _ACTIVE
    _ACTIVE = None


def get_accountant() -> MemoryAccountant | None:
    """The active accountant, or ``None`` when accounting is disabled."""

    return _ACTIVE
