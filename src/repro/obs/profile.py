"""Per-kernel profiling of compiled execution plans.

A compiled plan (:class:`~repro.engine.runtime.ExecutionPlan` or a bucketed
specialization) is a flat list of numpy kernel closures.  With profiling
enabled, the plan executor times every step and feeds this profiler, which
accumulates **per op**: call count, wall seconds, and output-buffer bytes
moved.  The aggregate answers "which kernels is this compiled program
actually spending its time in" — the `top kernels` report — without touching
the kernels themselves, so profiled execution computes the exact same
floating-point operations in the same order and stays bitwise identical to
unprofiled execution (asserted in ``tests/obs/test_obs_profile.py``).

The profiler also counts discrete compilation events (traces, plan builds,
plan-cache evictions, bucket specializations) via :meth:`count`, so one
object tells the whole story of a compiled module: what was compiled, what
was cached, and where the runtime went.

Profiling is opt-in per compiled artifact (``compile_module(...,
profile=True)``, ``CompiledValueAndGrad(..., profile=True)``) and costs one
clock pair per kernel step when on; when off the executor takes the exact
pre-existing loop with no per-step branching.
"""

from __future__ import annotations

import threading

__all__ = ["KernelProfiler"]


class KernelProfiler:
    """Thread-safe accumulator of per-kernel runtime statistics."""

    def __init__(self):
        self._lock = threading.Lock()
        #: op name -> [calls, seconds, bytes]
        self._ops: dict[str, list] = {}
        #: discrete event name -> count (plan builds, evictions, ...)
        self._events: dict[str, int] = {}

    # -- recording (hot path: called once per executed kernel step) --------------

    def record(self, op: str, seconds: float, nbytes: int) -> None:
        with self._lock:
            entry = self._ops.get(op)
            if entry is None:
                entry = self._ops[op] = [0, 0.0, 0]
            entry[0] += 1
            entry[1] += seconds
            entry[2] += nbytes

    def count(self, event: str, amount: int = 1) -> None:
        """Count a discrete event (``plan_build``, ``plan_eviction``, ...)."""

        with self._lock:
            self._events[event] = self._events.get(event, 0) + amount

    # -- reads --------------------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        with self._lock:
            return sum(entry[1] for entry in self._ops.values())

    @property
    def total_calls(self) -> int:
        with self._lock:
            return sum(entry[0] for entry in self._ops.values())

    def events(self) -> dict:
        with self._lock:
            return dict(self._events)

    def top_kernels(self, n: int = 10) -> list[dict]:
        """The ``n`` ops with the largest accumulated wall time, descending."""

        with self._lock:
            rows = [
                {
                    "op": op,
                    "calls": entry[0],
                    "seconds": entry[1],
                    "bytes": entry[2],
                }
                for op, entry in self._ops.items()
            ]
        total = sum(row["seconds"] for row in rows) or 1.0
        rows.sort(key=lambda row: row["seconds"], reverse=True)
        for row in rows:
            row["fraction"] = row["seconds"] / total
        return rows[:n]

    def as_dict(self) -> dict:
        return {
            "kernels": self.top_kernels(n=len(self._ops) or 1),
            "events": self.events(),
            "total_seconds": self.total_seconds,
            "total_calls": self.total_calls,
        }

    def merge(self, other: "KernelProfiler") -> None:
        snapshot_ops, snapshot_events = other._snapshot_raw()
        with self._lock:
            for op, (calls, seconds, nbytes) in snapshot_ops.items():
                entry = self._ops.get(op)
                if entry is None:
                    self._ops[op] = [calls, seconds, nbytes]
                else:
                    entry[0] += calls
                    entry[1] += seconds
                    entry[2] += nbytes
            for event, count in snapshot_events.items():
                self._events[event] = self._events.get(event, 0) + count

    def _snapshot_raw(self):
        with self._lock:
            return (
                {op: list(entry) for op, entry in self._ops.items()},
                dict(self._events),
            )

    def clear(self) -> None:
        with self._lock:
            self._ops.clear()
            self._events.clear()

    def report(self, n: int = 10) -> str:
        """Human-readable top-kernels table."""

        rows = self.top_kernels(n)
        lines = ["=== top kernels ==="]
        lines.append(f"{'op':<16s} {'calls':>8s} {'seconds':>10s} {'share':>7s} {'MB':>10s}")
        for row in rows:
            lines.append(
                f"{row['op']:<16s} {row['calls']:>8d} {row['seconds']:>10.6f} "
                f"{row['fraction']:>6.1%} {row['bytes'] / 1e6:>10.2f}"
            )
        events = self.events()
        if events:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(events.items()))
            lines.append(f"events: {rendered}")
        return "\n".join(lines)
