"""repro.obs — unified tracing, metrics and per-kernel profiling.

One observability layer across the whole system, replacing three
disconnected ad-hoc instruments (``serving.stats`` latency lists,
``engine`` counter dataclasses, predictor timing dicts):

* :mod:`.trace` — a thread-safe hierarchical span tracer with context-manager
  spans, near-zero overhead when disabled, a Chrome trace-event exporter and
  a terminal span-tree rendering.  Wired through the serving request
  lifecycle, the training step and the distributed predictor's per-rank
  phases.
* :mod:`.metrics` — counters, gauges and bounded-memory histograms (ring
  window, exact ``np.percentile`` quantiles) behind a single
  snapshot/merge registry.
* :mod:`.export` — JSON and Prometheus text exposition of snapshots
  (labeled series escaped per the exposition format).
* :mod:`.profile` — per-kernel profiling of compiled execution plans: per-op
  wall time, call counts and buffer bytes plus plan-cache events, surfaced
  as a "top kernels" report (opt-in; bitwise-identical results).
* :mod:`.memory` — byte-accounting registry attributing allocations to
  owners (plan buffers, caches, request payloads, mega-batch scratch) with
  live/peak gauges and a machine-independent bytes-per-request stream;
  near-free when disabled, like the tracer.
* :mod:`.flight` — tail-sampling flight recorder: the full span tree plus
  metric exemplars, retained only for slow / failed / retried / deadline /
  straggler requests, in a bounded ring with Chrome-trace dump-on-demand.
* :mod:`.slo` — rolling-window SLOs (availability, latency attainment) with
  multi-window burn-rate computation, surfaced via ``Server.health()``.

Quick start::

    from repro import obs

    tracer = obs.enable_tracing()
    ...  # serve requests / run train steps
    print(tracer.span_tree())
    tracer.write_chrome_trace("trace.json")
    obs.disable_tracing()
"""

from .export import to_json, to_prometheus
from .flight import FlightRecord, FlightRecorder
from .memory import (
    MemoryAccountant,
    disable_memory_accounting,
    enable_memory_accounting,
    get_accountant,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import KernelProfiler
from .slo import SLObjective, SLOTracker
from .trace import (
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "KernelProfiler",
    "Span",
    "Tracer",
    "span",
    "enable_tracing",
    "disable_tracing",
    "get_tracer",
    "to_json",
    "to_prometheus",
    "MemoryAccountant",
    "enable_memory_accounting",
    "disable_memory_accounting",
    "get_accountant",
    "FlightRecord",
    "FlightRecorder",
    "SLObjective",
    "SLOTracker",
]
