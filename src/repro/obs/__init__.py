"""repro.obs — unified tracing, metrics and per-kernel profiling.

One observability layer across the whole system, replacing three
disconnected ad-hoc instruments (``serving.stats`` latency lists,
``engine`` counter dataclasses, predictor timing dicts):

* :mod:`.trace` — a thread-safe hierarchical span tracer with context-manager
  spans, near-zero overhead when disabled, a Chrome trace-event exporter and
  a terminal span-tree rendering.  Wired through the serving request
  lifecycle, the training step and the distributed predictor's per-rank
  phases.
* :mod:`.metrics` — counters, gauges and bounded-memory histograms (ring
  window, exact ``np.percentile`` quantiles) behind a single
  snapshot/merge registry.
* :mod:`.export` — JSON and Prometheus text exposition of snapshots.
* :mod:`.profile` — per-kernel profiling of compiled execution plans: per-op
  wall time, call counts and buffer bytes plus plan-cache events, surfaced
  as a "top kernels" report (opt-in; bitwise-identical results).

Quick start::

    from repro import obs

    tracer = obs.enable_tracing()
    ...  # serve requests / run train steps
    print(tracer.span_tree())
    tracer.write_chrome_trace("trace.json")
    obs.disable_tracing()
"""

from .export import to_json, to_prometheus
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import KernelProfiler
from .trace import (
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "KernelProfiler",
    "Span",
    "Tracer",
    "span",
    "enable_tracing",
    "disable_tracing",
    "get_tracer",
    "to_json",
    "to_prometheus",
]
