"""Metrics registry: counters, gauges and bounded-memory histograms.

One :class:`MetricsRegistry` absorbs the ad-hoc counters that used to live in
separate subsystems (``serving.stats.ServingStats`` lists, the engine's
``EngineStats``/``JetStats`` dataclasses, predictor timing dicts) behind a
single snapshot/merge API:

* :class:`Counter` — monotonically increasing count (requests, cache hits),
* :class:`Gauge`   — last-written value (plan bytes in use, queue depth),
* :class:`Histogram` — a *bounded* distribution: a ring window of the most
  recent observations for exact ``np.percentile`` quantiles, plus exact
  running count/sum/min/max over *all* observations.  Memory is
  ``O(window)`` regardless of uptime — this is what fixes the unbounded
  ``ServingStats.latencies`` list of a long-lived server.

All metric updates are thread-safe (one lock per metric; the serving worker
pool and simulated ranks update concurrently).  ``snapshot()`` returns plain
dicts; ``merge()`` folds another registry in (counters add, gauges take the
newest write, histogram windows concatenate and re-trim) — the pattern used
to aggregate per-rank registries, mirroring ``comm.allreduce`` of the
distributed counters.

Exporters for snapshots (JSON / Prometheus text) live in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "metric_key"]


def metric_key(name: str, labels: dict | None = None) -> str:
    """Canonical registry key of a metric: name plus sorted label pairs.

    Two call sites asking for the same name and label set always resolve to
    the same metric object, regardless of dict ordering.
    """

    if not labels:
        return name
    suffix = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{suffix}}}"


class Counter:
    """A thread-safe monotonically increasing counter."""

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(labels) if labels else None
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge for ups and downs")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        out = {"type": "counter", "value": self.value}
        if self.labels:
            out["name"] = self.name
            out["labels"] = dict(self.labels)
        return out

    def merge(self, other_snapshot: dict) -> None:
        with self._lock:
            self._value += other_snapshot["value"]


class Gauge:
    """A thread-safe last-written value (with a write sequence for merging)."""

    def __init__(self, name: str, labels: dict | None = None):
        self.name = name
        self.labels = dict(labels) if labels else None
        self._lock = threading.Lock()
        self._value = 0.0
        self._writes = 0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            self._writes += 1

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            self._writes += 1

    @property
    def value(self):
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        with self._lock:
            out = {"type": "gauge", "value": self._value, "writes": self._writes}
        if self.labels:
            out["name"] = self.name
            out["labels"] = dict(self.labels)
        return out

    def merge(self, other_snapshot: dict) -> None:
        # Merging gauges from two sources keeps the one written more often
        # (a proxy for "most recent" that is stable under snapshot dicts).
        with self._lock:
            if other_snapshot.get("writes", 0) > self._writes:
                self._value = other_snapshot["value"]
                self._writes = other_snapshot["writes"]


class Histogram:
    """Bounded-memory distribution with exact window percentiles.

    The most recent ``window`` observations are kept in a preallocated ring
    buffer; ``percentile`` computes exact ``np.percentile`` quantiles over
    that window.  ``count``/``sum``/``min``/``max`` are exact over the full
    stream, so derived means never drift even after the window wraps.
    """

    def __init__(self, name: str, window: int = 4096, labels: dict | None = None):
        if window < 1:
            raise ValueError("window must be at least 1")
        self.name = name
        self.labels = dict(labels) if labels else None
        self.window = int(window)
        self._lock = threading.Lock()
        self._ring = np.empty(self.window, dtype=float)
        self._size = 0      # valid ring entries (<= window)
        self._cursor = 0    # next write position
        self._count = 0     # observations over the full stream
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._ring[self._cursor] = value
            self._cursor = (self._cursor + 1) % self.window
            if self._size < self.window:
                self._size += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    # -- reads --------------------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def values(self) -> np.ndarray:
        """The window's observations (a copy), oldest first."""

        with self._lock:
            return self._window_values()

    def _window_values(self) -> np.ndarray:
        if self._size == self.window:
            return np.concatenate(
                [self._ring[self._cursor:], self._ring[: self._cursor]]
            )
        return self._ring[: self._size].copy()

    def percentile(self, q: float) -> float:
        """Exact percentile over the current window (0 when empty)."""

        values = self.values()
        if values.size == 0:
            return 0.0
        return float(np.percentile(values, q))

    def snapshot(self) -> dict:
        with self._lock:
            values = self._window_values()
            out = {
                "type": "histogram",
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count if self._count else 0.0,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
                "window": self.window,
                "window_count": int(values.size),
            }
        for q in (50, 90, 99):
            out[f"p{q}"] = float(np.percentile(values, q)) if values.size else 0.0
        out["window_values"] = values.tolist()
        if self.labels:
            out["name"] = self.name
            out["labels"] = dict(self.labels)
        return out

    def merge(self, other_snapshot: dict) -> None:
        """Fold another histogram's snapshot in (window concatenates, trims)."""

        values = other_snapshot.get("window_values", [])
        with self._lock:
            self._count += other_snapshot["count"]
            self._sum += other_snapshot["sum"]
            if other_snapshot["count"]:
                self._min = min(self._min, other_snapshot["min"])
                self._max = max(self._max, other_snapshot["max"])
            mine = self._window_values()
            combined = np.concatenate([mine, np.asarray(values, dtype=float)])
            kept = combined[-self.window:]
            self._ring[: kept.size] = kept
            self._size = int(kept.size)
            self._cursor = int(kept.size) % self.window


class MetricsRegistry:
    """A named collection of metrics with one snapshot/merge surface."""

    _TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    # -- construction -------------------------------------------------------------

    def _get_or_create(self, key: str, kind: str, factory):
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = factory()
            elif type(metric) is not self._TYPES[kind]:
                raise TypeError(
                    f"metric {key!r} already registered as "
                    f"{type(metric).__name__}, not {kind}"
                )
            return metric

    def counter(self, name: str, labels: dict | None = None) -> Counter:
        key = metric_key(name, labels)
        return self._get_or_create(key, "counter", lambda: Counter(name, labels=labels))

    def gauge(self, name: str, labels: dict | None = None) -> Gauge:
        key = metric_key(name, labels)
        return self._get_or_create(key, "gauge", lambda: Gauge(name, labels=labels))

    def histogram(
        self, name: str, window: int = 4096, labels: dict | None = None
    ) -> Histogram:
        key = metric_key(name, labels)
        return self._get_or_create(
            key, "histogram", lambda: Histogram(name, window, labels=labels)
        )

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    # -- snapshot / merge ---------------------------------------------------------

    def snapshot(self, include_window: bool = False) -> dict:
        """Plain-dict snapshot of every metric, keyed by name.

        ``include_window`` keeps each histogram's raw window values in the
        snapshot (needed for lossless cross-rank merging; dropped by default
        to keep exported snapshots small).
        """

        with self._lock:
            metrics = list(self._metrics.items())
        out = {}
        for name, metric in sorted(metrics):
            snap = metric.snapshot()
            if not include_window:
                snap.pop("window_values", None)
            out[name] = snap
        return out

    def merge(self, other: "MetricsRegistry | dict") -> None:
        """Fold another registry (or a full snapshot with windows) into this one.

        Metrics absent locally are created with the incoming type; counters
        add, gauges keep the most-written value, histogram windows
        concatenate and re-trim to the bounded window.
        """

        snapshot = (
            other.snapshot(include_window=True)
            if isinstance(other, MetricsRegistry)
            else other
        )
        for key, snap in snapshot.items():
            kind = snap.get("type")
            # Labeled entries carry their base name + labels; the key string
            # is only the canonical registry index.
            name = snap.get("name", key)
            labels = snap.get("labels")
            if kind == "counter":
                self.counter(name, labels=labels).merge(snap)
            elif kind == "gauge":
                self.gauge(name, labels=labels).merge(snap)
            elif kind == "histogram":
                self.histogram(
                    name, window=snap.get("window", 4096), labels=labels
                ).merge(snap)
            else:
                raise ValueError(f"snapshot entry {key!r} has unknown type {kind!r}")
