"""Exporters for metric snapshots: JSON and Prometheus text exposition.

The snapshot dicts produced by
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` are already plain data;
this module renders them for the two consumers a service actually has:

* :func:`to_json` — machine-readable dump (CI artifacts, dashboards),
* :func:`to_prometheus` — the Prometheus text exposition format (version
  0.0.4): counters as ``_total`` samples, gauges as plain samples,
  histograms as summaries with ``quantile`` labels plus ``_sum``/``_count``.

Metric names are sanitized to the Prometheus grammar (dots and dashes become
underscores).
"""

from __future__ import annotations

import json
import re

__all__ = ["to_json", "to_prometheus"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def to_json(snapshot: dict, indent: int | None = 2) -> str:
    """Serialize a registry snapshot as JSON."""

    return json.dumps(snapshot, indent=indent, sort_keys=True)


def to_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot in the Prometheus text exposition format."""

    lines: list[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type")
        prom = _prom_name(name)
        if kind == "counter":
            lines.append(f"# TYPE {prom}_total counter")
            lines.append(f"{prom}_total {_format_value(entry['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_format_value(entry['value'])}")
        elif kind == "histogram":
            # Exposed as a summary: exact window quantiles + stream totals.
            lines.append(f"# TYPE {prom} summary")
            for q in (50, 90, 99):
                key = f"p{q}"
                if key in entry:
                    lines.append(
                        f'{prom}{{quantile="{q / 100}"}} {_format_value(entry[key])}'
                    )
            lines.append(f"{prom}_sum {_format_value(entry['sum'])}")
            lines.append(f"{prom}_count {entry['count']}")
        else:
            raise ValueError(f"snapshot entry {name!r} has unknown type {kind!r}")
    return "\n".join(lines) + "\n"
