"""Exporters for metric snapshots: JSON and Prometheus text exposition.

The snapshot dicts produced by
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` are already plain data;
this module renders them for the two consumers a service actually has:

* :func:`to_json` — machine-readable dump (CI artifacts, dashboards),
* :func:`to_prometheus` — the Prometheus text exposition format (version
  0.0.4): counters as ``_total`` samples, gauges as plain samples,
  histograms as summaries with ``quantile`` labels plus ``_sum``/``_count``.

Metric and label *names* are sanitized to the Prometheus grammar (dots and
dashes become underscores; label names additionally may not contain colons).
Label *values* may contain anything and are escaped per the exposition
format: backslash, double-quote and newline become ``\\\\``, ``\\"`` and
``\\n``.
"""

from __future__ import annotations

import json
import re

__all__ = ["to_json", "to_prometheus"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_label_name(name: str) -> str:
    sanitized = _LABEL_NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label_value(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_suffix(labels: dict | None, extra: dict | None = None) -> str:
    """Render ``{k="v",...}`` with sanitized names and escaped values."""

    merged: dict = {}
    if labels:
        for key, value in labels.items():
            merged[_prom_label_name(key)] = value
    if extra:
        for key, value in extra.items():
            merged[_prom_label_name(key)] = value
    if not merged:
        return ""
    pairs = ",".join(
        f'{key}="{_escape_label_value(merged[key])}"' for key in sorted(merged)
    )
    return "{" + pairs + "}"


def _format_value(value) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def to_json(snapshot: dict, indent: int | None = 2) -> str:
    """Serialize a registry snapshot as JSON."""

    return json.dumps(snapshot, indent=indent, sort_keys=True)


def to_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot in the Prometheus text exposition format."""

    lines: list[str] = []
    typed: set[str] = set()

    def emit_type(prom: str, kind: str) -> None:
        # One TYPE line per metric name, even when several labeled series
        # of the same name appear in the snapshot.
        if prom not in typed:
            typed.add(prom)
            lines.append(f"# TYPE {prom} {kind}")

    for key in sorted(snapshot):
        entry = snapshot[key]
        kind = entry.get("type")
        # Labeled entries carry their base name separately; the snapshot key
        # is the registry's canonical name{labels} index.
        prom = _prom_name(entry.get("name", key))
        labels = entry.get("labels")
        suffix = _label_suffix(labels)
        if kind == "counter":
            emit_type(f"{prom}_total", "counter")
            lines.append(f"{prom}_total{suffix} {_format_value(entry['value'])}")
        elif kind == "gauge":
            emit_type(prom, "gauge")
            lines.append(f"{prom}{suffix} {_format_value(entry['value'])}")
        elif kind == "histogram":
            # Exposed as a summary: exact window quantiles + stream totals.
            emit_type(prom, "summary")
            for q in (50, 90, 99):
                field = f"p{q}"
                if field in entry:
                    quantile = _label_suffix(labels, extra={"quantile": q / 100})
                    lines.append(f"{prom}{quantile} {_format_value(entry[field])}")
            lines.append(f"{prom}_sum{suffix} {_format_value(entry['sum'])}")
            lines.append(f"{prom}_count{suffix} {entry['count']}")
        else:
            raise ValueError(f"snapshot entry {key!r} has unknown type {kind!r}")
    return "\n".join(lines) + "\n"
