"""Tail-sampling flight recorder: keep the full story of the bad requests.

Always-on tracing of every request is too expensive to retain, and uniform
sampling keeps the wrong ones — production debugging needs the *tail*.  The
:class:`FlightRecorder` holds a bounded ring of :class:`FlightRecord`\\ s and
retains a record only when a request is worth a post-mortem:

* **slow** — its latency exceeded the rolling-quantile threshold computed
  over recent request latencies (tail sampling proper),
* **retried** — its solve needed at least one retry,
* **failed** — it resolved with a typed serving error (retry exhaustion,
  assembly faults),
* **deadline** — it expired before dispatch (fail-fast path),
* **straggler** — its solve completed, but past the request deadline.

Each record carries the request's span tree (captured *while the batch span
is still open*, so in-flight spans show where a straggler was stuck — see
:func:`repro.obs.trace.span_events`), metric exemplars snapshotted at
retention time, and the serving attribution the server wires through:
request id, tenant, fusion key, mega-batch occupancy, store-hit provenance.
Retained traces dump on demand as Chrome trace-event JSON.

The recorder is passive until a :class:`~repro.serving.server.Server` is
built with ``flight=FlightRecorder(...)``; a server without one pays only a
``None`` check per request.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from .metrics import Histogram
from .trace import Span, render_spans, span_events

__all__ = ["FlightRecord", "FlightRecorder", "RETENTION_REASONS"]

#: every reason a record can be retained for
RETENTION_REASONS = ("slow", "retried", "failed", "deadline", "straggler", "requeued")


@dataclass
class FlightRecord:
    """One retained request: attribution, exemplars and the span tree."""

    request_id: str
    tenant: str
    reason: str                       # one of RETENTION_REASONS
    latency_seconds: float | None = None
    error: str | None = None          # error type name for failure reasons
    attrs: dict = field(default_factory=dict)
    exemplars: dict = field(default_factory=dict)
    spans: Span | None = None         # root of the captured span tree
    captured_at: float = 0.0          # perf_counter at retention

    def span_tree(self) -> str:
        """Indented text rendering of the captured span tree (may be empty)."""

        if self.spans is None:
            return "(no span tree captured; enable tracing to retain spans)"
        return "\n".join(render_spans([self.spans], now=self.captured_at))

    def as_dict(self) -> dict:
        out = {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "reason": self.reason,
            "latency_seconds": self.latency_seconds,
            "error": self.error,
            "attrs": dict(self.attrs),
            "exemplars": dict(self.exemplars),
        }
        if self.spans is not None:
            out["span_count"] = sum(1 for _ in self.spans.walk())
        return out


class FlightRecorder:
    """Bounded ring of tail-sampled flight records.

    Parameters
    ----------
    capacity:
        Maximum retained records; the oldest is dropped (and counted) when
        the ring is full.
    latency_quantile:
        A successful request is retained as ``slow`` when its latency
        exceeds this rolling percentile of recent latencies.
    min_samples:
        Warm-up: no ``slow`` retention until this many latencies have been
        observed (a threshold over two samples retains noise).
    window:
        Ring window of the rolling latency distribution.

    The retention decision for a new latency uses the threshold over
    *previous* observations only (decide, then observe) — this makes the
    retained set a pure function of the request stream, which the
    determinism tests rely on.
    """

    def __init__(
        self,
        capacity: int = 256,
        latency_quantile: float = 99.0,
        min_samples: int = 64,
        window: int = 4096,
    ):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if not 0.0 < latency_quantile <= 100.0:
            raise ValueError("latency_quantile must be in (0, 100]")
        self.capacity = int(capacity)
        self.latency_quantile = float(latency_quantile)
        self.min_samples = int(min_samples)
        self._lock = threading.Lock()
        self._records: deque[FlightRecord] = deque(maxlen=self.capacity)
        self._latencies = Histogram("flight.latency_seconds", window=window)
        self._dropped = 0
        self._by_reason = {reason: 0 for reason in RETENTION_REASONS}

    # -- tail sampling ------------------------------------------------------------

    def latency_threshold(self) -> float | None:
        """Current ``slow`` threshold, or ``None`` while warming up."""

        if self._latencies.count < self.min_samples:
            return None
        return self._latencies.percentile(self.latency_quantile)

    def is_slow(self, latency_seconds: float) -> bool:
        """Whether a latency clears the rolling-quantile retention bar."""

        threshold = self.latency_threshold()
        return threshold is not None and latency_seconds > threshold

    def observe_latency(self, latency_seconds: float) -> None:
        """Feed one completed-request latency into the rolling distribution."""

        self._latencies.observe(latency_seconds)

    # -- retention ----------------------------------------------------------------

    def retain(self, record: FlightRecord) -> FlightRecord:
        """Keep a record in the ring (oldest drops when full)."""

        if record.reason not in self._by_reason:
            raise ValueError(
                f"unknown retention reason {record.reason!r}; "
                f"expected one of {RETENTION_REASONS}"
            )
        if not record.captured_at:
            record.captured_at = time.perf_counter()
        with self._lock:
            if len(self._records) == self._records.maxlen:
                self._dropped += 1
            self._records.append(record)
            self._by_reason[record.reason] += 1
        return record

    def records(self, reason: str | None = None) -> list[FlightRecord]:
        """Retained records, oldest first (optionally one reason only)."""

        with self._lock:
            records = list(self._records)
        if reason is not None:
            records = [r for r in records if r.reason == reason]
        return records

    def counts(self) -> dict:
        """Retained-record counts per reason (including since-dropped ones)."""

        with self._lock:
            return dict(self._by_reason)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._dropped = 0
            for reason in self._by_reason:
                self._by_reason[reason] = 0

    def summary(self) -> dict:
        with self._lock:
            retained = len(self._records)
            dropped = self._dropped
            by_reason = dict(self._by_reason)
        return {
            "retained": retained,
            "dropped": dropped,
            "by_reason": by_reason,
            "latency_threshold_seconds": self.latency_threshold(),
            "latency_quantile": self.latency_quantile,
        }

    # -- dump-on-demand -----------------------------------------------------------

    def chrome_trace(self) -> list[dict]:
        """Trace events of every retained record, tagged with its attribution.

        Spans that were still open at capture time carry ``in_flight: true``
        with their duration up to the capture instant.
        """

        events = []
        for record in self.records():
            if record.spans is None:
                continue
            for event in span_events(
                record.spans, record.spans.start, now=record.captured_at
            ):
                event["args"].update(
                    {
                        "flight.request_id": record.request_id,
                        "flight.tenant": record.tenant,
                        "flight.reason": record.reason,
                    }
                )
                events.append(event)
        return events

    def write_chrome_trace(self, path) -> None:
        """Dump retained records as one Chrome trace-event file + metadata."""

        payload = {
            "traceEvents": self.chrome_trace(),
            "metadata": {
                "summary": self.summary(),
                "records": [record.as_dict() for record in self.records()],
            },
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
