"""Hierarchical span tracer: where did a request or train step spend its time.

A :class:`Span` is one timed section of work; spans opened while another span
of the same thread is active become its children, so a traced serving request
or training step comes back as a tree (queue wait -> batch assembly -> fused
solve -> per-rank solves -> postprocess).  The tracer is thread-safe: every
thread keeps its own span stack, so the simulated-cluster ranks and the
serving worker pool each contribute their own root spans to one trace.

Instrumented call sites go through the module-level :func:`span` helper::

    from ..obs import trace as obs

    with obs.span("serving.fused_solve", batch=8):
        ...

which is the whole integration contract.  **Tracing is off by default** and
the disabled path is near-free: ``span()`` reads one module global and
returns a shared no-op context manager — no allocation, no clock call, no
locking — so hot paths can stay instrumented permanently (the overhead
benchmark in ``benchmarks/test_obs_overhead.py`` bounds the cost below 2% of
the serving and compiled-training paths).

Completed traces export two ways:

* :meth:`Tracer.chrome_trace` — Chrome trace-event JSON (load in
  ``chrome://tracing`` / Perfetto),
* :meth:`Tracer.span_tree` — an indented text rendering for terminals.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "span",
    "span_events",
    "render_spans",
    "enable_tracing",
    "disable_tracing",
    "get_tracer",
]


@dataclass
class Span:
    """One completed (or active) timed section."""

    name: str
    start: float                    # perf_counter at __enter__
    end: float | None = None        # perf_counter at __exit__
    attrs: dict = field(default_factory=dict)
    children: list = field(default_factory=list)
    thread_id: int = 0

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    def set_attr(self, name: str, value) -> None:
        self.attrs[name] = value

    def walk(self):
        """Yield this span and every descendant, depth-first."""

        yield self
        for child in self.children:
            yield from child.walk()


class _ActiveSpan:
    """Context manager binding a :class:`Span` to its tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span_obj: Span):
        self._tracer = tracer
        self._span = span_obj

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        self._span.start = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        # Exception safety: the span always closes and the stack always pops,
        # so a raising section neither corrupts nesting nor hides the error.
        self._span.end = time.perf_counter()
        if exc_type is not None:
            self._span.attrs["error"] = exc_type.__name__
        self._tracer._pop(self._span)


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def set_attr(self, name: str, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


def span_events(root: Span, epoch: float, now: float | None = None) -> list[dict]:
    """Chrome trace-event JSON objects for one span tree.

    Spans still open (``end is None`` — an in-flight trace snapshot) are
    emitted with their duration-so-far and an ``in_flight: true`` arg, so a
    dump taken while a straggler is stuck shows *where* it is stuck.
    """

    if now is None:
        now = time.perf_counter()
    events = []
    for s in root.walk():
        in_flight = s.end is None
        args = {k: _jsonable(v) for k, v in s.attrs.items()}
        if in_flight:
            args["in_flight"] = True
        events.append(
            {
                "name": s.name,
                "ph": "X",
                "ts": (s.start - epoch) * 1e6,
                "dur": ((s.end if not in_flight else now) - s.start) * 1e6,
                "pid": 0,
                "tid": s.thread_id,
                "args": args,
            }
        )
    return events


def render_spans(roots: list, now: float | None = None) -> list[str]:
    """Indented text lines for span trees (open spans marked ``in flight``)."""

    if now is None:
        now = time.perf_counter()
    lines: list[str] = []

    def render(s: Span, depth: int) -> None:
        attrs = "".join(
            f" {k}={v}" for k, v in s.attrs.items() if not isinstance(v, (dict, list))
        )
        duration = (s.end if s.end is not None else now) - s.start
        marker = "  [in flight]" if s.end is None else ""
        lines.append(
            f"{'  ' * depth}{s.name:<40s} {duration * 1e3:9.3f} ms{attrs}{marker}"
        )
        for child in s.children:
            render(child, depth + 1)

    for root in roots:
        render(root, 0)
    return lines


class Tracer:
    """Thread-safe collector of hierarchical spans.

    Each thread nests spans on its own stack; spans finishing with an empty
    stack are recorded as that thread's root spans.  Roots are kept in a
    bounded ring (``max_roots``) so a long-lived traced server cannot grow
    without limit.
    """

    def __init__(self, max_roots: int = 10_000):
        self.max_roots = int(max_roots)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: list[Span] = []
        self._dropped_roots = 0
        # thread ident -> that thread's live span stack (the same list object
        # as its thread-local), so in-flight spans are visible to exporters
        self._stacks: dict[int, list] = {}
        #: perf_counter origin of the trace (chrome timestamps are relative)
        self.epoch = time.perf_counter()

    # -- span lifecycle (called by _ActiveSpan) ----------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
            with self._lock:
                self._stacks[threading.get_ident()] = stack
        return stack

    def _push(self, span_obj: Span) -> None:
        stack = self._stack()
        span_obj.thread_id = threading.get_ident()
        if stack:
            stack[-1].children.append(span_obj)
        stack.append(span_obj)

    def _pop(self, span_obj: Span) -> None:
        stack = self._stack()
        # The span being closed is on top unless user code exited spans out
        # of order; recover by popping through it.
        while stack:
            top = stack.pop()
            if top is span_obj:
                break
        if not stack:
            with self._lock:
                if len(self._roots) >= self.max_roots:
                    self._roots.pop(0)
                    self._dropped_roots += 1
                self._roots.append(span_obj)

    # -- public API ---------------------------------------------------------------

    def span(self, name: str, **attrs) -> _ActiveSpan:
        """Open a span; use as a context manager."""

        return _ActiveSpan(self, Span(name=name, start=0.0, attrs=attrs))

    @property
    def roots(self) -> list[Span]:
        """Completed root spans (a copy, safe to iterate while tracing)."""

        with self._lock:
            return list(self._roots)

    def active_roots(self) -> list[Span]:
        """Root spans currently open, one per thread with live spans.

        The returned spans are still being mutated by their owning threads;
        treat them as read-only snapshots (exporters mark them in-flight).
        """

        with self._lock:
            return [stack[0] for stack in self._stacks.values() if stack]

    def current_root(self) -> Span | None:
        """The calling thread's open root span, or ``None``."""

        stack = getattr(self._local, "stack", None)
        return stack[0] if stack else None

    def current_span(self) -> Span | None:
        """The calling thread's innermost open span, or ``None``."""

        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()
            self._dropped_roots = 0
        self.epoch = time.perf_counter()

    def span_count(self) -> int:
        """Total spans recorded so far (roots plus descendants)."""

        return sum(1 for root in self.roots for _ in root.walk())

    # -- exporters ----------------------------------------------------------------

    def chrome_trace(self, include_active: bool = True) -> list[dict]:
        """Trace-event JSON objects (``ph: "X"`` complete events, microseconds).

        ``include_active`` also snapshots spans still open on any thread
        (marked with an ``in_flight`` arg and their duration-so-far), so a
        dump taken mid-request shows where a straggler currently is.
        """

        now = time.perf_counter()
        events = []
        for root in self.roots:
            events.extend(span_events(root, self.epoch, now=now))
        if include_active:
            for root in self.active_roots():
                events.extend(span_events(root, self.epoch, now=now))
        return events

    def write_chrome_trace(self, path) -> None:
        """Write the Chrome trace-event file (open with ``chrome://tracing``)."""

        with open(path, "w") as handle:
            json.dump({"traceEvents": self.chrome_trace()}, handle, indent=2)

    def span_tree(
        self, max_roots: int | None = None, include_active: bool = True
    ) -> str:
        """Indented text rendering of the recorded span trees.

        ``include_active`` appends the span trees still open on any thread,
        each open span marked ``[in flight]`` with its duration so far.
        """

        roots = self.roots
        if max_roots is not None:
            roots = roots[-max_roots:]
        lines = render_spans(roots)
        if include_active:
            lines.extend(render_spans(self.active_roots()))
        if self._dropped_roots:
            lines.append(f"... ({self._dropped_roots} earlier roots dropped)")
        return "\n".join(lines)


def _jsonable(value):
    try:
        json.dumps(value)
        return value
    except TypeError:
        return repr(value)


# ---------------------------------------------------------------------------
# Global tracer (what instrumented call sites use)
# ---------------------------------------------------------------------------

#: the active tracer, or ``None`` while tracing is disabled
_ACTIVE: Tracer | None = None


def span(name: str, **attrs):
    """Open a span on the active tracer, or a free no-op when disabled.

    This is the only call instrumented code needs; keyword arguments become
    span attributes.  The disabled path is one global read and a constant
    return, so permanent instrumentation of hot paths is safe.
    """

    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def enable_tracing(tracer: Tracer | None = None) -> Tracer:
    """Install (and return) the active tracer; a fresh one by default."""

    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def disable_tracing() -> None:
    """Disable tracing; instrumented sites return to the no-op path."""

    global _ACTIVE
    _ACTIVE = None


def get_tracer() -> Tracer | None:
    """The active tracer, or ``None`` when tracing is disabled."""

    return _ACTIVE
