"""Rolling-window SLOs with multi-window burn-rate computation.

An SLO turns a metric stream into a contract: "99.9% of requests succeed"
(availability) or "95% of requests finish under 250 ms" (latency-objective
attainment).  The *burn rate* is how fast the error budget is being spent::

    burn = (1 - attainment) / (1 - target)

``burn == 1`` spends the budget exactly at the sustainable rate; ``burn ==
14.4`` on a 99.9% availability SLO exhausts a 30-day budget in ~2 days.
Alerting on the burn rate over a *single* window either pages too late
(long window) or flaps on noise (short window); the standard remedy is
multi-window confirmation — an objective is *burning* only when the burn
rate exceeds the threshold over **every** configured window, i.e. the
problem is both currently happening and sustained.

:class:`SLOTracker` keeps a bounded event deque (timestamp, ok, latency)
under an injectable clock (the serving fake-clock tests drive it
deterministically), computes attainment and burn per objective per window,
and surfaces the whole thing through ``Server.health()`` and — as labeled
gauges — the Prometheus/JSON exporters.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

__all__ = ["SLObjective", "SLOTracker", "DEFAULT_WINDOWS"]

#: default rolling windows, seconds (short / medium / long)
DEFAULT_WINDOWS = (60.0, 600.0, 3600.0)


@dataclass(frozen=True)
class SLObjective:
    """One service-level objective.

    ``latency_threshold`` of ``None`` makes it an availability objective
    (an event is good iff it succeeded); otherwise an event is good iff it
    succeeded *and* finished within the threshold.
    """

    name: str
    target: float                          # fraction of good events, e.g. 0.999
    latency_threshold: float | None = None  # seconds, or None for availability

    def __post_init__(self):
        if not 0.0 < self.target < 1.0:
            raise ValueError("target must be a fraction in (0, 1)")
        if self.latency_threshold is not None and self.latency_threshold <= 0:
            raise ValueError("latency_threshold must be positive")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target

    def is_good(self, ok: bool, latency: float | None) -> bool:
        if not ok:
            return False
        if self.latency_threshold is None:
            return True
        return latency is not None and latency <= self.latency_threshold


def default_objectives(latency_threshold: float = 1.0) -> list[SLObjective]:
    """The serving defaults: three-nines availability, 95% under threshold."""

    return [
        SLObjective(name="availability", target=0.999),
        SLObjective(name="latency", target=0.95, latency_threshold=latency_threshold),
    ]


class SLOTracker:
    """Rolling-window attainment and burn rates over a bounded event stream.

    Parameters
    ----------
    objectives:
        The SLOs to evaluate; :func:`default_objectives` when omitted.
    windows:
        Rolling window lengths in seconds, shortest first.
    clock:
        Monotonic time source (injectable for deterministic tests; the
        server passes its own clock).
    max_events:
        Bound on retained events; the oldest drop first.  Attainment over a
        window longer than the retained history is computed over what is
        retained — fine for burn alerting, which cares about recent events.
    burn_threshold:
        An objective is *burning* when its burn rate exceeds this over
        every window (multi-window confirmation).  ``1.0`` alerts exactly
        when the budget is being spent faster than sustainable.
    """

    def __init__(
        self,
        objectives: list[SLObjective] | None = None,
        windows: tuple = DEFAULT_WINDOWS,
        clock=time.monotonic,
        max_events: int = 65536,
        burn_threshold: float = 1.0,
    ):
        if not windows:
            raise ValueError("at least one window is required")
        self.objectives = (
            list(objectives) if objectives is not None else default_objectives()
        )
        self.windows = tuple(sorted(float(w) for w in windows))
        self.clock = clock
        self.burn_threshold = float(burn_threshold)
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=int(max_events))

    # -- recording ----------------------------------------------------------------

    def record(self, ok: bool, latency: float | None = None) -> None:
        """Record one finished request (success/failure and optional latency)."""

        with self._lock:
            self._events.append((self.clock(), bool(ok), latency))

    @property
    def event_count(self) -> int:
        with self._lock:
            return len(self._events)

    # -- evaluation ---------------------------------------------------------------

    def _window_events(self, window: float, now: float) -> list:
        # Caller holds self._lock.
        cutoff = now - window
        return [e for e in self._events if e[0] >= cutoff]

    def attainment(self, objective: SLObjective, window: float) -> float | None:
        """Fraction of good events in the window, or ``None`` with no events."""

        now = self.clock()
        with self._lock:
            events = self._window_events(window, now)
        if not events:
            return None
        good = sum(1 for _, ok, latency in events if objective.is_good(ok, latency))
        return good / len(events)

    def burn_rate(self, objective: SLObjective, window: float) -> float | None:
        """Error-budget burn rate over the window (``None`` with no events)."""

        attained = self.attainment(objective, window)
        if attained is None:
            return None
        return (1.0 - attained) / objective.error_budget

    def burning(self, objective: SLObjective) -> bool:
        """Multi-window confirmation: burning over *every* window."""

        for window in self.windows:
            burn = self.burn_rate(objective, window)
            if burn is None or burn <= self.burn_threshold:
                return False
        return True

    def alerts(self) -> list[dict]:
        """Objectives currently burning, with their per-window burn rates."""

        out = []
        for objective in self.objectives:
            if self.burning(objective):
                out.append(
                    {
                        "objective": objective.name,
                        "target": objective.target,
                        "burn_rates": {
                            self._window_label(w): self.burn_rate(objective, w)
                            for w in self.windows
                        },
                    }
                )
        return out

    def snapshot(self) -> dict:
        """Attainment + burn per objective per window, plus alert status."""

        now = self.clock()
        with self._lock:
            per_window = {w: self._window_events(w, now) for w in self.windows}
        out = {}
        for objective in self.objectives:
            windows = {}
            for window, events in per_window.items():
                if events:
                    good = sum(
                        1 for _, ok, latency in events
                        if objective.is_good(ok, latency)
                    )
                    attained = good / len(events)
                    burn = (1.0 - attained) / objective.error_budget
                else:
                    attained = burn = None
                windows[self._window_label(window)] = {
                    "events": len(events),
                    "attainment": attained,
                    "burn_rate": burn,
                }
            burning = all(
                w["burn_rate"] is not None and w["burn_rate"] > self.burn_threshold
                for w in windows.values()
            ) and bool(windows)
            out[objective.name] = {
                "target": objective.target,
                "latency_threshold_seconds": objective.latency_threshold,
                "windows": windows,
                "burning": burning,
            }
        return out

    def publish(self, registry) -> None:
        """Mirror burn/attainment into labeled gauges of a metrics registry."""

        snap = self.snapshot()
        for name, data in snap.items():
            for label, window in data["windows"].items():
                labels = {"objective": name, "window": label}
                if window["attainment"] is not None:
                    registry.gauge("slo.attainment", labels=labels).set(
                        window["attainment"]
                    )
                if window["burn_rate"] is not None:
                    registry.gauge("slo.burn_rate", labels=labels).set(
                        window["burn_rate"]
                    )

    @staticmethod
    def _window_label(window: float) -> str:
        return f"{int(window)}s" if window == int(window) else f"{window}s"
