"""Minimal neural-network building blocks on top of :mod:`repro.autodiff`."""

from .activations import GELU, Identity, ReLU, Sine, Tanh, get_activation
from .conv import Conv1d
from .linear import Linear
from .mlp import MLP
from .module import Module, ModuleList, Parameter
from . import init

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "Linear",
    "Conv1d",
    "MLP",
    "GELU",
    "Tanh",
    "Sine",
    "ReLU",
    "Identity",
    "get_activation",
    "init",
]
