"""Weight initialization schemes."""

from __future__ import annotations

import math

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "zeros", "uniform"]


def xavier_uniform(shape: tuple, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""

    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    bound = math.sqrt(3.0 / fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=shape)


def uniform(shape: tuple, bound: float, rng: np.random.Generator) -> np.ndarray:
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple) -> np.ndarray:
    return np.zeros(shape)
