"""Dense (fully connected) layer."""

from __future__ import annotations

import numpy as np

from ..autodiff import ops
from ..autodiff.taylor import TaylorTriple
from ..autodiff.tensor import Tensor
from . import init
from .module import Module, Parameter

__all__ = ["Linear"]


class Linear(Module):
    """Affine map ``y = x @ W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    bias:
        Whether to include the additive bias term.
    rng:
        Numpy random generator used for initialization (keeps runs
        reproducible and lets data-parallel ranks start from identical
        weights when seeded identically).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(
            init.xavier_uniform(
                (out_features, in_features), in_features, out_features, rng
            )
        )
        if bias:
            self.bias = Parameter(np.zeros(out_features))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = ops.matmul(x, ops.transpose(self.weight))
        if self.bias is not None:
            out = out + self.bias
        return out

    def taylor_forward(self, triple: TaylorTriple) -> TaylorTriple:
        """Propagate a Taylor triple through the affine map.

        The map is linear in the input, so the bias only affects the value
        component; the weight multiplies all three components.
        """

        weight_t = ops.transpose(self.weight)
        out = triple.matmul(weight_t)
        if self.bias is not None:
            out = TaylorTriple(out.value + self.bias, out.d1, out.d2)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Linear(in_features={self.in_features}, "
            f"out_features={self.out_features}, bias={self.bias is not None})"
        )
