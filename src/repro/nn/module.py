"""Module and Parameter abstractions (the ``torch.nn.Module`` analogue)."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from ..autodiff.tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(data, requires_grad=requires_grad)


class Module:
    """Base class for neural network components.

    Sub-modules and parameters assigned as attributes are registered
    automatically, mirroring the PyTorch convention.  Provides parameter
    iteration, gradient zeroing and a flat ``state_dict`` for
    checkpointing / broadcasting parameters between data-parallel ranks.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())

    # -- registration ---------------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        # Re-assigning an attribute with a value of a *different* kind must
        # drop the stale registration: leaving it behind would make
        # ``named_parameters`` yield phantom entries (and, for a parameter
        # shadowed by a module, duplicate names), breaking the deterministic
        # iteration order that tracing and checkpointing rely on.
        if isinstance(value, Parameter):
            self._modules.pop(name, None)
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._parameters.pop(name, None)
            self._modules[name] = value
        else:
            # Plain values may be assigned before ``Module.__init__`` ran
            # (the registries do not exist yet) — only clean up when they do.
            parameters = self.__dict__.get("_parameters")
            if parameters is not None:
                parameters.pop(name, None)
                self.__dict__["_modules"].pop(name, None)
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- iteration -------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs in a deterministic order.

        The order is documented and stable across runs: this module's own
        parameters first, in registration order (the order of *first*
        assignment; re-assigning an existing name keeps its position), then
        each sub-module's parameters in sub-module registration order,
        depth-first.  Tracing, ``state_dict`` serialization and data-parallel
        parameter broadcasts all rely on this ordering.
        """

        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""

        return sum(p.size for p in self.parameters())

    # -- gradients / state ------------------------------------------------------

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        return OrderedDict(
            (name, p.data.copy()) for name, p in self.named_parameters()
        )

    def load_state_dict(self, state: dict) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            value = np.asarray(value, dtype=params[name].data.dtype)
            if value.shape != params[name].data.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': "
                    f"{value.shape} vs {params[name].data.shape}"
                )
            params[name].data[...] = value

    # -- forward ----------------------------------------------------------------

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """Container holding an ordered list of sub-modules."""

    def __init__(self, modules=()):
        super().__init__()
        self._list: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._list)
        self._list.append(module)
        self.add_module(str(index), module)
        return self

    def __iter__(self):
        return iter(self._list)

    def __len__(self) -> int:
        return len(self._list)

    def __getitem__(self, index: int) -> Module:
        return self._list[index]


Module.ModuleList = ModuleList
__all__.append("ModuleList")
