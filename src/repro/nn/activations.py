"""Activation functions with first and second derivatives.

Each activation is a :class:`~repro.nn.module.Module` whose ``forward`` uses
autodiff primitives (differentiable to arbitrary order), and additionally
exposes ``derivative`` / ``second_derivative`` helpers so the forward
Taylor-mode Laplacian path (:mod:`repro.autodiff.taylor`) can propagate
second-order information without building the double-backward graph.

The paper uses GELU because physics-informed training favours smooth
activations (Section 3.1); Tanh and Sine are provided for the baseline and
ablation studies, ReLU for completeness.
"""

from __future__ import annotations

import math

from ..autodiff import ops
from ..autodiff.tensor import Tensor
from .module import Module

__all__ = ["GELU", "Tanh", "Sine", "ReLU", "Identity", "get_activation"]

_SQRT_2 = math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)


def _phi(x: Tensor) -> Tensor:
    """Standard normal PDF."""

    return _INV_SQRT_2PI * ops.exp(-0.5 * (x * x))


def _Phi(x: Tensor) -> Tensor:
    """Standard normal CDF."""

    return 0.5 * (1.0 + ops.erf(x / _SQRT_2))


class GELU(Module):
    """Exact (erf-based) Gaussian Error Linear Unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x * _Phi(x)

    def derivative(self, x: Tensor) -> Tensor:
        return _Phi(x) + x * _phi(x)

    def second_derivative(self, x: Tensor) -> Tensor:
        # gelu''(x) = phi(x) * (2 - x^2)
        return _phi(x) * (2.0 - x * x)


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.tanh(x)

    def derivative(self, x: Tensor) -> Tensor:
        t = ops.tanh(x)
        return 1.0 - t * t

    def second_derivative(self, x: Tensor) -> Tensor:
        t = ops.tanh(x)
        return -2.0 * t * (1.0 - t * t)


class Sine(Module):
    """Sinusoidal activation (SIREN-style), useful for wave-like solutions."""

    def __init__(self, omega: float = 1.0):
        super().__init__()
        self.omega = float(omega)

    def forward(self, x: Tensor) -> Tensor:
        return ops.sin(self.omega * x)

    def derivative(self, x: Tensor) -> Tensor:
        return self.omega * ops.cos(self.omega * x)

    def second_derivative(self, x: Tensor) -> Tensor:
        return -(self.omega ** 2) * ops.sin(self.omega * x)


class ReLU(Module):
    """Rectified linear unit.  Not smooth: second derivative is zero a.e."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.maximum_zero(x)

    def derivative(self, x: Tensor) -> Tensor:
        mask = (x.data > 0).astype(x.data.dtype)
        return Tensor(mask)

    def second_derivative(self, x: Tensor) -> Tensor:
        return Tensor(x.data * 0.0)


class Identity(Module):
    """No-op activation (used as the final layer of trunks)."""

    def forward(self, x: Tensor) -> Tensor:
        return x

    def derivative(self, x: Tensor) -> Tensor:
        return Tensor(x.data * 0.0 + 1.0)

    def second_derivative(self, x: Tensor) -> Tensor:
        return Tensor(x.data * 0.0)


_ACTIVATIONS = {
    "gelu": GELU,
    "tanh": Tanh,
    "sine": Sine,
    "relu": ReLU,
    "identity": Identity,
}


def get_activation(name: str) -> Module:
    """Instantiate an activation by name (``gelu``, ``tanh``, ``sine``, ``relu``)."""

    try:
        return _ACTIVATIONS[name.lower()]()
    except KeyError as exc:
        raise ValueError(
            f"unknown activation '{name}'; available: {sorted(_ACTIVATIONS)}"
        ) from exc
