"""1-D convolution used for the boundary-condition embedding.

The SDNet architecture (Section 3.1 of the paper) convolves the discretized
boundary condition — a 1-D curve along the domain boundary — before feeding
it to the split layer.  Convolutions capture local boundary structure at
negligible per-iteration cost.

The implementation lowers the convolution to an ``im2col`` gather followed by
a matrix multiplication, entirely with differentiable primitives, so both
first and higher-order gradients are available without convolution-specific
adjoint code.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import ops
from ..autodiff.tensor import Tensor
from . import init
from .module import Module, Parameter

__all__ = ["Conv1d"]


class Conv1d(Module):
    """1-D convolution over the last axis.

    Input shape ``(batch, in_channels, length)``; output shape
    ``(batch, out_channels, out_length)`` with
    ``out_length = (length + 2*padding - kernel_size) // stride + 1``.

    ``padding_mode`` may be ``"zeros"`` or ``"circular"``.  Circular padding
    is natural for the boundary curve of a closed domain (the four edges of a
    square form a loop), and is the default used by
    :class:`repro.models.embedding.BoundaryEmbedding`.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        padding_mode: str = "zeros",
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if padding_mode not in ("zeros", "circular"):
            raise ValueError("padding_mode must be 'zeros' or 'circular'")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.padding_mode = padding_mode

        fan_in = in_channels * kernel_size
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kernel_size), fan_in, rng)
        )
        if bias:
            self.bias = Parameter(np.zeros(out_channels))
        else:
            self.bias = None

    def output_length(self, length: int) -> int:
        return (length + 2 * self.padding - self.kernel_size) // self.stride + 1

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3:
            raise ValueError(
                f"Conv1d expects (batch, channels, length) input, got shape {x.shape}"
            )
        batch, channels, length = x.shape
        if channels != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {channels}"
            )

        if self.padding > 0:
            if self.padding_mode == "zeros":
                x = ops.pad(x, ((0, 0), (0, 0), (self.padding, self.padding)))
            else:  # circular
                left = x[:, :, length - self.padding:]
                right = x[:, :, : self.padding]
                x = ops.concatenate([left, x, right], axis=2)
        padded_length = length + 2 * self.padding
        out_length = (padded_length - self.kernel_size) // self.stride + 1
        if out_length <= 0:
            raise ValueError("kernel larger than padded input")

        # im2col gather: (batch, in_channels, out_length, kernel)
        offsets = np.arange(out_length) * self.stride
        index = offsets[:, None] + np.arange(self.kernel_size)[None, :]
        cols = x[:, :, index]
        # -> (batch, out_length, in_channels * kernel)
        cols = ops.transpose(cols, (0, 2, 1, 3))
        cols = ops.reshape(cols, (batch, out_length, self.in_channels * self.kernel_size))
        weight = ops.reshape(
            self.weight, (self.out_channels, self.in_channels * self.kernel_size)
        )
        out = ops.matmul(cols, ops.transpose(weight))  # (batch, out_length, out_channels)
        if self.bias is not None:
            out = out + self.bias
        return ops.transpose(out, (0, 2, 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Conv1d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, padding_mode='{self.padding_mode}')"
        )
