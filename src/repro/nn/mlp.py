"""Multi-layer perceptron trunk with Taylor-mode support."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..autodiff.taylor import TaylorTriple
from ..autodiff.tensor import Tensor
from .activations import get_activation
from .linear import Linear
from .module import Module, ModuleList

__all__ = ["MLP"]


class MLP(Module):
    """A stack of :class:`Linear` layers with a shared activation.

    The final layer is linear (no activation), matching the SDNet trunk in
    the paper (a stack of linear layers each followed by GELU, ending in a
    scalar output head).

    Parameters
    ----------
    layer_sizes:
        Sequence ``[in, hidden..., out]`` of layer widths.
    activation:
        Name of the activation placed after every layer except the last.
    rng:
        Random generator for reproducible initialization.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        activation: str = "gelu",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if len(layer_sizes) < 2:
            raise ValueError("MLP needs at least an input and an output size")
        rng = rng if rng is not None else np.random.default_rng()
        self.layer_sizes = tuple(int(s) for s in layer_sizes)
        self.activation = get_activation(activation)
        layers = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            layers.append(Linear(fan_in, fan_out, rng=rng))
        self.layers = ModuleList(layers)

    def forward(self, x: Tensor) -> Tensor:
        n_layers = len(self.layers)
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < n_layers - 1:
                x = self.activation(x)
        return x

    def taylor_forward(self, triple: TaylorTriple) -> TaylorTriple:
        """Propagate second-order Taylor coefficients through the trunk."""

        n_layers = len(self.layers)
        act = self.activation
        for i, layer in enumerate(self.layers):
            triple = layer.taylor_forward(triple)
            if i < n_layers - 1:
                triple = triple.apply_activation(
                    act.forward, act.derivative, act.second_derivative
                )
        return triple
