"""Optimizers and learning-rate schedules."""

from .adam import Adam, AdamW
from .lamb import LAMB
from .lr_scheduler import (
    ConstantLR,
    WarmupPolynomialDecay,
    scale_lr_sqrt,
    scale_warmup_linear,
)
from .optimizer import Optimizer
from .sgd import SGD

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "LAMB",
    "WarmupPolynomialDecay",
    "ConstantLR",
    "scale_lr_sqrt",
    "scale_warmup_linear",
]
