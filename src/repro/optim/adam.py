"""Adam and AdamW optimizers."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam", "AdamW"]


class Adam(Optimizer):
    """Adam with bias-corrected first and second moments.

    ``weight_decay`` is L2-coupled (added to the gradient), matching the
    original Adam formulation; see :class:`AdamW` for decoupled decay.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def _adam_direction(self, index: int, grad: np.ndarray) -> np.ndarray:
        """Bias-corrected Adam update direction for parameter ``index``."""

        m, v = self._m[index], self._v[index]
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad * grad
        m_hat = m / (1.0 - self.beta1 ** self._step_count)
        v_hat = v / (1.0 - self.beta2 ** self._step_count)
        return m_hat / (np.sqrt(v_hat) + self.eps)

    def step(self) -> None:
        self._step_count += 1
        for i, p in enumerate(self.params):
            g = self._grad(p)
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            p.data -= self.lr * self._adam_direction(i, g)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019).

    This is the optimizer the paper uses for single-GPU training before
    switching to LAMB at large batch sizes.
    """

    def step(self) -> None:
        self._step_count += 1
        for i, p in enumerate(self.params):
            g = self._grad(p)
            direction = self._adam_direction(i, g)
            if self.weight_decay:
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= self.lr * direction
