"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """Plain SGD with classical momentum and optional weight decay.

    Update rule (per parameter)::

        v   <- momentum * v + grad + weight_decay * param
        param <- param - lr * v
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        for p, v in zip(self.params, self._velocity):
            g = self._grad(p)
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                update = v
            else:
                update = g
            p.data -= self.lr * update
