"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..nn.module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base class for gradient-based optimizers.

    Sub-classes implement :meth:`step`, which reads ``param.grad`` (set by
    ``backward`` or by the data-parallel trainer after the allreduce) and
    updates ``param.data`` in place.
    """

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: Sequence[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)
        self._step_count = 0

    def zero_grad(self) -> None:
        """Clear gradients on every managed parameter."""

        for p in self.params:
            p.grad = None

    def _grad(self, p: Parameter) -> np.ndarray:
        if p.grad is None:
            return np.zeros_like(p.data)
        return p.grad.data

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def step_count(self) -> int:
        return self._step_count

    def state_dict(self) -> dict:
        return {"lr": self.lr, "step_count": self._step_count}

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])
        self._step_count = int(state["step_count"])
