"""LAMB optimizer (layer-wise adaptive moments for large-batch training).

The paper adopts LAMB (You et al., ICLR 2020) once data-parallel training
pushes the global batch to tens of thousands of points, finding it converges
better than AdamW in that regime (Section 5.2).  This is a pure-Python
re-implementation of the update rule used by NVIDIA Apex ``FusedLAMB``:

1. compute the bias-corrected Adam direction ``r``;
2. add decoupled weight decay: ``u = r + wd * param``;
3. scale by the trust ratio ``phi = ||param|| / ||u||`` (clamped), applied
   per parameter tensor (layer-wise);
4. ``param <- param - lr * phi * u``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .adam import Adam

__all__ = ["LAMB"]


class LAMB(Adam):
    """Layer-wise Adaptive Moments optimizer for Batch training."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-6,
        weight_decay: float = 0.0,
        max_trust_ratio: float = 10.0,
    ):
        super().__init__(params, lr=lr, betas=betas, eps=eps, weight_decay=weight_decay)
        self.max_trust_ratio = float(max_trust_ratio)

    def step(self) -> None:
        self._step_count += 1
        for i, p in enumerate(self.params):
            g = self._grad(p)
            direction = self._adam_direction(i, g)
            if self.weight_decay:
                direction = direction + self.weight_decay * p.data
            weight_norm = float(np.linalg.norm(p.data))
            update_norm = float(np.linalg.norm(direction))
            if weight_norm > 0.0 and update_norm > 0.0:
                trust_ratio = min(weight_norm / update_norm, self.max_trust_ratio)
            else:
                trust_ratio = 1.0
            p.data -= self.lr * trust_ratio * direction
