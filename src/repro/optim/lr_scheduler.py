"""Learning-rate schedules and large-batch scaling rules.

The paper's training recipe (Section 5.2):

* warmup over a fixed fraction of iterations, then polynomial decay with
  exponent 1 (i.e. linear decay) to zero;
* when scaling to ``k`` times the single-GPU batch size, the maximum
  learning rate is multiplied by ``sqrt(k)`` and the warmup fraction is
  scaled linearly with ``k``.
"""

from __future__ import annotations

import math

from .optimizer import Optimizer

__all__ = [
    "WarmupPolynomialDecay",
    "ConstantLR",
    "scale_lr_sqrt",
    "scale_warmup_linear",
]


def scale_lr_sqrt(base_lr: float, batch_scale: float) -> float:
    """Square-root learning-rate scaling rule for large batches."""

    if batch_scale <= 0:
        raise ValueError("batch_scale must be positive")
    return base_lr * math.sqrt(batch_scale)


def scale_warmup_linear(base_fraction: float, batch_scale: float, cap: float = 0.5) -> float:
    """Linear warmup-fraction scaling rule, capped to at most ``cap``."""

    if batch_scale <= 0:
        raise ValueError("batch_scale must be positive")
    return min(base_fraction * batch_scale, cap)


class LRScheduler:
    """Base class: maps an iteration counter to a learning rate."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.iteration = 0

    def get_lr(self, iteration: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        """Advance one iteration and update the optimizer's learning rate."""

        lr = self.get_lr(self.iteration)
        self.optimizer.lr = lr
        self.iteration += 1
        return lr


class ConstantLR(LRScheduler):
    """Keeps the learning rate fixed (useful as a control in ablations)."""

    def __init__(self, optimizer: Optimizer, lr: float | None = None):
        super().__init__(optimizer)
        self.lr = float(lr if lr is not None else optimizer.lr)

    def get_lr(self, iteration: int) -> float:
        return self.lr


class WarmupPolynomialDecay(LRScheduler):
    """Linear warmup followed by polynomial decay to ``end_lr``.

    Parameters
    ----------
    optimizer:
        Optimizer whose ``lr`` attribute is updated in place.
    max_lr:
        Peak learning rate reached at the end of warmup.
    total_iterations:
        Total number of optimizer steps in the run.
    warmup_fraction:
        Fraction of iterations used for linear warmup (paper: 0.1 %).
    power:
        Polynomial decay exponent (paper: 1, i.e. linear decay).
    end_lr:
        Final learning rate.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        max_lr: float,
        total_iterations: int,
        warmup_fraction: float = 0.001,
        power: float = 1.0,
        end_lr: float = 0.0,
    ):
        super().__init__(optimizer)
        if total_iterations <= 0:
            raise ValueError("total_iterations must be positive")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self.max_lr = float(max_lr)
        self.total_iterations = int(total_iterations)
        self.warmup_iterations = max(int(round(warmup_fraction * total_iterations)), 0)
        self.power = float(power)
        self.end_lr = float(end_lr)

    def get_lr(self, iteration: int) -> float:
        if self.warmup_iterations > 0 and iteration < self.warmup_iterations:
            return self.max_lr * (iteration + 1) / self.warmup_iterations
        decay_steps = max(self.total_iterations - self.warmup_iterations, 1)
        progress = min(max(iteration - self.warmup_iterations, 0) / decay_steps, 1.0)
        return (self.max_lr - self.end_lr) * (1.0 - progress) ** self.power + self.end_lr
