"""Boundary-condition embeddings.

The SDNet first lifts the discretized boundary function ``g_hat`` (a vector
of 4N samples along the four edges of the square subdomain, forming a closed
1-D curve) to a high-dimensional embedding.  The paper uses a stack of 1-D
convolutions for this (Section 3.1): the boundary has inherent 1-D spatial
structure, convolutions capture local patterns cheaply, and the treatment
improves convergence without hurting per-iteration cost.

Two embeddings are provided:

* :class:`ConvBoundaryEmbedding` — the paper's design: Conv1d stack with
  circular padding (the boundary is a closed loop) followed by flattening.
* :class:`IdentityBoundaryEmbedding` — passes the raw boundary through, used
  by the input-concat baseline and in ablations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..autodiff import ops
from ..autodiff.tensor import Tensor
from ..nn import Conv1d, Module, ModuleList, get_activation

__all__ = ["ConvBoundaryEmbedding", "IdentityBoundaryEmbedding"]


class IdentityBoundaryEmbedding(Module):
    """No-op embedding: the discretized boundary is used directly."""

    def __init__(self, boundary_size: int):
        super().__init__()
        self.boundary_size = int(boundary_size)
        self.output_size = int(boundary_size)

    def forward(self, g: Tensor) -> Tensor:
        if g.ndim == 1:
            g = ops.reshape(g, (1, -1))
        return g


class ConvBoundaryEmbedding(Module):
    """1-D convolutional embedding of the boundary curve.

    Parameters
    ----------
    boundary_size:
        Number of samples in the discretized boundary function (4N for an
        N-resolution square subdomain).
    channels:
        Output channels of each convolution layer.
    kernel_size:
        Convolution kernel width (odd, so circular padding preserves length).
    activation:
        Activation applied after every convolution.
    """

    def __init__(
        self,
        boundary_size: int,
        channels: Sequence[int] = (4, 4),
        kernel_size: int = 5,
        activation: str = "gelu",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if kernel_size % 2 != 1:
            raise ValueError("kernel_size must be odd to preserve the boundary length")
        rng = rng if rng is not None else np.random.default_rng()
        self.boundary_size = int(boundary_size)
        self.kernel_size = int(kernel_size)
        self.activation = get_activation(activation)

        convs = []
        in_channels = 1
        for out_channels in channels:
            convs.append(
                Conv1d(
                    in_channels,
                    out_channels,
                    kernel_size,
                    padding=kernel_size // 2,
                    padding_mode="circular",
                    rng=rng,
                )
            )
            in_channels = out_channels
        self.convs = ModuleList(convs)
        self.output_size = int(boundary_size * in_channels)

    def forward(self, g: Tensor) -> Tensor:
        """Embed a batch of boundary functions.

        Parameters
        ----------
        g:
            Tensor of shape ``(batch, boundary_size)`` or ``(boundary_size,)``.

        Returns
        -------
        Tensor of shape ``(batch, output_size)``.
        """

        if g.ndim == 1:
            g = ops.reshape(g, (1, -1))
        if g.shape[-1] != self.boundary_size:
            raise ValueError(
                f"expected boundary of size {self.boundary_size}, got {g.shape[-1]}"
            )
        batch = g.shape[0]
        h = ops.reshape(g, (batch, 1, self.boundary_size))
        for conv in self.convs:
            h = conv(h)
            h = self.activation(h)
        return ops.reshape(h, (batch, self.output_size))
