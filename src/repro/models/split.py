"""Split-layer input embedding (the paper's optimized first layer).

The standard ("input-concat") physics-informed neural solver concatenates the
discretized boundary condition with the query coordinates, replicating the
boundary for every point in the batch (eq. 5-6 of the paper).  The split
layer (eq. 7-8) instead splits the first weight matrix into a boundary block
``W1`` and a coordinate block ``W2`` and computes

    U = phi( g_hat @ W1^T  (+)  X @ W2^T )

where ``(+)`` broadcasts the single boundary projection over the point batch.
This removes the replicated boundary from the input tensor, reducing the
first-layer cost from ``O(q N d)`` to ``O(N d + q d)`` and the input memory
from ``q (4N + 2)`` to ``4N + 2q`` words — the key enabler for large batched
inference in the Mosaic Flow predictor.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import ops
from ..autodiff.taylor import TaylorTriple, taylor_constant
from ..autodiff.tensor import Tensor
from ..nn import Linear, Module, get_activation

__all__ = ["SplitLayer"]


class SplitLayer(Module):
    """First layer of SDNet with the input-split optimization.

    Parameters
    ----------
    boundary_features:
        Size of the (embedded) boundary vector, i.e. columns of ``W1``.
    coord_features:
        Spatial dimensionality (2 for the 2-D Laplace problem).
    out_features:
        Width ``d`` of the produced representation.
    activation:
        Nonlinearity ``phi`` applied to the broadcast sum.
    """

    def __init__(
        self,
        boundary_features: int,
        coord_features: int,
        out_features: int,
        activation: str = "gelu",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.boundary_features = int(boundary_features)
        self.coord_features = int(coord_features)
        self.out_features = int(out_features)
        self.activation = get_activation(activation)
        # W1: boundary block (carries the bias), W2: coordinate block.
        self.boundary_proj = Linear(boundary_features, out_features, bias=True, rng=rng)
        self.coord_proj = Linear(coord_features, out_features, bias=False, rng=rng)

    # -- standard forward ------------------------------------------------------

    def forward(self, g_embed: Tensor, x: Tensor) -> Tensor:
        """Compute ``phi(g W1^T (+) X W2^T)``.

        Parameters
        ----------
        g_embed:
            ``(batch, boundary_features)`` embedded boundary conditions.
        x:
            ``(batch, q, coord_features)`` query coordinates.

        Returns
        -------
        ``(batch, q, out_features)`` representation.
        """

        if g_embed.ndim != 2 or x.ndim != 3:
            raise ValueError(
                "SplitLayer expects g_embed of shape (batch, features) and "
                f"x of shape (batch, q, coords); got {g_embed.shape} and {x.shape}"
            )
        g_proj = self.boundary_proj(g_embed)  # (batch, d) — computed once
        g_proj = ops.reshape(g_proj, (g_proj.shape[0], 1, self.out_features))
        x_proj = self.coord_proj(x)  # (batch, q, d)
        return self.activation(g_proj + x_proj)

    # -- Taylor-mode forward -----------------------------------------------------

    def taylor_forward(self, g_embed: Tensor, x_triple: TaylorTriple) -> TaylorTriple:
        """Propagate second-order coordinate derivatives through the layer.

        The boundary projection does not depend on the coordinates, so it
        enters as a constant; the coordinate projection is linear.
        """

        g_proj = self.boundary_proj(g_embed)
        g_proj = ops.reshape(g_proj, (g_proj.shape[0], 1, self.out_features))
        x_proj = x_triple.matmul(ops.transpose(self.coord_proj.weight))
        pre = x_proj + taylor_constant(g_proj)
        act = self.activation
        return pre.apply_activation(act.forward, act.derivative, act.second_derivative)

    # -- equivalence helper --------------------------------------------------------

    def as_concat_weight(self) -> np.ndarray:
        """Return the equivalent full first-layer weight ``[W1 | W2]``.

        Used by tests to verify that the split layer computes exactly the same
        function as the input-concat formulation (eq. 6 vs eq. 8).
        """

        return np.concatenate(
            [self.boundary_proj.weight.data, self.coord_proj.weight.data], axis=1
        )
