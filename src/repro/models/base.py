"""Common interface for neural PDE solvers.

Both the optimized :class:`~repro.models.sdnet.SDNet` and the input-concat
baseline implement this interface, so the training loops, the physics loss and
the Mosaic Flow predictor can use either interchangeably.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import grad, ops
from ..autodiff.tensor import Tensor, astensor
from ..nn import Module

__all__ = ["NeuralSolver", "normalize_inputs"]


def normalize_inputs(g, x) -> tuple[Tensor, Tensor, bool]:
    """Bring (boundary, coordinates) inputs to batched canonical form.

    Returns ``(g, x, was_batched)`` where ``g`` has shape
    ``(batch, boundary_size)`` and ``x`` has shape ``(batch, q, coord_dim)``.
    A single un-batched instance (``g``: 1-D, ``x``: 2-D) is promoted to a
    batch of one and ``was_batched`` is ``False`` so the caller can squeeze
    the result back.
    """

    g = astensor(g)
    x = astensor(x)
    # The boundary batch defines whether the call is batched: a 1-D boundary
    # means "one BVP instance" and the result is squeezed back by the caller.
    batched = g.ndim == 2
    if g.ndim == 1:
        g = ops.reshape(g, (1, -1))
    if x.ndim == 2:
        x = ops.reshape(x, (1,) + x.shape)
    if g.ndim != 2 or x.ndim != 3:
        raise ValueError(
            f"expected g of shape (batch, boundary) and x of shape (batch, q, dim); "
            f"got {g.shape} and {x.shape}"
        )
    if g.shape[0] != x.shape[0]:
        if g.shape[0] == 1:
            g = ops.broadcast_to(g, (x.shape[0], g.shape[1]))
        elif x.shape[0] == 1:
            x = ops.broadcast_to(x, (g.shape[0],) + x.shape[1:])
        else:
            raise ValueError(
                f"batch mismatch between g ({g.shape[0]}) and x ({x.shape[0]})"
            )
    return g, x, batched


class NeuralSolver(Module):
    """Abstract neural PDE solver ``N(x, g_hat; theta) ~ u(x; g)``.

    Sub-classes must implement :meth:`forward`; :meth:`laplacian_autograd`
    works for any of them through nested reverse-mode differentiation, and
    sub-classes may override :meth:`laplacian` with a faster scheme (SDNet
    uses forward Taylor-mode).
    """

    #: number of samples in the discretized boundary function
    boundary_size: int
    #: spatial dimensionality of the query coordinates
    coord_dim: int = 2

    def forward(self, g, x) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def predict(self, g, x) -> np.ndarray:
        """Inference convenience: forward pass without building a graph."""

        from ..autodiff import no_grad

        with no_grad():
            out = self.forward(g, x)
        return out.data

    # -- second derivatives ------------------------------------------------------

    def laplacian_autograd(self, g, x, create_graph: bool = True) -> Tensor:
        """Laplacian of the network output w.r.t. the query coordinates.

        This is the "three backward passes" scheme described in Section 5.2
        of the paper: one reverse sweep per first derivative direction plus
        the parameter sweep taken later by the training loop.

        Parameters
        ----------
        g, x:
            Boundary conditions and coordinates (batched or single instance).
        create_graph:
            Keep the graph so the result can be differentiated with respect
            to the parameters (required during training).
        """

        g, x, batched = normalize_inputs(g, x)
        x_var = Tensor(x.data, requires_grad=True)
        u = self.forward(g, x_var)
        (du,) = grad(ops.sum(u), [x_var], create_graph=True)
        lap_terms = []
        for dim in range(self.coord_dim):
            (d2,) = grad(
                ops.sum(du[..., dim]), [x_var], create_graph=create_graph
            )
            lap_terms.append(d2[..., dim])
        lap = lap_terms[0]
        for term in lap_terms[1:]:
            lap = lap + term
        if not batched:
            lap = ops.reshape(lap, lap.shape[1:])
        return lap

    def laplacian(self, g, x, create_graph: bool = True) -> Tensor:
        """Default Laplacian implementation (nested reverse mode)."""

        return self.laplacian_autograd(g, x, create_graph=create_graph)
