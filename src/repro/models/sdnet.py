"""SDNet — the optimized physics-informed subdomain network.

Architecture (Figure 3 of the paper):

1. 1-D convolutional embedding of the discretized boundary condition
   (:class:`~repro.models.embedding.ConvBoundaryEmbedding`),
2. the split-layer input optimization
   (:class:`~repro.models.split.SplitLayer`, eq. 8),
3. an MLP trunk of linear layers with GELU activations ending in a scalar
   head that approximates ``u(x; g)``.

SDNet also provides two Laplacian implementations for the physics loss:

* ``laplacian(..., method="autograd")`` — nested reverse mode (the paper's
  three-backward-pass scheme),
* ``laplacian(..., method="taylor")`` — forward Taylor-mode propagation of
  second derivatives through the coordinate path (forward-over-reverse),
  which produces a much smaller graph and is the default.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..autodiff import ops
from ..autodiff.taylor import TaylorTriple, sum_direction_blocks, taylor_seed_directions
from ..autodiff.tensor import Tensor
from ..nn import MLP, get_activation
from .base import NeuralSolver, normalize_inputs
from .embedding import ConvBoundaryEmbedding, IdentityBoundaryEmbedding
from .split import SplitLayer

__all__ = ["SDNet"]


class SDNet(NeuralSolver):
    """Physics-informed subdomain solver with the split-layer optimization.

    Parameters
    ----------
    boundary_size:
        Length of the discretized boundary vector (``4*N`` for an ``N``-point
        per-edge square subdomain).
    coord_dim:
        Spatial dimensionality of query points (2 for the 2-D Laplace BVP).
    hidden_size:
        Width ``d`` of the split layer output and of the trunk hidden layers.
    trunk_layers:
        Number of hidden linear layers in the trunk.
    embedding_channels:
        Channels of the convolutional boundary embedding; pass an empty
        sequence to disable the convolutional embedding (ablation).
    conv_kernel_size:
        Kernel width of the boundary convolutions.
    activation:
        Smooth activation used throughout (paper: GELU).
    rng:
        Random generator (or integer seed) for reproducible initialization.
    """

    def __init__(
        self,
        boundary_size: int,
        coord_dim: int = 2,
        hidden_size: int = 64,
        trunk_layers: int = 4,
        embedding_channels: Sequence[int] = (4,),
        conv_kernel_size: int = 5,
        activation: str = "gelu",
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        if isinstance(rng, (int, np.integer)) or rng is None:
            rng = np.random.default_rng(rng)
        self.boundary_size = int(boundary_size)
        self.coord_dim = int(coord_dim)
        self.hidden_size = int(hidden_size)
        self.activation_name = activation

        if embedding_channels:
            self.embedding = ConvBoundaryEmbedding(
                boundary_size,
                channels=embedding_channels,
                kernel_size=conv_kernel_size,
                activation=activation,
                rng=rng,
            )
        else:
            self.embedding = IdentityBoundaryEmbedding(boundary_size)

        self.split = SplitLayer(
            self.embedding.output_size,
            coord_dim,
            hidden_size,
            activation=activation,
            rng=rng,
        )
        trunk_sizes = [hidden_size] * (trunk_layers + 1) + [1]
        self.trunk = MLP(trunk_sizes, activation=activation, rng=rng)

    # -- forward -----------------------------------------------------------------

    def embed_boundary(self, g: Tensor) -> Tensor:
        """Embed boundary conditions once; reusable across many point batches."""

        return self.embedding(g)

    def forward_from_embedding(self, g_embed: Tensor, x: Tensor) -> Tensor:
        """Evaluate the solution given an already-embedded boundary."""

        h = self.split(g_embed, x)
        out = self.trunk(h)  # (batch, q, 1)
        return ops.reshape(out, out.shape[:-1])

    def forward(self, g, x) -> Tensor:
        """Approximate ``u(x; g)``.

        Parameters
        ----------
        g:
            ``(batch, boundary_size)`` or ``(boundary_size,)`` boundary values.
        x:
            ``(batch, q, coord_dim)`` or ``(q, coord_dim)`` query coordinates.

        Returns
        -------
        ``(batch, q)`` (or ``(q,)`` for a single instance) solution values.
        """

        g, x, batched = normalize_inputs(g, x)
        out = self.forward_from_embedding(self.embed_boundary(g), x)
        if not batched:
            out = ops.reshape(out, out.shape[1:])
        return out

    # -- Laplacian ----------------------------------------------------------------

    def laplacian_taylor(self, g, x, create_graph: bool = True, stacked: bool = True) -> Tensor:
        """Laplacian via forward Taylor-mode through the coordinate path.

        A second-order Taylor triple is propagated through the split layer
        and the trunk for every coordinate direction; the boundary embedding
        enters as a direction-constant.  The result is the sum of the
        per-direction second derivatives and remains differentiable with
        respect to the parameters.  ``create_graph`` is accepted for API
        symmetry; the Taylor path always keeps the parameter graph.

        With ``stacked=True`` (the default) all coordinate directions are
        seeded at once along the points axis
        (:func:`~repro.autodiff.taylor.taylor_seed_directions`), so each
        trunk layer performs one batched matmul over ``coord_dim * q`` point
        rows instead of ``coord_dim`` sweeps of ``q`` rows.  Every point row
        is computed by the same floating-point operations either way, so the
        Laplacian *values* are bitwise identical between the two layouts
        (parameter gradients agree to accumulation-order rounding).  The
        stacked layout is what :mod:`repro.engine` traces into its compiled
        physics-loss programs; ``stacked=False`` keeps the per-direction
        loop for reference and ablations.
        """

        g, x, batched = normalize_inputs(g, x)
        g_embed = self.embed_boundary(g)
        batch, q, dim = x.shape
        if stacked:
            triple = taylor_seed_directions(x, self.coord_dim)
            h = self.split.taylor_forward(g_embed, triple)
            out = self.trunk.taylor_forward(h)
            d2 = ops.reshape(out.d2, (self.coord_dim, batch, q))
            lap = sum_direction_blocks(d2, self.coord_dim)
        else:
            lap = None
            for direction in range(self.coord_dim):
                seed = np.zeros((1, 1, dim))
                seed[..., direction] = 1.0
                triple = TaylorTriple(
                    x,
                    Tensor(np.broadcast_to(seed, x.shape).copy()),
                    Tensor(np.zeros(x.shape)),
                )
                h = self.split.taylor_forward(g_embed, triple)
                out = self.trunk.taylor_forward(h)
                d2 = ops.reshape(out.d2, (batch, q))
                lap = d2 if lap is None else lap + d2
        if not batched:
            lap = ops.reshape(lap, lap.shape[1:])
        return lap

    def laplacian(self, g, x, create_graph: bool = True, method: str = "taylor") -> Tensor:
        """Laplacian of the network output with respect to the coordinates.

        ``method`` is ``"taylor"`` (default, forward-over-reverse) or
        ``"autograd"`` (nested reverse mode, as in the paper).
        """

        if method == "taylor":
            return self.laplacian_taylor(g, x, create_graph=create_graph)
        if method == "autograd":
            return self.laplacian_autograd(g, x, create_graph=create_graph)
        raise ValueError("method must be 'taylor' or 'autograd'")

    # -- introspection ---------------------------------------------------------------

    def config(self) -> dict:
        """Return the constructor configuration (for checkpoint metadata)."""

        return {
            "boundary_size": self.boundary_size,
            "coord_dim": self.coord_dim,
            "hidden_size": self.hidden_size,
            "activation": self.activation_name,
        }
