"""Neural PDE solver models: SDNet and its input-concat baseline."""

from .base import NeuralSolver, normalize_inputs
from .baseline import ConcatSolver
from .embedding import ConvBoundaryEmbedding, IdentityBoundaryEmbedding
from .sdnet import SDNet
from .split import SplitLayer

__all__ = [
    "NeuralSolver",
    "normalize_inputs",
    "SDNet",
    "ConcatSolver",
    "SplitLayer",
    "ConvBoundaryEmbedding",
    "IdentityBoundaryEmbedding",
]
