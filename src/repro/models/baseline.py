"""Input-concat baseline neural PDE solver.

This is the "standard" physics-informed neural solver the paper compares the
split-layer optimization against (eq. 5-6): the discretized boundary function
is replicated for every query point and concatenated with the coordinates,
producing a ``q x (4N + 2)`` input matrix.  It computes exactly the same
function family as :class:`~repro.models.sdnet.SDNet` without the embedding,
but pays ``O(q N d)`` compute and ``q (4N + 2)`` words of input memory per
batch — the source of the out-of-memory behaviour at large batch sizes in
Figure 5 and Table 3.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import ops
from ..autodiff.tensor import Tensor
from ..nn import MLP
from .base import NeuralSolver, normalize_inputs

__all__ = ["ConcatSolver"]


class ConcatSolver(NeuralSolver):
    """Baseline neural solver using the input-concat embedding.

    Parameters mirror :class:`~repro.models.sdnet.SDNet` where applicable.
    """

    def __init__(
        self,
        boundary_size: int,
        coord_dim: int = 2,
        hidden_size: int = 64,
        trunk_layers: int = 4,
        activation: str = "gelu",
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        if isinstance(rng, (int, np.integer)) or rng is None:
            rng = np.random.default_rng(rng)
        self.boundary_size = int(boundary_size)
        self.coord_dim = int(coord_dim)
        self.hidden_size = int(hidden_size)
        sizes = [boundary_size + coord_dim] + [hidden_size] * (trunk_layers + 1) + [1]
        self.net = MLP(sizes, activation=activation, rng=rng)

    def forward(self, g, x) -> Tensor:
        g, x, batched = normalize_inputs(g, x)
        batch, q, dim = x.shape
        # Replicate the boundary for every query point (the inefficiency the
        # split layer removes) and concatenate along the feature axis.
        g_expanded = ops.reshape(g, (batch, 1, self.boundary_size))
        g_expanded = ops.broadcast_to(g_expanded, (batch, q, self.boundary_size))
        inputs = ops.concatenate([g_expanded, x], axis=2)
        out = self.net(inputs)
        out = ops.reshape(out, (batch, q))
        if not batched:
            out = ops.reshape(out, (q,))
        return out

    def input_words(self, q: int) -> int:
        """Words of input memory for a batch of ``q`` points (eq. 5 analysis)."""

        return q * (self.boundary_size + self.coord_dim)
