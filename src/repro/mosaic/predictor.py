"""Sequential and batched Mosaic Flow predictor (single process).

The predictor iteratively refines the solution on the interface lattice by
feeding every atomic subdomain's boundary to the subdomain solver and writing
the predicted centre lines back (Section 2.4 / Figure 2 of the paper).  The
two device-level execution modes of Section 4.1 are both implemented:

* ``batched=False`` — the baseline: one solver call per subdomain,
* ``batched=True``  — all (non-overlapping) subdomains of the current
  iteration are stacked into a single solver call, which raises device
  utilisation by orders of magnitude without changing the results, because a
  phase's subdomains neither overlap nor read what the phase writes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..utils.timer import Timings
from .assembly import assemble_solution
from .geometry import PHASE_OFFSETS, MosaicGeometry
from .solvers import SubdomainSolver

__all__ = ["MFPResult", "MosaicFlowPredictor", "initialize_lattice_field"]


def initialize_lattice_field(
    geometry: MosaicGeometry,
    boundary_loop: np.ndarray,
    mode: str = "mean",
) -> np.ndarray:
    """Initial global field: exact Dirichlet data, interior filled by ``mode``.

    ``mode`` is ``"mean"`` (interior set to the boundary mean, the default),
    ``"zero"``, or ``"linear"`` (bilinear blend of the four edges — a cheap
    but effective warm start, rectangular domains only).

    ``geometry`` may be a rectangular :class:`MosaicGeometry` or a
    :class:`~repro.domains.geometry.CompositeMosaicGeometry`; for composite
    domains the Dirichlet data follows the re-entrant boundary loop and only
    grid points inside the domain are filled (the rest stay zero).
    """

    boundary_loop = np.asarray(boundary_loop, dtype=float)
    field_array = geometry.insert_global_boundary(boundary_loop)
    if mode == "zero":
        pass  # insert_global_boundary starts from zeros
    elif mode == "mean":
        field_array[geometry.interior_mask()] = float(boundary_loop.mean())
    elif mode == "linear":
        if not geometry.is_rectangular:
            raise ValueError(
                "init mode 'linear' (Coons patch of the four edges) is only "
                "defined on rectangular domains; use 'mean' or 'zero' for "
                "composite domains"
            )
        # Transfinite (Coons) interpolation of the four edges.
        bottom = field_array[0, :]
        top = field_array[-1, :]
        left = field_array[:, 0]
        right = field_array[:, -1]
        ny, nx = geometry.global_ny, geometry.global_nx
        s = np.linspace(0.0, 1.0, nx)[None, :]
        t = np.linspace(0.0, 1.0, ny)[:, None]
        blend = (
            (1 - t) * bottom[None, :]
            + t * top[None, :]
            + (1 - s) * left[:, None]
            + s * right[:, None]
            - (1 - s) * (1 - t) * field_array[0, 0]
            - s * (1 - t) * field_array[0, -1]
            - (1 - s) * t * field_array[-1, 0]
            - s * t * field_array[-1, -1]
        )
        field_array[1:-1, 1:-1] = blend[1:-1, 1:-1]
    else:
        raise ValueError("mode must be 'mean', 'zero' or 'linear'")
    return field_array


@dataclass
class MFPResult:
    """Result of a Mosaic Flow predictor run."""

    solution: np.ndarray
    lattice_field: np.ndarray
    iterations: int
    converged: bool
    deltas: list = field(default_factory=list)
    mae_history: list = field(default_factory=list)
    timings: dict = field(default_factory=dict)

    @property
    def time_per_iteration(self) -> float:
        iteration_time = self.timings.get("inference", 0.0) + self.timings.get(
            "boundaries_io", 0.0
        )
        return iteration_time / max(self.iterations, 1)


class MosaicFlowPredictor:
    """Single-process Mosaic Flow predictor.

    Parameters
    ----------
    geometry:
        Interface-lattice geometry of the target domain — rectangular
        (:class:`MosaicGeometry`) or composite
        (:class:`~repro.domains.geometry.CompositeMosaicGeometry`); the
        iteration only ever touches the geometry's enumerated anchors and
        masks, so non-rectangular domains need no special casing here.
    solver:
        Subdomain solver (neural or finite-difference).
    batched:
        Batch the non-overlapping subdomains of each iteration into a single
        solver call (Section 4.1).  Results are identical either way.
    init_mode:
        Lattice initialization passed to :func:`initialize_lattice_field`.
    engine:
        Run neural subdomain solves through the :mod:`repro.engine`
        inference compiler: the solver is replaced with an engine-backed
        clone via :func:`repro.engine.compile_solver` (a no-op for solvers
        with nothing to compile, e.g. :class:`FDSubdomainSolver`).  Results
        are bitwise identical to the eager path.
    """

    def __init__(
        self,
        geometry: MosaicGeometry,
        solver: SubdomainSolver,
        batched: bool = True,
        init_mode: str = "mean",
        engine: bool = False,
    ):
        expected = geometry.subdomain_grid().boundary_size
        if solver.boundary_size != expected:
            raise ValueError(
                f"solver boundary size {solver.boundary_size} does not match the "
                f"geometry's subdomain boundary size {expected}"
            )
        if engine:
            from ..engine import compile_solver

            solver = compile_solver(solver)
        self.geometry = geometry
        self.solver = solver
        self.batched = bool(batched)
        self.init_mode = init_mode
        # Pre-computed local index sets shared by every anchor.
        self._brow, self._bcol = geometry.boundary_loop_local_indices()
        self._crow, self._ccol = geometry.center_line_local_indices()
        self._center_coords = geometry.center_line_local_coordinates()
        # Phases that process no anchors (possible on composite domains and
        # thin lattices) leave the field unchanged; their zero delta must not
        # count as convergence.
        self._phase_has_anchors = [
            bool(geometry.anchors_for_phase(phase)) for phase in range(len(PHASE_OFFSETS))
        ]

    # -- one iteration -----------------------------------------------------------

    def _phase_anchor_windows(self, phase: int) -> tuple[np.ndarray, np.ndarray]:
        anchors = self.geometry.anchors_for_phase(phase)
        if not anchors:
            return np.empty(0, dtype=int), np.empty(0, dtype=int)
        anchor_array = np.asarray(anchors, dtype=int)
        return anchor_array[:, 0] * self.geometry.half, anchor_array[:, 1] * self.geometry.half

    def step(self, field_array: np.ndarray, phase: int, timings) -> np.ndarray:
        """Run one iteration (one phase) in place and return the field.

        ``timings`` is a mutable mapping of section name to accumulated
        seconds — a plain dict or a thread-safe
        :class:`~repro.utils.timer.Timings` (what :meth:`run` passes).
        """

        r0, c0 = self._phase_anchor_windows(phase)
        if r0.size == 0:
            return field_array
        tic = time.perf_counter()
        loops = field_array[
            r0[:, None] + self._brow[None, :], c0[:, None] + self._bcol[None, :]
        ]
        timings["boundaries_io"] = timings.get("boundaries_io", 0.0) + time.perf_counter() - tic

        tic = time.perf_counter()
        if self.batched:
            predictions = self.solver.predict(loops, self._center_coords)
        else:
            predictions = np.empty((loops.shape[0], self._center_coords.shape[0]))
            for i in range(loops.shape[0]):
                predictions[i] = self.solver.predict(loops[i: i + 1], self._center_coords)[0]
        timings["inference"] = timings.get("inference", 0.0) + time.perf_counter() - tic

        tic = time.perf_counter()
        field_array[
            r0[:, None] + self._crow[None, :], c0[:, None] + self._ccol[None, :]
        ] = predictions
        timings["boundaries_io"] = timings.get("boundaries_io", 0.0) + time.perf_counter() - tic
        return field_array

    # -- full run -----------------------------------------------------------------

    def run(
        self,
        boundary_loop: np.ndarray,
        max_iterations: int = 200,
        tol: float = 1e-4,
        reference: np.ndarray | None = None,
        target_mae: float | None = None,
        check_interval: int = 1,
        assemble: bool = True,
    ) -> MFPResult:
        """Solve the BVP defined by ``boundary_loop`` on the global domain.

        Parameters
        ----------
        boundary_loop:
            Dirichlet data along the global boundary loop
            (length ``geometry.global_boundary_size``; for composite domains
            this is the re-entrant boundary loop of the domain polygon).
        max_iterations:
            Iteration budget (each iteration processes one placement phase).
        tol:
            Relative-change convergence threshold on the lattice values
            (Algorithm 2, line 5-8).
        reference:
            Optional reference solution on the global grid; enables the
            MAE-based stopping criterion used in the paper's scaling studies.
        target_mae:
            Stop once the assembled-lattice MAE against ``reference`` drops
            below this value.
        check_interval:
            How often (in iterations) convergence checks are evaluated.
        assemble:
            Skip the final dense assembly when only lattice values are needed.
        """

        geometry = self.geometry
        boundary_loop = np.asarray(boundary_loop, dtype=float)
        if boundary_loop.shape != (geometry.global_boundary_size,):
            raise ValueError(
                f"boundary loop must have length {geometry.global_boundary_size}, "
                f"got {boundary_loop.shape}"
            )
        field_array = initialize_lattice_field(geometry, boundary_loop, self.init_mode)
        lattice_mask = geometry.lattice_mask()
        previous = field_array[lattice_mask].copy()

        timings = Timings()
        deltas: list[float] = []
        mae_history: list[tuple[int, float]] = []
        converged = False
        iterations = 0

        for iteration in range(1, max_iterations + 1):
            phase = (iteration - 1) % len(PHASE_OFFSETS)
            self.step(field_array, phase, timings)
            iterations = iteration

            if iteration % check_interval == 0:
                tic = time.perf_counter()
                current = field_array[lattice_mask]
                denom = np.linalg.norm(previous)
                delta = float(
                    np.linalg.norm(current - previous) / (denom if denom > 0 else 1.0)
                )
                deltas.append(delta)
                previous = current.copy()
                if reference is not None:
                    mae = float(np.mean(np.abs(field_array[lattice_mask] - reference[lattice_mask])))
                    mae_history.append((iteration, mae))
                    if target_mae is not None and mae < target_mae:
                        converged = True
                timings["convergence_check"] = (
                    timings.get("convergence_check", 0.0) + time.perf_counter() - tic
                )
                # A tolerance stop requires that some phase since the last
                # check actually processed anchors — an all-empty window has
                # delta exactly 0 without any progress being made.
                window_active = any(
                    self._phase_has_anchors[(it - 1) % len(PHASE_OFFSETS)]
                    for it in range(iteration - check_interval + 1, iteration + 1)
                )
                if delta < tol and iteration >= len(PHASE_OFFSETS) and window_active:
                    converged = True
                if converged:
                    break

        with timings.measure("assembly"):
            if assemble:
                solution = assemble_solution(
                    field_array, geometry, self.solver, boundary_loop=boundary_loop
                )
            else:
                solution = field_array.copy()

        return MFPResult(
            solution=solution,
            lattice_field=field_array,
            iterations=iterations,
            converged=converged,
            deltas=deltas,
            mae_history=mae_history,
            timings=timings.as_dict(),
        )
