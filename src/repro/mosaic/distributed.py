"""Distributed Mosaic Flow predictor (Algorithm 2 of the paper).

The global domain is partitioned over a 2-D processor grid: each rank owns a
contiguous block of atomic-subdomain anchors and stores the part of the
interface lattice its subdomains touch (its *processor subdomain*, which
overlaps its neighbours' by half a subdomain).  Every iteration a rank

1. updates the centre lines of its own anchors for the current phase,
   applying updates immediately within the rank (as in the baseline), then
2. exchanges with its (up to eight) neighbours the lattice values the
   neighbours need but do not compute themselves — the *relaxed
   synchronization* of Section 4.2: cross-rank information only propagates
   once per iteration, so some halo values are one iteration stale, and
3. checks the relative-change (and optionally MAE) stopping criteria with an
   allreduce.

After the iteration loop every rank densely predicts its own subdomains,
the per-rank accumulators are allgathered and overlapping predictions are
averaged (Algorithm 2 lines 10-12).

The communication plan (which points go to which neighbour) is derived
programmatically from anchor ownership, so the same code handles interior
ranks, edge ranks and corner ranks, arbitrary processor-grid shapes and the
row-scan or Morton rank orderings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..distributed.cartesian import BlockPartition, ProcessGrid
from ..distributed.comm import Communicator, ReduceOp
from ..distributed.simulated import run_spmd
from ..obs.trace import span
from ..utils.timer import Timings
from .assembly import accumulate_dense_predictions, overlap_average
from .geometry import PHASE_OFFSETS, MosaicGeometry
from .predictor import initialize_lattice_field
from .solvers import SubdomainSolver

__all__ = [
    "RankLayout",
    "HaloExchangePlan",
    "DistributedMFPResult",
    "DistributedMosaicFlowPredictor",
]


# ---------------------------------------------------------------------------
# Per-rank layout
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RankLayout:
    """Index bookkeeping for one rank's processor subdomain."""

    rank: int
    part: BlockPartition            # anchor-block partition [ar0, ar1) x [ac0, ac1)
    row_offset: int                 # global grid row of local row 0
    col_offset: int                 # global grid col of local col 0
    local_shape: tuple[int, int]    # (rows, cols) of the local field

    @classmethod
    def build(cls, geometry: MosaicGeometry, grid: ProcessGrid, rank: int) -> "RankLayout":
        part = grid.partition(geometry.anchor_rows, geometry.anchor_cols, rank)
        if part.rows == 0 or part.cols == 0:
            raise ValueError(
                f"rank {rank} received an empty anchor block; use fewer processors "
                f"({grid.size}) for a {geometry.anchor_rows}x{geometry.anchor_cols} anchor grid"
            )
        half = geometry.half
        row_offset = part.row_start * half
        col_offset = part.col_start * half
        rows = (part.row_stop - part.row_start + 1) * half + 1
        cols = (part.col_stop - part.col_start + 1) * half + 1
        return cls(rank, part, row_offset, col_offset, (rows, cols))

    def to_local(self, rows: np.ndarray, cols: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return rows - self.row_offset, cols - self.col_offset

    def local_anchors(self) -> list[tuple[int, int]]:
        """Anchors owned by the rank, expressed relative to the local field."""

        return [
            (r - self.part.row_start, c - self.part.col_start)
            for r in range(self.part.row_start, self.part.row_stop)
            for c in range(self.part.col_start, self.part.col_stop)
        ]

    def owned_row_range(self, geometry: MosaicGeometry) -> tuple[int, int]:
        """Global grid rows owned exclusively by this rank (for reductions)."""

        half = geometry.half
        start = self.part.row_start * half
        if self.part.row_stop == geometry.anchor_rows:
            stop = geometry.global_ny
        else:
            stop = self.part.row_stop * half
        return start, stop

    def owned_col_range(self, geometry: MosaicGeometry) -> tuple[int, int]:
        half = geometry.half
        start = self.part.col_start * half
        if self.part.col_stop == geometry.anchor_cols:
            stop = geometry.global_nx
        else:
            stop = self.part.col_stop * half
        return start, stop


# ---------------------------------------------------------------------------
# Halo exchange plan
# ---------------------------------------------------------------------------


def _owner_anchor(geometry: MosaicGeometry, row: int, col: int) -> tuple[int, int] | None:
    """Anchor whose centre lines produce the lattice value at global (row, col).

    Returns ``None`` for points on the global domain boundary (fixed Dirichlet
    data nobody computes).  For points produced by two overlapping anchors a
    canonical owner is chosen so sender and receiver agree.
    """

    half = geometry.half
    ny, nx = geometry.global_ny, geometry.global_nx
    if row == 0 or col == 0 or row == ny - 1 or col == nx - 1:
        return None
    on_lattice_row = row % half == 0
    on_lattice_col = col % half == 0
    if on_lattice_row and on_lattice_col:
        return row // half - 1, col // half - 1
    if on_lattice_row:
        anchor_row = row // half - 1
        anchor_col = min(col // half, geometry.anchor_cols - 1)
        return anchor_row, anchor_col
    if on_lattice_col:
        anchor_col = col // half - 1
        anchor_row = min(row // half, geometry.anchor_rows - 1)
        return anchor_row, anchor_col
    # Not on a lattice line: never part of the iterated state.
    return None


def _frame_points(geometry: MosaicGeometry, layout: RankLayout) -> np.ndarray:
    """Global (row, col) points on the outer frame of a rank's extent."""

    half = geometry.half
    r0 = layout.row_offset
    r1 = layout.row_offset + layout.local_shape[0] - 1
    c0 = layout.col_offset
    c1 = layout.col_offset + layout.local_shape[1] - 1
    points = []
    for col in range(c0, c1 + 1):
        points.append((r0, col))
        points.append((r1, col))
    for row in range(r0 + 1, r1):
        points.append((row, c0))
        points.append((row, c1))
    return np.asarray(points, dtype=int)


@dataclass
class HaloExchangePlan:
    """Per-rank halo exchange plan.

    ``sends[peer]`` / ``recvs[peer]`` hold local ``(rows, cols)`` index arrays
    of the values exchanged with ``peer`` every iteration.
    """

    sends: dict[int, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    recvs: dict[int, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)

    @property
    def num_neighbors(self) -> int:
        return len(set(self.sends) | set(self.recvs))

    def bytes_per_iteration(self) -> int:
        sent = sum(rows.size for rows, _ in self.sends.values())
        received = sum(rows.size for rows, _ in self.recvs.values())
        return 8 * (sent + received)

    @classmethod
    def build(
        cls,
        geometry: MosaicGeometry,
        grid: ProcessGrid,
        layouts: list[RankLayout],
        rank: int,
    ) -> "HaloExchangePlan":
        """Derive the exchange plan for ``rank`` from anchor ownership."""

        plan = cls()
        my_layout = layouts[rank]
        anchor_rank = _anchor_rank_lookup(geometry, grid)

        # Receives: frame points of my extent owned by another rank.
        recv_by_peer: dict[int, list[tuple[int, int]]] = {}
        for row, col in _frame_points(geometry, my_layout):
            owner = _owner_anchor(geometry, int(row), int(col))
            if owner is None:
                continue
            peer = anchor_rank(owner)
            if peer != rank:
                recv_by_peer.setdefault(peer, []).append((int(row), int(col)))

        # Sends: frame points of each neighbour's extent owned by me.
        neighbor_ranks = set(grid.neighbors(rank).values())
        send_by_peer: dict[int, list[tuple[int, int]]] = {}
        for peer in neighbor_ranks:
            for row, col in _frame_points(geometry, layouts[peer]):
                owner = _owner_anchor(geometry, int(row), int(col))
                if owner is None:
                    continue
                if anchor_rank(owner) == rank:
                    send_by_peer.setdefault(peer, []).append((int(row), int(col)))

        for peer, points in recv_by_peer.items():
            arr = np.asarray(points, dtype=int)
            plan.recvs[peer] = my_layout.to_local(arr[:, 0], arr[:, 1])
        for peer, points in send_by_peer.items():
            arr = np.asarray(points, dtype=int)
            plan.sends[peer] = my_layout.to_local(arr[:, 0], arr[:, 1])
        return plan


def _anchor_rank_lookup(geometry: MosaicGeometry, grid: ProcessGrid):
    """Return a function mapping an anchor (row, col) to its owning rank."""

    row_bounds = [grid.partition(geometry.anchor_rows, geometry.anchor_cols, grid.rank_at(r, 0)).row_stop
                  for r in range(grid.rows)]
    col_bounds = [grid.partition(geometry.anchor_rows, geometry.anchor_cols, grid.rank_at(0, c)).col_stop
                  for c in range(grid.cols)]

    def lookup(anchor: tuple[int, int]) -> int:
        a_row, a_col = anchor
        p_row = int(np.searchsorted(row_bounds, a_row, side="right"))
        p_col = int(np.searchsorted(col_bounds, a_col, side="right"))
        return grid.rank_at(p_row, p_col)

    return lookup


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass
class DistributedMFPResult:
    """Per-rank result of a distributed MFP run (rank 0 carries the solution)."""

    rank: int
    world_size: int
    solution: np.ndarray | None
    iterations: int
    converged: bool
    deltas: list = field(default_factory=list)
    mae_history: list = field(default_factory=list)
    timings: dict = field(default_factory=dict)
    comm_stats: dict = field(default_factory=dict)
    halo_bytes_per_iteration: int = 0


# ---------------------------------------------------------------------------
# The distributed predictor
# ---------------------------------------------------------------------------


class DistributedMosaicFlowPredictor:
    """Domain-parallel Mosaic Flow predictor (Algorithm 2).

    Parameters
    ----------
    geometry:
        Interface-lattice geometry of the global domain.
    solver_factory:
        Zero-argument callable producing a fresh :class:`SubdomainSolver` for
        each rank (keeps per-rank counters independent).
    ordering:
        Processor-to-grid mapping: ``"row"`` (paper) or ``"morton"``.
    batched:
        Batch each phase's subdomains into one solver call per rank.
    init_mode:
        Lattice initialization mode.
    engine:
        Run each rank's neural subdomain solves through the
        :mod:`repro.engine` inference compiler.  Ranks wrapping the same
        model share one compiled module (traced once, with per-thread
        execution buffers); solvers with nothing to compile pass through
        unchanged.  Results are bitwise identical to the eager path.
    """

    def __init__(
        self,
        geometry: MosaicGeometry,
        solver_factory,
        ordering: str = "row",
        batched: bool = True,
        init_mode: str = "mean",
        engine: bool = False,
    ):
        self.geometry = geometry
        self.solver_factory = solver_factory
        self.ordering = ordering
        self.batched = bool(batched)
        self.init_mode = init_mode
        self.engine = bool(engine)
        self._engine_cache = None
        if self.engine:
            from ..engine import ModuleCache

            self._engine_cache = ModuleCache()

    # -- driver ----------------------------------------------------------------

    def run(
        self,
        world_size: int,
        boundary_loop: np.ndarray,
        max_iterations: int = 200,
        tol: float = 1e-4,
        reference: np.ndarray | None = None,
        target_mae: float | None = None,
        check_interval: int = 1,
        timeout: float = 600.0,
    ) -> list[DistributedMFPResult]:
        """Run the predictor on a simulated cluster of ``world_size`` ranks.

        Returns the list of per-rank results; rank 0's entry carries the
        assembled global solution.
        """

        return run_spmd(
            world_size,
            self.run_rank,
            args=(boundary_loop,),
            kwargs={
                "max_iterations": max_iterations,
                "tol": tol,
                "reference": reference,
                "target_mae": target_mae,
                "check_interval": check_interval,
            },
            timeout=timeout,
        )

    # -- per-rank program ----------------------------------------------------------

    def run_rank(
        self,
        comm: Communicator,
        boundary_loop: np.ndarray,
        max_iterations: int = 200,
        tol: float = 1e-4,
        reference: np.ndarray | None = None,
        target_mae: float | None = None,
        check_interval: int = 1,
    ) -> DistributedMFPResult:
        """SPMD body executed by every rank (usable directly under real MPI).

        Each rank runs on its own thread, so the ``mfp.rank`` span roots that
        thread's trace; the per-phase sections (boundaries IO, inference,
        sendrecv, convergence check, allgather, assembly) are accumulated in
        a thread-safe :class:`~repro.utils.timer.Timings` and returned as the
        result's ``timings`` dict.
        """

        with span("mfp.rank", rank=comm.rank, world=comm.size):
            return self._run_rank_impl(
                comm, boundary_loop, max_iterations=max_iterations, tol=tol,
                reference=reference, target_mae=target_mae,
                check_interval=check_interval,
            )

    def _run_rank_impl(
        self,
        comm: Communicator,
        boundary_loop: np.ndarray,
        max_iterations: int = 200,
        tol: float = 1e-4,
        reference: np.ndarray | None = None,
        target_mae: float | None = None,
        check_interval: int = 1,
    ) -> DistributedMFPResult:
        geometry = self.geometry
        timings = Timings()
        tic = time.perf_counter()

        grid = ProcessGrid(comm.size, ordering=self.ordering)
        layouts = [RankLayout.build(geometry, grid, r) for r in range(comm.size)]
        layout = layouts[comm.rank]
        plan = HaloExchangePlan.build(geometry, grid, layouts, comm.rank)
        solver = self.solver_factory()
        if self.engine:
            from ..engine import compile_solver

            solver = compile_solver(solver, cache=self._engine_cache)
        expected = geometry.subdomain_grid().boundary_size
        if solver.boundary_size != expected:
            raise ValueError(
                f"solver boundary size {solver.boundary_size} != subdomain boundary {expected}"
            )

        # Local field: slice of the global initial field covering this rank's
        # processor subdomain ("Boundaries IO" in the paper's breakdown).
        boundary_loop = np.asarray(boundary_loop, dtype=float)
        global_init = initialize_lattice_field(geometry, boundary_loop, self.init_mode)
        rows = slice(layout.row_offset, layout.row_offset + layout.local_shape[0])
        cols = slice(layout.col_offset, layout.col_offset + layout.local_shape[1])
        local = global_init[rows, cols].copy()
        local_reference = None if reference is None else np.asarray(reference)[rows, cols]
        timings["boundaries_io"] = time.perf_counter() - tic

        # Pre-computed per-anchor index sets (local coordinates).
        brow, bcol = geometry.boundary_loop_local_indices()
        crow, ccol = geometry.center_line_local_indices()
        center_coords = geometry.center_line_local_coordinates()
        half = geometry.half
        local_anchors = layout.local_anchors()
        phase_windows = {}
        for phase in range(len(PHASE_OFFSETS)):
            dr, dc = PHASE_OFFSETS[phase]
            selected = [
                (r, c)
                for (r, c) in local_anchors
                if (r + layout.part.row_start) % 2 == dr
                and (c + layout.part.col_start) % 2 == dc
            ]
            if selected:
                arr = np.asarray(selected, dtype=int)
                phase_windows[phase] = (arr[:, 0] * half, arr[:, 1] * half)
            else:
                phase_windows[phase] = (np.empty(0, dtype=int), np.empty(0, dtype=int))

        # Owned (exclusive) region of the local field, for global reductions.
        owned_r = layout.owned_row_range(geometry)
        owned_c = layout.owned_col_range(geometry)
        owned_rows = slice(owned_r[0] - layout.row_offset, owned_r[1] - layout.row_offset)
        owned_cols = slice(owned_c[0] - layout.col_offset, owned_c[1] - layout.col_offset)
        lattice_mask_local = np.zeros(layout.local_shape, dtype=bool)
        lattice_mask_local[(np.arange(layout.local_shape[0]) + layout.row_offset) % half == 0, :] = True
        lattice_mask_local[:, (np.arange(layout.local_shape[1]) + layout.col_offset) % half == 0] = True
        owned_lattice = np.zeros_like(lattice_mask_local)
        owned_lattice[owned_rows, owned_cols] = lattice_mask_local[owned_rows, owned_cols]

        # Phases with no anchors anywhere (thin lattices) leave the global
        # field unchanged; precomputed once so convergence checks stay cheap.
        phase_has_anchors = [
            bool(geometry.anchors_for_phase(phase)) for phase in range(len(PHASE_OFFSETS))
        ]

        previous = local[owned_lattice].copy()
        deltas: list[float] = []
        mae_history: list[tuple[int, float]] = []
        converged = False
        iterations = 0

        for iteration in range(1, max_iterations + 1):
            phase = (iteration - 1) % len(PHASE_OFFSETS)
            r0, c0 = phase_windows[phase]
            iterations = iteration

            # (1) local subdomain inference and immediate updates
            if r0.size:
                tic = time.perf_counter()
                loops = local[r0[:, None] + brow[None, :], c0[:, None] + bcol[None, :]]
                timings["boundaries_io"] = timings.get("boundaries_io", 0.0) + time.perf_counter() - tic

                tic = time.perf_counter()
                if self.batched:
                    predictions = solver.predict(loops, center_coords)
                else:
                    predictions = np.empty((loops.shape[0], center_coords.shape[0]))
                    for i in range(loops.shape[0]):
                        predictions[i] = solver.predict(loops[i: i + 1], center_coords)[0]
                timings["inference"] = timings.get("inference", 0.0) + time.perf_counter() - tic

                tic = time.perf_counter()
                local[r0[:, None] + crow[None, :], c0[:, None] + ccol[None, :]] = predictions
                timings["boundaries_io"] = timings.get("boundaries_io", 0.0) + time.perf_counter() - tic

            # (2) halo exchange: communicate_new_boundaries
            tic = time.perf_counter()
            for peer in sorted(plan.sends):
                send_rows, send_cols = plan.sends[peer]
                comm.send(local[send_rows, send_cols].copy(), peer, tag=iteration)
            for peer in sorted(plan.recvs):
                recv_rows, recv_cols = plan.recvs[peer]
                values = comm.recv(peer, tag=iteration)
                local[recv_rows, recv_cols] = values
            timings["sendrecv"] = timings.get("sendrecv", 0.0) + time.perf_counter() - tic

            # (3) convergence checks
            if iteration % check_interval == 0:
                tic = time.perf_counter()
                current = local[owned_lattice]
                local_stats = np.array(
                    [
                        float(np.sum((current - previous) ** 2)),
                        float(np.sum(previous ** 2)),
                        float(np.sum(np.abs(current - (local_reference[owned_lattice] if local_reference is not None else 0.0)))),
                        float(current.size),
                    ]
                )
                global_stats = comm.allreduce(local_stats, op=ReduceOp.SUM)
                previous = current.copy()
                denom = np.sqrt(global_stats[1]) if global_stats[1] > 0 else 1.0
                delta = float(np.sqrt(global_stats[0]) / denom)
                deltas.append(delta)
                if reference is not None:
                    mae = float(global_stats[2] / global_stats[3])
                    mae_history.append((iteration, mae))
                    if target_mae is not None and mae < target_mae:
                        converged = True
                # As in the single-process predictor: a tolerance stop needs
                # a phase that processed anchors (globally) since the last
                # check, so all-empty windows never fake convergence.
                window_active = any(
                    phase_has_anchors[(it - 1) % len(PHASE_OFFSETS)]
                    for it in range(iteration - check_interval + 1, iteration + 1)
                )
                if delta < tol and iteration >= len(PHASE_OFFSETS) and window_active:
                    converged = True
                timings["convergence_check"] = (
                    timings.get("convergence_check", 0.0) + time.perf_counter() - tic
                )
                if converged:
                    break

        # (4) dense assembly of the local anchors
        with timings.measure("inference"):
            accumulator, counts = accumulate_dense_predictions(
                local, geometry, solver, local_anchors
            )

        # (5) allgather and overlap averaging
        with timings.measure("allgather"):
            payload = (
                layout.row_offset,
                layout.col_offset,
                accumulator,
                counts,
            )
            gathered = comm.allgather(payload)

        solution = None
        if comm.rank == 0:
            with timings.measure("assembly"):
                global_sum = np.zeros((geometry.global_ny, geometry.global_nx))
                global_count = np.zeros_like(global_sum)
                for row_off, col_off, acc, cnt in gathered:
                    r = slice(row_off, row_off + acc.shape[0])
                    c = slice(col_off, col_off + acc.shape[1])
                    global_sum[r, c] += acc
                    global_count[r, c] += cnt
                solution = overlap_average(global_sum, global_count)
                solution = geometry.global_grid().insert_boundary(boundary_loop, solution)

        return DistributedMFPResult(
            rank=comm.rank,
            world_size=comm.size,
            solution=solution,
            iterations=iterations,
            converged=converged,
            deltas=deltas,
            mae_history=mae_history,
            timings=timings.as_dict(),
            comm_stats=comm.trace.as_dict(),
            halo_bytes_per_iteration=plan.bytes_per_iteration(),
        )
