"""Geometry of the Mosaic Flow interface lattice.

The Mosaic Flow predictor keeps the PDE solution only on the *interface
lattice*: the grid lines spaced half a subdomain apart (the paper's
``1/(2m)`` spacing with ``d = 2``).  Atomic subdomains are anchored at every
lattice node; a subdomain anchored at lattice node ``(r, c)`` spans two
lattice cells per direction, so neighbouring anchors overlap by half a
subdomain.

Within one iteration only one *phase* of anchors is processed — the subset
whose anchor parities match the phase offset — which makes the subdomains of
an iteration non-overlapping (Figure 2).  A phase's subdomains read their
boundary edges from lattice lines of one parity and write their centre lines
to lattice lines of the other parity, which is why batching them (Section
4.1) is exactly equivalent to processing them sequentially.

All index arithmetic for anchors, phases, subdomain windows, boundary loops
and centre lines lives here so the sequential, batched and distributed
predictors share a single geometric truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fd.grid import Grid2D

__all__ = ["MosaicGeometry", "PHASE_OFFSETS"]

#: Iteration phases: parity offsets (row, col) of the anchors processed in
#: that phase.  Cycling through all four covers every anchor.
PHASE_OFFSETS: tuple[tuple[int, int], ...] = ((0, 0), (1, 1), (0, 1), (1, 0))


@dataclass(frozen=True)
class MosaicGeometry:
    """Discrete geometry shared by all Mosaic Flow predictor variants.

    Parameters
    ----------
    subdomain_points:
        Grid points per side of an atomic subdomain (must be odd so the
        subdomain has an exact centre line).  The paper's 32x32-cell
        subdomain corresponds to 33 grid points per side.
    subdomain_extent:
        Physical side length of an atomic subdomain (paper: 0.5).
    steps_x, steps_y:
        Number of half-subdomain steps the global domain spans per axis.
        The global domain therefore measures
        ``steps_x * subdomain_extent / 2`` by ``steps_y * subdomain_extent / 2``
        and has ``steps_* * (subdomain_points - 1) / 2 + 1`` grid points per
        side.  Both must be at least 2 (one full subdomain).
    """

    subdomain_points: int
    subdomain_extent: float
    steps_x: int
    steps_y: int

    def __post_init__(self):
        if self.subdomain_points < 5 or self.subdomain_points % 2 == 0:
            raise ValueError("subdomain_points must be odd and at least 5")
        if self.steps_x < 2 or self.steps_y < 2:
            raise ValueError(
                f"the domain must span at least one full subdomain (2 half-subdomain "
                f"steps) per axis to place any anchor, got steps "
                f"({self.steps_x}, {self.steps_y})"
            )
        if self.subdomain_extent <= 0:
            raise ValueError("subdomain_extent must be positive")

    # -- derived sizes -------------------------------------------------------------

    @property
    def half(self) -> int:
        """Grid points per half-subdomain step (lattice spacing in grid units)."""

        return (self.subdomain_points - 1) // 2

    @property
    def spacing(self) -> float:
        """Physical grid spacing."""

        return self.subdomain_extent / (self.subdomain_points - 1)

    @property
    def global_nx(self) -> int:
        return self.steps_x * self.half + 1

    @property
    def global_ny(self) -> int:
        return self.steps_y * self.half + 1

    @property
    def global_extent(self) -> tuple[float, float]:
        return (
            self.steps_x * self.subdomain_extent / 2.0,
            self.steps_y * self.subdomain_extent / 2.0,
        )

    @property
    def anchor_rows(self) -> int:
        """Number of anchor rows (subdomains per column)."""

        return self.steps_y - 1

    @property
    def anchor_cols(self) -> int:
        return self.steps_x - 1

    @property
    def num_subdomains(self) -> int:
        return self.anchor_rows * self.anchor_cols

    @property
    def is_rectangular(self) -> bool:
        """Whether the domain is a plain axis-aligned rectangle."""

        return True

    # -- grids ------------------------------------------------------------------------

    def global_grid(self, origin: tuple[float, float] = (0.0, 0.0)) -> Grid2D:
        """The full global grid."""

        return Grid2D(
            nx=self.global_nx,
            ny=self.global_ny,
            extent=self.global_extent,
            origin=origin,
        )

    # -- global boundary (shared interface with CompositeMosaicGeometry) --------------
    #
    # The predictors, the fused runner and the serving layer never assume the
    # domain is a rectangle: they go through the accessors below, which the
    # composite geometry of :mod:`repro.domains` implements for re-entrant
    # boundaries.

    @property
    def global_boundary_size(self) -> int:
        """Number of samples in the global Dirichlet boundary loop."""

        return self.global_grid().boundary_size

    def global_boundary_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """(row, col) global grid indices tracing the domain boundary loop."""

        return self.global_grid().boundary_indices()

    def global_boundary_coordinates(self) -> np.ndarray:
        """Physical coordinates of the boundary loop samples, shape ``(n, 2)``."""

        return self.global_grid().boundary_coordinates()

    def boundary_from_function(self, fn) -> np.ndarray:
        """Sample ``fn(x, y)`` along the global boundary loop."""

        return self.global_grid().boundary_from_function(fn)

    def insert_global_boundary(
        self, boundary_loop: np.ndarray, field: np.ndarray | None = None
    ) -> np.ndarray:
        """Write the global boundary loop into a (new or existing) field."""

        return self.global_grid().insert_boundary(boundary_loop, field)

    def valid_mask(self) -> np.ndarray:
        """Boolean mask of grid points inside (or on the boundary of) the domain."""

        return np.ones((self.global_ny, self.global_nx), dtype=bool)

    def boundary_point_mask(self) -> np.ndarray:
        """Boolean mask of grid points on the domain boundary."""

        return self.global_grid().boundary_mask()

    def interior_mask(self) -> np.ndarray:
        """Boolean mask of grid points strictly inside the domain."""

        return self.valid_mask() & ~self.boundary_point_mask()

    def subdomain_grid(self) -> Grid2D:
        """The local grid of one atomic subdomain (origin at its corner)."""

        return Grid2D(
            nx=self.subdomain_points,
            ny=self.subdomain_points,
            extent=(self.subdomain_extent, self.subdomain_extent),
        )

    # -- anchors and phases ---------------------------------------------------------------

    def anchors(self) -> list[tuple[int, int]]:
        """All anchor positions ``(row, col)`` in lattice units."""

        return [
            (r, c) for r in range(self.anchor_rows) for c in range(self.anchor_cols)
        ]

    def anchors_for_phase(self, phase: int) -> list[tuple[int, int]]:
        """Anchors processed in iteration phase ``phase`` (0..3)."""

        dr, dc = PHASE_OFFSETS[phase % len(PHASE_OFFSETS)]
        return [
            (r, c)
            for r in range(dr, self.anchor_rows, 2)
            for c in range(dc, self.anchor_cols, 2)
        ]

    def anchor_window(self, anchor: tuple[int, int]) -> tuple[int, int]:
        """Global grid index of the subdomain's lower-left corner ``(row0, col0)``."""

        r, c = anchor
        if not (0 <= r < self.anchor_rows and 0 <= c < self.anchor_cols):
            raise ValueError(f"anchor {anchor} out of range")
        return r * self.half, c * self.half

    # -- index helpers (local, shared by all anchors) ----------------------------------------

    def boundary_loop_local_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """(row, col) local indices of the subdomain boundary loop."""

        return self.subdomain_grid().boundary_indices()

    def center_line_local_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """(row, col) local indices of the two centre lines, endpoints excluded.

        The centre lines are the horizontal and vertical lines through the
        subdomain centre.  Endpoints lie on the subdomain's own boundary and
        are never overwritten; the centre point appears once.
        """

        m, h = self.subdomain_points, self.half
        interior = np.arange(1, m - 1)
        # horizontal centre line (row = half), all interior columns
        rows_h = np.full(m - 2, h)
        cols_h = interior
        # vertical centre line (col = half), interior rows excluding the centre
        rows_v = interior[interior != h]
        cols_v = np.full(m - 3, h)
        return np.concatenate([rows_h, rows_v]), np.concatenate([cols_h, cols_v])

    def center_line_local_coordinates(self) -> np.ndarray:
        """Physical local coordinates of the centre-line points, shape ``(q, 2)``."""

        rows, cols = self.center_line_local_indices()
        return np.stack([cols * self.spacing, rows * self.spacing], axis=1)

    def interior_local_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """(row, col) local indices of all interior subdomain points."""

        m = self.subdomain_points
        rows, cols = np.meshgrid(np.arange(1, m - 1), np.arange(1, m - 1), indexing="ij")
        return rows.ravel(), cols.ravel()

    def interior_local_coordinates(self) -> np.ndarray:
        rows, cols = self.interior_local_indices()
        return np.stack([cols * self.spacing, rows * self.spacing], axis=1)

    # -- lattice masks --------------------------------------------------------------------------

    def lattice_mask(self) -> np.ndarray:
        """Boolean mask of global grid points lying on interface lattice lines."""

        mask = np.zeros((self.global_ny, self.global_nx), dtype=bool)
        mask[:: self.half, :] = True
        mask[:, :: self.half] = True
        return mask

    # -- construction helpers ----------------------------------------------------------------------

    @classmethod
    def from_domain_size(
        cls,
        domain_size: tuple[float, float],
        subdomain_points: int = 33,
        subdomain_extent: float = 0.5,
    ) -> "MosaicGeometry":
        """Build a geometry covering ``domain_size`` (must be a multiple of half the subdomain)."""

        if domain_size[0] <= 0 or domain_size[1] <= 0:
            raise ValueError(f"domain_size must be positive, got {tuple(domain_size)}")
        if (
            domain_size[0] < subdomain_extent - 1e-9
            or domain_size[1] < subdomain_extent - 1e-9
        ):
            raise ValueError(
                f"domain_size {tuple(domain_size)} is too small for a single "
                f"{subdomain_extent} x {subdomain_extent} subdomain: the Mosaic "
                f"lattice needs at least one full subdomain (one anchor) per axis"
            )
        half_extent = subdomain_extent / 2.0
        steps_x = round(domain_size[0] / half_extent)
        steps_y = round(domain_size[1] / half_extent)
        if abs(steps_x * half_extent - domain_size[0]) > 1e-9 or abs(
            steps_y * half_extent - domain_size[1]
        ) > 1e-9:
            raise ValueError(
                "domain_size must be an integer multiple of half the subdomain extent"
            )
        return cls(
            subdomain_points=subdomain_points,
            subdomain_extent=subdomain_extent,
            steps_x=steps_x,
            steps_y=steps_y,
        )

    def scaled(self, factor: int) -> "MosaicGeometry":
        """A geometry ``factor`` times larger per side (same subdomain)."""

        if factor < 1:
            raise ValueError("factor must be >= 1")
        return MosaicGeometry(
            subdomain_points=self.subdomain_points,
            subdomain_extent=self.subdomain_extent,
            steps_x=self.steps_x * factor,
            steps_y=self.steps_y * factor,
        )
