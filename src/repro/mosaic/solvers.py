"""Subdomain solvers used inside the Mosaic Flow predictor.

The predictor only requires a component that, given the Dirichlet data on an
atomic subdomain's boundary, predicts the solution at requested interior
points.  Two implementations are provided:

* :class:`SDNetSubdomainSolver` — wraps a trained
  :class:`~repro.models.sdnet.SDNet` (or the concat baseline); this is the
  paper's configuration, where the subdomain solve is a single batched
  network inference.
* :class:`FDSubdomainSolver` — solves each subdomain exactly with the finite
  difference substrate.  With this solver the Mosaic Flow predictor becomes a
  classical overlapping Schwarz iteration, which is used to validate the
  predictor's convergence independently of training quality and to isolate
  communication behaviour in the scaling benchmarks.

Both share the same interface so they are interchangeable everywhere.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from ..autodiff import no_grad
from ..autodiff.tensor import Tensor
from ..fd.grid import Grid2D
from ..fd.solve import solve_laplace_from_loop
from ..models.base import NeuralSolver

__all__ = [
    "SubdomainSolver",
    "SDNetSubdomainSolver",
    "FDSubdomainSolver",
    "GEMM_STABLE_ROWS",
]

#: rows per internal forward chunk of :class:`SDNetSubdomainSolver`.  BLAS
#: matmul kernels change regime with the row count (a gemv path at one row,
#: multithreaded blocking past a few dozen), and each regime accumulates in
#: a different order, so the same boundary row can get different low-order
#: bits depending on how many rows share its call.  Executing every call as
#: fixed-size chunks inside the grouping-invariant window makes a row's
#: prediction a pure function of (row, points) — the invariant that lets
#: cross-request mega-batching (:mod:`repro.serving.megabatch`) concatenate
#: calls while staying bitwise identical to per-request execution.
GEMM_STABLE_ROWS = 32


@runtime_checkable
class SubdomainSolver(Protocol):
    """Protocol for atomic-subdomain solvers.

    ``predict(boundaries, points)`` receives a batch of boundary loops of
    shape ``(B, 4N)`` and local query coordinates of shape ``(q, 2)`` (shared
    by every subdomain in the batch) and returns predictions of shape
    ``(B, q)``.
    """

    #: number of samples in a subdomain boundary loop
    boundary_size: int

    def predict(self, boundaries: np.ndarray, points: np.ndarray) -> np.ndarray:
        ...


class SDNetSubdomainSolver:
    """Neural subdomain solver backed by a trained model.

    Parameters
    ----------
    model:
        A :class:`~repro.models.base.NeuralSolver` trained on the subdomain
        BVP (boundary loops of length ``model.boundary_size``).
    max_batch:
        Optional cap on the number of subdomains evaluated per forward call;
        larger batches are split internally.  This mirrors the memory limit
        that determines the maximum feasible batch size in Figure 5.
    engine:
        Run forward passes through the :mod:`repro.engine` inference
        compiler instead of the eager autodiff layer.  ``True`` compiles the
        model on first use; an existing
        :class:`~repro.engine.runtime.CompiledModule` of the same model can
        be passed directly (how the serving layer shares per-geometry
        compiled modules across worker ranks).  Predictions are bitwise
        identical either way; see the engine's parity contract.
    """

    def __init__(self, model: NeuralSolver, max_batch: int | None = None, engine=False):
        self.model = model
        self.boundary_size = int(model.boundary_size)
        self.max_batch = max_batch
        self.inference_calls = 0
        self.points_evaluated = 0
        #: the CompiledModule executing forward passes, or ``None`` for eager
        self.engine = None
        if engine is not False and engine is not None:
            from ..engine import CompiledModule, compile_module

            self.engine = engine if isinstance(engine, CompiledModule) else compile_module(model)

    def predict(self, boundaries: np.ndarray, points: np.ndarray) -> np.ndarray:
        boundaries = np.asarray(boundaries, dtype=float)
        points = np.asarray(points, dtype=float)
        if boundaries.ndim != 2 or boundaries.shape[1] != self.boundary_size:
            raise ValueError(
                f"boundaries must have shape (B, {self.boundary_size}), got {boundaries.shape}"
            )
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError("points must have shape (q, 2)")
        batch = boundaries.shape[0]
        q = points.shape[0]
        out = np.empty((batch, q))
        step = batch if self.max_batch is None else max(int(self.max_batch), 1)
        step = min(max(step, 1), GEMM_STABLE_ROWS)
        forward = self.model if self.engine is None else self.engine
        with no_grad():
            for start in range(0, batch, step):
                stop = min(start + step, batch)
                rows = boundaries[start:stop]
                # BLAS dispatches single-row matmuls to a gemv kernel whose
                # summation order differs from the batched gemm path, so a
                # row's bits would depend on how many rows share its call.
                # Pad singleton chunks to two rows so every row takes the
                # gemm path regardless of batch size -- the invariant that
                # lets cross-request mega-batching stay bitwise identical to
                # per-request execution.
                padded = rows.shape[0] == 1
                if padded:
                    rows = np.concatenate([rows, rows], axis=0)
                g = Tensor(rows)
                x = Tensor(np.broadcast_to(points, (rows.shape[0], q, 2)).copy())
                data = forward(g, x).data
                out[start:stop] = data[:1] if padded else data
                self.inference_calls += 1
                self.points_evaluated += (stop - start) * q
        return out


class FDSubdomainSolver:
    """Exact finite-difference subdomain solver (classical-Schwarz reference).

    Parameters
    ----------
    subdomain_grid:
        The local grid of one atomic subdomain.
    method:
        Solver method forwarded to :func:`repro.fd.solve.solve_laplace_from_loop`.
    """

    def __init__(self, subdomain_grid: Grid2D, method: str = "direct"):
        self.grid = subdomain_grid
        self.method = method
        self.boundary_size = subdomain_grid.boundary_size
        self.inference_calls = 0
        self.points_evaluated = 0

    def _point_indices(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map local physical coordinates to grid indices (must lie on grid points)."""

        cols = points[:, 0] / self.grid.hx
        rows = points[:, 1] / self.grid.hy
        col_idx = np.rint(cols).astype(int)
        row_idx = np.rint(rows).astype(int)
        if (
            np.max(np.abs(cols - col_idx)) > 1e-6
            or np.max(np.abs(rows - row_idx)) > 1e-6
        ):
            raise ValueError("FDSubdomainSolver only supports queries at grid points")
        if (
            col_idx.min() < 0
            or col_idx.max() >= self.grid.nx
            or row_idx.min() < 0
            or row_idx.max() >= self.grid.ny
        ):
            raise ValueError("query point outside the subdomain grid")
        return row_idx, col_idx

    def predict(self, boundaries: np.ndarray, points: np.ndarray) -> np.ndarray:
        boundaries = np.asarray(boundaries, dtype=float)
        points = np.asarray(points, dtype=float)
        if boundaries.ndim != 2 or boundaries.shape[1] != self.boundary_size:
            raise ValueError(
                f"boundaries must have shape (B, {self.boundary_size}), got {boundaries.shape}"
            )
        rows, cols = self._point_indices(points)
        out = np.empty((boundaries.shape[0], points.shape[0]))
        for i in range(boundaries.shape[0]):
            field = solve_laplace_from_loop(self.grid, boundaries[i], method=self.method)
            out[i] = field[rows, cols]
            self.inference_calls += 1
            self.points_evaluated += points.shape[0]
        return out
