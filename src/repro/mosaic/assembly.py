"""Final dense assembly of the Mosaic Flow solution.

After the interface-lattice iteration converges, every atomic subdomain's
interior is predicted densely from its final boundary values and the
overlapping predictions are averaged (Algorithm 2, lines 10-12).  The same
routine serves the sequential, batched and distributed predictors — the
distributed variant simply runs it on each rank's local anchors and merges
the per-rank accumulators after the allgather.
"""

from __future__ import annotations

import numpy as np

from .geometry import MosaicGeometry
from .solvers import SubdomainSolver

__all__ = ["accumulate_dense_predictions", "overlap_average", "assemble_solution"]


def accumulate_dense_predictions(
    field: np.ndarray,
    geometry: MosaicGeometry,
    solver: SubdomainSolver,
    anchors: list[tuple[int, int]],
    accumulator: np.ndarray | None = None,
    counts: np.ndarray | None = None,
    batch_size: int = 256,
) -> tuple[np.ndarray, np.ndarray]:
    """Predict every subdomain interior and accumulate into sum/count arrays.

    Parameters
    ----------
    field:
        Current global (or rank-local) field holding the converged lattice
        values; must cover all ``anchors`` windows.
    geometry:
        Mosaic geometry describing subdomain layout.
    solver:
        Subdomain solver used for the dense predictions.
    anchors:
        Anchors (in lattice units, relative to ``field``'s origin) to process.
    accumulator, counts:
        Optional pre-existing accumulators matching ``field``'s shape.
    batch_size:
        Number of subdomains predicted per solver call.

    Returns
    -------
    ``(accumulator, counts)`` where ``accumulator[i, j]`` is the sum of all
    predictions at that grid point and ``counts[i, j]`` how many subdomains
    contributed.
    """

    if accumulator is None:
        accumulator = np.zeros_like(field)
    if counts is None:
        counts = np.zeros(field.shape)
    if not anchors:
        return accumulator, counts

    brow, bcol = geometry.boundary_loop_local_indices()
    irow, icol = geometry.interior_local_indices()
    interior_coords = geometry.interior_local_coordinates()
    anchor_array = np.asarray(anchors, dtype=int)
    windows_r = anchor_array[:, 0] * geometry.half
    windows_c = anchor_array[:, 1] * geometry.half

    for start in range(0, len(anchors), batch_size):
        stop = min(start + batch_size, len(anchors))
        r0 = windows_r[start:stop]
        c0 = windows_c[start:stop]
        loops = field[r0[:, None] + brow[None, :], c0[:, None] + bcol[None, :]]
        predictions = solver.predict(loops, interior_coords)
        rows = r0[:, None] + irow[None, :]
        cols = c0[:, None] + icol[None, :]
        np.add.at(accumulator, (rows, cols), predictions)
        np.add.at(counts, (rows, cols), 1.0)
        # Boundary-loop values of each subdomain also contribute (they are
        # part of the subdomain solution and exact on the lattice).
        rows_b = r0[:, None] + brow[None, :]
        cols_b = c0[:, None] + bcol[None, :]
        np.add.at(accumulator, (rows_b, cols_b), loops)
        np.add.at(counts, (rows_b, cols_b), 1.0)
    return accumulator, counts


def overlap_average(accumulator: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Average accumulated predictions where subdomains overlap."""

    result = np.zeros_like(accumulator)
    mask = counts > 0
    result[mask] = accumulator[mask] / counts[mask]
    return result


def assemble_solution(
    field: np.ndarray,
    geometry: MosaicGeometry,
    solver: SubdomainSolver,
    boundary_loop: np.ndarray | None = None,
    batch_size: int = 256,
) -> np.ndarray:
    """Dense solution on the global grid from converged lattice values.

    Convenience wrapper used by the single-process predictors: predicts every
    subdomain, averages overlaps and restores the exact global Dirichlet data
    if ``boundary_loop`` is given.  On composite geometries the anchors cover
    exactly the domain, so points outside it keep a zero count and stay zero
    (the masked weighted average never mixes in out-of-domain values).
    """

    accumulator, counts = accumulate_dense_predictions(
        field, geometry, solver, geometry.anchors(), batch_size=batch_size
    )
    solution = overlap_average(accumulator, counts)
    if boundary_loop is not None:
        solution = geometry.insert_global_boundary(
            np.asarray(boundary_loop, dtype=float), solution
        )
    return solution
