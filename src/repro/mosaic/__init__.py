"""Mosaic Flow: interface-lattice geometry, subdomain solvers and predictors."""

from .assembly import accumulate_dense_predictions, assemble_solution, overlap_average
from .distributed import (
    DistributedMFPResult,
    DistributedMosaicFlowPredictor,
    HaloExchangePlan,
    RankLayout,
)
from .geometry import PHASE_OFFSETS, MosaicGeometry
from .predictor import MFPResult, MosaicFlowPredictor, initialize_lattice_field
from .solvers import FDSubdomainSolver, SDNetSubdomainSolver, SubdomainSolver

__all__ = [
    "MosaicGeometry",
    "PHASE_OFFSETS",
    "SubdomainSolver",
    "FDSubdomainSolver",
    "SDNetSubdomainSolver",
    "MosaicFlowPredictor",
    "MFPResult",
    "initialize_lattice_field",
    "DistributedMosaicFlowPredictor",
    "DistributedMFPResult",
    "HaloExchangePlan",
    "RankLayout",
    "accumulate_dense_predictions",
    "assemble_solution",
    "overlap_average",
]
