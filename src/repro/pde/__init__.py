"""Boundary value problems, collocation sampling and physics-informed losses."""

from .bvp import BoundaryValueProblem, Domain, laplace_bvp
from .collocation import (
    grid_points,
    sample_collocation,
    sample_interior_sobol,
    sample_interior_uniform,
)
from .laplace import HARMONIC_FUNCTIONS, harmonic_bvp, sine_boundary_bvp
from .losses import PinnLoss, PinnLossValues, data_loss, laplace_residual_loss, mse_loss

__all__ = [
    "BoundaryValueProblem",
    "Domain",
    "laplace_bvp",
    "HARMONIC_FUNCTIONS",
    "harmonic_bvp",
    "sine_boundary_bvp",
    "sample_collocation",
    "sample_interior_uniform",
    "sample_interior_sobol",
    "grid_points",
    "PinnLoss",
    "PinnLossValues",
    "mse_loss",
    "data_loss",
    "laplace_residual_loss",
]
