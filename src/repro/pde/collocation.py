"""Collocation point sampling for the physics-informed loss."""

from __future__ import annotations

import numpy as np
from scipy.stats import qmc

from .bvp import Domain

__all__ = ["sample_collocation", "sample_interior_uniform", "sample_interior_sobol", "grid_points"]


def sample_interior_uniform(
    domain: Domain, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random interior points, shape ``(count, 2)``."""

    x0, y0 = domain.origin
    lx, ly = domain.extent
    points = rng.uniform(size=(count, 2))
    points[:, 0] = x0 + points[:, 0] * lx
    points[:, 1] = y0 + points[:, 1] * ly
    return points


def sample_interior_sobol(domain: Domain, count: int, seed: int | None = None) -> np.ndarray:
    """Low-discrepancy (Sobol) interior points, shape ``(count, 2)``."""

    sampler = qmc.Sobol(d=2, scramble=True, seed=seed)
    unit = sampler.random(count)
    x0, y0 = domain.origin
    lx, ly = domain.extent
    points = np.empty_like(unit)
    points[:, 0] = x0 + unit[:, 0] * lx
    points[:, 1] = y0 + unit[:, 1] * ly
    return points


def grid_points(domain: Domain, nx: int, ny: int | None = None) -> np.ndarray:
    """All points of a regular grid over the domain, shape ``(nx*ny, 2)``."""

    return domain.grid(nx, ny).points()


def sample_collocation(
    domain: Domain,
    count: int,
    rng: np.random.Generator | None = None,
    strategy: str = "uniform",
    seed: int | None = None,
) -> np.ndarray:
    """Sample collocation points for the PDE residual loss.

    ``strategy`` is ``"uniform"`` (pseudo-random) or ``"sobol"``
    (low-discrepancy).
    """

    if strategy == "uniform":
        rng = rng if rng is not None else np.random.default_rng(seed)
        return sample_interior_uniform(domain, count, rng)
    if strategy == "sobol":
        return sample_interior_sobol(domain, count, seed=seed)
    raise ValueError("strategy must be 'uniform' or 'sobol'")
