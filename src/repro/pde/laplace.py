"""Harmonic functions and Laplace-specific helpers.

A library of closed-form harmonic functions used for testing the finite
difference substrate, the physics loss, and the Mosaic Flow predictor: each
is an exact solution of the Laplace equation, so the corresponding Dirichlet
BVP has a known solution everywhere in the domain.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .bvp import BoundaryValueProblem, Domain, laplace_bvp

__all__ = ["HARMONIC_FUNCTIONS", "harmonic_bvp", "sine_boundary_bvp"]


def _linear(x, y):
    return 1.5 * x - 0.75 * y + 0.25


def _saddle(x, y):
    return x * x - y * y


def _product(x, y):
    return x * y


def _exp_sine(x, y):
    return np.exp(np.pi * x) * np.sin(np.pi * y)


def _sin_cosh(x, y):
    return np.sin(2.0 * np.pi * x) * np.cosh(2.0 * np.pi * y)


def _cubic(x, y):
    return x ** 3 - 3.0 * x * y ** 2


#: name -> vectorized harmonic function u(x, y) with Laplace(u) = 0
HARMONIC_FUNCTIONS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "linear": _linear,
    "saddle": _saddle,
    "product": _product,
    "exp_sine": _exp_sine,
    "sin_cosh": _sin_cosh,
    "cubic": _cubic,
}


def harmonic_bvp(name: str, domain: Domain | None = None) -> BoundaryValueProblem:
    """Laplace BVP whose boundary data comes from a known harmonic function."""

    try:
        fn = HARMONIC_FUNCTIONS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown harmonic function '{name}'; available: {sorted(HARMONIC_FUNCTIONS)}"
        ) from exc
    return laplace_bvp(boundary_function=fn, domain=domain, exact_solution=fn)


def sine_boundary_bvp(domain: Domain | None = None, frequency: float = 1.0) -> BoundaryValueProblem:
    """The evaluation boundary condition used in Figure 7: ``g(x) = sin(2*pi*x)``.

    The boundary value depends only on the position along the x axis (applied
    on all four edges), which is the simple test condition the paper uses to
    compare SDNets trained on different GPU counts.
    """

    def g(x, y):
        return np.sin(2.0 * np.pi * frequency * x)

    return laplace_bvp(boundary_function=g, domain=domain)
