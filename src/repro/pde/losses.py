"""Physics-informed loss functions.

The SDNet training loss (Section 3.3 of the paper) is the sum of

* a **data loss**: mean squared error between the network prediction and the
  reference (pyAMG-substitute) solution at points with known values, and
* a **PDE loss** (eq. 3): the mean squared PDE residual — for the Laplace
  equation, the squared Laplacian of the network output — evaluated at
  collocation points, which requires second derivatives with respect to the
  network inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import ops
from ..autodiff.tensor import Tensor, astensor
from ..models.base import NeuralSolver

__all__ = ["mse_loss", "data_loss", "laplace_residual_loss", "PinnLoss", "PinnLossValues"]


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error between a prediction tensor and a target array."""

    target = astensor(target)
    diff = prediction - target
    return ops.mean(diff * diff)


def data_loss(model: NeuralSolver, g, x, u_true) -> Tensor:
    """MSE between the model prediction and known solution values."""

    prediction = model(g, x)
    return mse_loss(prediction, u_true)


def laplace_residual_loss(
    model: NeuralSolver, g, x_collocation, method: str = "taylor"
) -> Tensor:
    """Mean squared Laplace residual at collocation points (eq. 3)."""

    if hasattr(model, "laplacian_taylor") and method == "taylor":
        residual = model.laplacian(g, x_collocation, create_graph=True, method="taylor")
    elif method == "autograd":
        if hasattr(model, "laplacian_autograd"):
            residual = model.laplacian_autograd(g, x_collocation, create_graph=True)
        else:
            residual = model.laplacian(g, x_collocation, create_graph=True)
    else:
        residual = model.laplacian(g, x_collocation, create_graph=True)
    return ops.mean(residual * residual)


@dataclass
class PinnLossValues:
    """Container for the individual loss terms of one evaluation."""

    total: Tensor
    data: Tensor
    pde: Tensor

    def to_floats(self) -> dict[str, float]:
        return {
            "total": self.total.item(),
            "data": self.data.item(),
            "pde": self.pde.item(),
        }


class PinnLoss:
    """Combined physics-informed loss ``L = L_data + pde_weight * L_pde``.

    Parameters
    ----------
    pde_weight:
        Weight of the PDE residual term (the paper uses an unweighted sum).
    laplacian_method:
        ``"taylor"`` (forward-over-reverse, default) or ``"autograd"``
        (nested reverse mode) for the second derivatives.
    use_pde_loss:
        Disabling the PDE term reproduces the purely data-driven ablation of
        Table 3.
    """

    def __init__(
        self,
        pde_weight: float = 1.0,
        laplacian_method: str = "taylor",
        use_pde_loss: bool = True,
    ):
        self.pde_weight = float(pde_weight)
        self.laplacian_method = laplacian_method
        self.use_pde_loss = bool(use_pde_loss)

    def data_term(self, model: NeuralSolver, g, x_data, u_data) -> Tensor:
        return data_loss(model, g, x_data, u_data)

    def pde_term(self, model: NeuralSolver, g, x_collocation) -> Tensor:
        return laplace_residual_loss(model, g, x_collocation, method=self.laplacian_method)

    def __call__(
        self,
        model: NeuralSolver,
        g,
        x_data,
        u_data,
        x_collocation=None,
    ) -> PinnLossValues:
        """Evaluate both terms and their (weighted) sum."""

        l_data = self.data_term(model, g, x_data, u_data)
        if self.use_pde_loss and x_collocation is not None:
            l_pde = self.pde_term(model, g, x_collocation)
        else:
            l_pde = Tensor(np.zeros(()))
        total = l_data + self.pde_weight * l_pde
        return PinnLossValues(total=total, data=l_data, pde=l_pde)
