"""Physics-informed loss functions.

The SDNet training loss (Section 3.3 of the paper) is the sum of

* a **data loss**: mean squared error between the network prediction and the
  reference (pyAMG-substitute) solution at points with known values, and
* a **PDE loss** (eq. 3): the mean squared PDE residual — for the Laplace
  equation, the squared Laplacian of the network output — evaluated at
  collocation points, which requires second derivatives with respect to the
  network inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import ops
from ..autodiff.tensor import Tensor, astensor
from ..models.base import NeuralSolver

__all__ = [
    "mse_loss",
    "data_loss",
    "laplace_residual_loss",
    "LAPLACIAN_METHODS",
    "PinnLoss",
    "PinnLossValues",
]


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error between a prediction tensor and a target array."""

    target = astensor(target)
    diff = prediction - target
    return ops.mean(diff * diff)


def data_loss(model: NeuralSolver, g, x, u_true) -> Tensor:
    """MSE between the model prediction and known solution values."""

    prediction = model(g, x)
    return mse_loss(prediction, u_true)


#: Laplacian schemes accepted by :func:`laplace_residual_loss`.
LAPLACIAN_METHODS = ("taylor", "autograd")


def laplace_residual_loss(
    model: NeuralSolver, g, x_collocation, method: str = "taylor"
) -> Tensor:
    """Mean squared Laplace residual at collocation points (eq. 3).

    ``method`` must be one of :data:`LAPLACIAN_METHODS`; an unrecognized
    name raises :class:`ValueError` instead of silently falling back to the
    model's default Laplacian.
    """

    if method not in LAPLACIAN_METHODS:
        raise ValueError(
            f"unknown Laplacian method {method!r}; accepted methods: "
            f"{', '.join(LAPLACIAN_METHODS)}"
        )
    if method == "taylor" and hasattr(model, "laplacian_taylor"):
        residual = model.laplacian(g, x_collocation, create_graph=True, method="taylor")
    elif method == "autograd" and hasattr(model, "laplacian_autograd"):
        residual = model.laplacian_autograd(g, x_collocation, create_graph=True)
    else:
        # Models without the requested specialized scheme (e.g. a plain
        # NeuralSolver asked for "taylor") fall back to their default
        # Laplacian implementation.
        residual = model.laplacian(g, x_collocation, create_graph=True)
    return ops.mean(residual * residual)


@dataclass
class PinnLossValues:
    """Container for the individual loss terms of one evaluation."""

    total: Tensor
    data: Tensor
    pde: Tensor

    def to_floats(self) -> dict[str, float]:
        return {
            "total": self.total.item(),
            "data": self.data.item(),
            "pde": self.pde.item(),
        }


class PinnLoss:
    """Combined physics-informed loss ``L = L_data + pde_weight * L_pde``.

    Parameters
    ----------
    pde_weight:
        Weight of the PDE residual term (the paper uses an unweighted sum).
    laplacian_method:
        ``"taylor"`` (forward-over-reverse, default) or ``"autograd"``
        (nested reverse mode) for the second derivatives.
    use_pde_loss:
        Disabling the PDE term reproduces the purely data-driven ablation of
        Table 3.
    engine:
        Run the physics term's forward **and** backward pass through the
        :mod:`repro.engine` jet compiler: the Taylor-mode Laplacian, the
        residual reduction and the parameter reverse sweep are traced once
        into a static program and replayed through preallocated (bucketed)
        plans via :meth:`pde_term_and_grads` — bitwise identical to the
        eager tape, so enabling the engine only changes training *speed*.
        Requires ``laplacian_method="taylor"`` and a model with the
        Taylor-mode path (SDNet).  ``pde_term``/``__call__`` always stay
        eager: they return graph-connected tensors for callers that build
        their own backward pass.
    engine_options:
        Extra keyword arguments for
        :class:`~repro.engine.jet.CompiledValueAndGrad` (e.g.
        ``max_plan_bytes``, ``bucketing``, ``validate``).
    """

    def __init__(
        self,
        pde_weight: float = 1.0,
        laplacian_method: str = "taylor",
        use_pde_loss: bool = True,
        engine: bool = False,
        engine_options: dict | None = None,
    ):
        self.pde_weight = float(pde_weight)
        self.laplacian_method = laplacian_method
        self.use_pde_loss = bool(use_pde_loss)
        self.engine = bool(engine)
        self.engine_options = dict(engine_options or {})
        if self.engine and self.laplacian_method != "taylor":
            raise ValueError(
                "PinnLoss(engine=True) compiles the Taylor-mode Laplacian; "
                f"laplacian_method must be 'taylor', got {laplacian_method!r}"
            )
        # id(model) -> (model, CompiledValueAndGrad); the model reference
        # keeps the id stable for the lifetime of the cache entry.
        self._compiled: dict = {}

    def data_term(self, model: NeuralSolver, g, x_data, u_data) -> Tensor:
        return data_loss(model, g, x_data, u_data)

    def pde_term(self, model: NeuralSolver, g, x_collocation) -> Tensor:
        return laplace_residual_loss(model, g, x_collocation, method=self.laplacian_method)

    # -- compiled physics term ---------------------------------------------------

    def _program_for(self, model: NeuralSolver):
        # The weight is baked into the traced program (the eager path
        # multiplies before the reverse sweep, and bitwise parity requires
        # replaying that), so a weight change invalidates the cached entry.
        entry = self._compiled.get(id(model))
        if entry is not None and entry[0] is model and entry[1] == self.pde_weight:
            return entry[2]
        from ..engine.jet import CompiledValueAndGrad

        if not hasattr(model, "laplacian_taylor"):
            raise ValueError(
                "PinnLoss(engine=True) requires a model with a Taylor-mode "
                f"Laplacian (laplacian_taylor); {type(model).__name__} has none"
            )
        weight = self.pde_weight
        program = CompiledValueAndGrad(
            lambda g, x: laplace_residual_loss(model, g, x, method="taylor"),
            model,
            grad_transform=lambda loss: weight * loss,
            **self.engine_options,
        )
        self._compiled[id(model)] = (model, weight, program)
        return program

    def pde_term_and_grads(self, model: NeuralSolver, g, x_collocation):
        """The PDE term's value and its weighted parameter gradients.

        Returns ``(value, grads)`` where ``value`` is the *unweighted*
        residual loss as a float and ``grads`` is a list of numpy arrays —
        the gradients of ``pde_weight * L_pde`` with respect to
        ``model.parameters()``, in that order.  With ``engine=True`` the
        computation runs through the compiled jet program; otherwise through
        the eager tape.  Both paths compute identical floating-point
        operations, so the results are bitwise equal.
        """

        from ..autodiff import grad

        if self.engine:
            value, grads = self._program_for(model)(g, x_collocation)
            return float(value), list(grads)
        pde_term = self.pde_term(model, g, x_collocation)
        grads = grad(self.pde_weight * pde_term, model.parameters())
        return pde_term.item(), [t.data for t in grads]

    def __call__(
        self,
        model: NeuralSolver,
        g,
        x_data,
        u_data,
        x_collocation=None,
    ) -> PinnLossValues:
        """Evaluate both terms and their (weighted) sum."""

        l_data = self.data_term(model, g, x_data, u_data)
        if self.use_pde_loss and x_collocation is not None:
            l_pde = self.pde_term(model, g, x_collocation)
        else:
            l_pde = Tensor(np.zeros(()))
        total = l_data + self.pde_weight * l_pde
        return PinnLossValues(total=total, data=l_data, pde=l_pde)
