"""Boundary value problem abstractions (eq. 1 of the paper).

A :class:`BoundaryValueProblem` bundles the differential operator, the
boundary operator, the forcing and boundary functions, and the domain.  The
reproduction focuses on the 2-D Laplace equation with Dirichlet boundary
conditions (eq. 2), but the abstraction keeps the operator pluggable so the
physics loss and data generation are PDE-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..fd.grid import Grid2D

__all__ = ["Domain", "BoundaryValueProblem", "laplace_bvp"]


@dataclass(frozen=True)
class Domain:
    """Axis-aligned rectangular domain ``[x0, x0+Lx] x [y0, y0+Ly]``."""

    extent: tuple[float, float] = (1.0, 1.0)
    origin: tuple[float, float] = (0.0, 0.0)

    @property
    def area(self) -> float:
        return self.extent[0] * self.extent[1]

    def contains(self, points: np.ndarray, tol: float = 1e-12) -> np.ndarray:
        """Boolean mask of points inside (or on the boundary of) the domain."""

        points = np.asarray(points, dtype=float)
        x, y = points[..., 0], points[..., 1]
        x0, y0 = self.origin
        lx, ly = self.extent
        return (
            (x >= x0 - tol)
            & (x <= x0 + lx + tol)
            & (y >= y0 - tol)
            & (y <= y0 + ly + tol)
        )

    def grid(self, nx: int, ny: int | None = None) -> Grid2D:
        """Discretize the domain with ``nx x ny`` points."""

        ny = ny if ny is not None else nx
        return Grid2D(nx=nx, ny=ny, extent=self.extent, origin=self.origin)


@dataclass
class BoundaryValueProblem:
    """A boundary value problem ``D[u] = f`` in ``Omega``, ``B[u] = g`` on its boundary.

    Attributes
    ----------
    name:
        Human-readable identifier ("laplace", "poisson", ...).
    domain:
        The rectangular domain ``Omega``.
    forcing:
        Callable ``f(x, y)`` (vectorized) or ``None`` for the homogeneous case.
    boundary_function:
        Callable ``g(x, y)`` giving Dirichlet values, or ``None`` if the
        instance is specified by a discretized boundary loop instead.
    exact_solution:
        Optional callable ``u(x, y)`` when an analytic solution is known
        (used heavily by the test suite).
    """

    name: str
    domain: Domain
    forcing: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None
    boundary_function: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None
    exact_solution: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None
    metadata: dict = field(default_factory=dict)

    def boundary_loop(self, grid: Grid2D) -> np.ndarray:
        """Sample the boundary function along the grid's boundary loop."""

        if self.boundary_function is None:
            raise ValueError("this BVP instance has no boundary function attached")
        return grid.boundary_from_function(self.boundary_function)

    def forcing_field(self, grid: Grid2D) -> np.ndarray | float:
        if self.forcing is None:
            return 0.0
        return grid.field_from_function(self.forcing)

    def exact_field(self, grid: Grid2D) -> np.ndarray:
        if self.exact_solution is None:
            raise ValueError("no exact solution is attached to this BVP")
        return grid.field_from_function(self.exact_solution)

    def reference_solution(self, grid: Grid2D, method: str = "auto") -> np.ndarray:
        """Numerical reference solution on ``grid`` (exact one if available)."""

        from ..fd.solve import solve_poisson

        if self.exact_solution is not None:
            return self.exact_field(grid)
        boundary_field = grid.insert_boundary(self.boundary_loop(grid))
        forcing = self.forcing_field(grid)
        # The FD solver uses the -Laplace(u) = f sign convention.
        if not np.isscalar(forcing):
            forcing = -forcing
        elif forcing != 0.0:
            forcing = -forcing
        return solve_poisson(grid, forcing, boundary_field, method=method)


def laplace_bvp(
    boundary_function: Callable[[np.ndarray, np.ndarray], np.ndarray],
    domain: Domain | None = None,
    exact_solution: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
) -> BoundaryValueProblem:
    """Convenience constructor for a Dirichlet Laplace BVP (eq. 2)."""

    return BoundaryValueProblem(
        name="laplace",
        domain=domain if domain is not None else Domain(),
        forcing=None,
        boundary_function=boundary_function,
        exact_solution=exact_solution,
    )
