"""Finite-difference substrate: grids, discretization, multigrid and solvers.

This package is the reproduction's replacement for pyAMG — it provides the
ground-truth Dirichlet Laplace/Poisson solutions used for SDNet training data
and for evaluating the Mosaic Flow predictor.
"""

from .discretize import apply_laplacian, assemble_poisson, laplacian_matrix, poisson_rhs
from .grid import Grid2D, boundary_loop_indices
from .krylov import conjugate_gradient
from .masked import assemble_poisson_masked, solve_laplace_masked, solve_poisson_masked
from .multigrid import GeometricMultigrid, prolongation_1d
from .smoothers import gauss_seidel, get_smoother, sor, weighted_jacobi
from .solve import solve_laplace, solve_laplace_from_loop, solve_poisson

__all__ = [
    "Grid2D",
    "boundary_loop_indices",
    "laplacian_matrix",
    "poisson_rhs",
    "assemble_poisson",
    "apply_laplacian",
    "assemble_poisson_masked",
    "solve_poisson_masked",
    "solve_laplace_masked",
    "GeometricMultigrid",
    "prolongation_1d",
    "conjugate_gradient",
    "weighted_jacobi",
    "gauss_seidel",
    "sor",
    "get_smoother",
    "solve_poisson",
    "solve_laplace",
    "solve_laplace_from_loop",
]
