"""Finite-difference discretization of the Dirichlet Poisson problem.

The boundary value problem

    -Laplace(u) = f   in the rectangle interior
             u  = g   on the boundary

is discretized with the standard 5-point stencil on a :class:`Grid2D`.
Interior unknowns are ordered row-major (``index = iy*(nx-2) + ix`` over the
interior), producing a symmetric positive-definite sparse system
``A u = b`` where the Dirichlet data enters the right-hand side.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .grid import Grid2D

__all__ = ["laplacian_matrix", "poisson_rhs", "assemble_poisson", "apply_laplacian"]


def laplacian_matrix(grid: Grid2D) -> sp.csr_matrix:
    """Assemble the SPD matrix of ``-Laplace`` on the interior unknowns."""

    nx_i, ny_i = grid.nx - 2, grid.ny - 2
    inv_hx2 = 1.0 / grid.hx ** 2
    inv_hy2 = 1.0 / grid.hy ** 2

    # 1-D second-difference operators (negative Laplacian contributions).
    def second_difference(n: int, inv_h2: float) -> sp.csr_matrix:
        main = np.full(n, 2.0 * inv_h2)
        off = np.full(n - 1, -inv_h2)
        return sp.diags([off, main, off], offsets=[-1, 0, 1], format="csr")

    Dxx = second_difference(nx_i, inv_hx2)
    Dyy = second_difference(ny_i, inv_hy2)
    Ix = sp.identity(nx_i, format="csr")
    Iy = sp.identity(ny_i, format="csr")
    # Row-major interior ordering (iy outer, ix inner) -> kron(Dyy, Ix) + kron(Iy, Dxx)
    return (sp.kron(Dyy, Ix) + sp.kron(Iy, Dxx)).tocsr()


def poisson_rhs(
    grid: Grid2D,
    forcing: np.ndarray | float = 0.0,
    boundary_field: np.ndarray | None = None,
) -> np.ndarray:
    """Build the right-hand side of the discrete system.

    Parameters
    ----------
    grid:
        The discretization grid.
    forcing:
        Either a scalar or an array of shape ``grid.shape`` giving ``f`` at
        every grid point (only interior values are used).
    boundary_field:
        Full field of shape ``grid.shape`` whose boundary ring holds the
        Dirichlet data ``g`` (interior values are ignored).  ``None`` means a
        homogeneous boundary.
    """

    nx_i, ny_i = grid.nx - 2, grid.ny - 2
    if np.isscalar(forcing):
        f_interior = np.full((ny_i, nx_i), float(forcing))
    else:
        forcing = np.asarray(forcing, dtype=float)
        if forcing.shape != grid.shape:
            raise ValueError("forcing array must have the full grid shape")
        f_interior = forcing[1:-1, 1:-1].copy()

    b = f_interior.copy()
    if boundary_field is not None:
        boundary_field = np.asarray(boundary_field, dtype=float)
        if boundary_field.shape != grid.shape:
            raise ValueError("boundary_field must have the full grid shape")
        inv_hx2 = 1.0 / grid.hx ** 2
        inv_hy2 = 1.0 / grid.hy ** 2
        # Neighbouring Dirichlet values move to the right-hand side.
        b[0, :] += inv_hy2 * boundary_field[0, 1:-1]      # south boundary row
        b[-1, :] += inv_hy2 * boundary_field[-1, 1:-1]    # north boundary row
        b[:, 0] += inv_hx2 * boundary_field[1:-1, 0]      # west boundary column
        b[:, -1] += inv_hx2 * boundary_field[1:-1, -1]    # east boundary column
    return b.ravel()


def assemble_poisson(
    grid: Grid2D,
    forcing: np.ndarray | float = 0.0,
    boundary_field: np.ndarray | None = None,
) -> tuple[sp.csr_matrix, np.ndarray]:
    """Return the sparse system ``(A, b)`` for the Dirichlet Poisson problem."""

    return laplacian_matrix(grid), poisson_rhs(grid, forcing, boundary_field)


def apply_laplacian(grid: Grid2D, field: np.ndarray) -> np.ndarray:
    """Apply the 5-point Laplacian to a full field, returning interior values.

    Useful for verifying that a solution satisfies the PDE: for a discrete
    harmonic field the result is (close to) zero.
    """

    field = np.asarray(field, dtype=float)
    if field.shape != grid.shape:
        raise ValueError("field must have the full grid shape")
    inv_hx2 = 1.0 / grid.hx ** 2
    inv_hy2 = 1.0 / grid.hy ** 2
    center = field[1:-1, 1:-1]
    east = field[1:-1, 2:]
    west = field[1:-1, :-2]
    north = field[2:, 1:-1]
    south = field[:-2, 1:-1]
    return (east - 2.0 * center + west) * inv_hx2 + (north - 2.0 * center + south) * inv_hy2
