"""Krylov solvers (conjugate gradients, optionally multigrid-preconditioned)."""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp

__all__ = ["conjugate_gradient"]


def conjugate_gradient(
    A: sp.spmatrix,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iterations: int | None = None,
    preconditioner: Callable[[np.ndarray], np.ndarray] | None = None,
) -> tuple[np.ndarray, dict]:
    """Preconditioned conjugate gradient for SPD systems.

    Parameters
    ----------
    A, b, x0:
        System matrix, right-hand side and optional initial guess.
    tol:
        Relative residual stopping tolerance.
    max_iterations:
        Defaults to ``10 * n``.
    preconditioner:
        Callable applying ``M^{-1}`` to a vector (e.g. one multigrid V-cycle).

    Returns
    -------
    ``(x, info)`` with ``info = {"iterations", "residual", "converged"}``.
    """

    n = b.shape[0]
    max_iterations = max_iterations if max_iterations is not None else 10 * n
    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=float).copy()
    r = b - A @ x
    b_norm = np.linalg.norm(b)
    if b_norm == 0.0:
        return np.zeros_like(b), {"iterations": 0, "residual": 0.0, "converged": True}

    z = preconditioner(r) if preconditioner is not None else r
    p = z.copy()
    rz = float(r @ z)
    for iteration in range(1, max_iterations + 1):
        Ap = A @ p
        denom = float(p @ Ap)
        if denom <= 0.0:
            break
        alpha = rz / denom
        x += alpha * p
        r -= alpha * Ap
        rel = float(np.linalg.norm(r) / b_norm)
        if rel < tol:
            return x, {"iterations": iteration, "residual": rel, "converged": True}
        z = preconditioner(r) if preconditioner is not None else r
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    rel = float(np.linalg.norm(b - A @ x) / b_norm)
    return x, {"iterations": max_iterations, "residual": rel, "converged": rel < tol}
