"""Masked finite-difference Dirichlet solves on non-rectangular grid subsets.

The rectangular solvers of :mod:`repro.fd.solve` assume every interior grid
point is an unknown.  Composite (union-of-rectangles) domains embed a
non-rectangular region in a bounding-box grid; here the unknowns are only the
grid points *strictly inside* the region, the Dirichlet data lives on the
region's (possibly re-entrant) boundary points, and everything outside the
region is ignored.  The same 5-point stencil and row-major interior ordering
are used, so on a full rectangle the assembled system matches
:func:`repro.fd.discretize.assemble_poisson` entry for entry.

This is the reproduction's ground-truth path for composite-domain Mosaic Flow
solves: a direct (or CG) solve of the masked system plays the role the
rectangular reference solve plays in the Fig.-1 accuracy benchmark.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .grid import Grid2D
from .krylov import conjugate_gradient

__all__ = ["assemble_poisson_masked", "solve_poisson_masked", "solve_laplace_masked"]


def _neighbor_shifts() -> tuple[tuple[int, int, str], ...]:
    return ((-1, 0, "hy"), (1, 0, "hy"), (0, -1, "hx"), (0, 1, "hx"))


def assemble_poisson_masked(
    grid: Grid2D,
    interior_mask: np.ndarray,
    boundary_mask: np.ndarray,
    forcing: np.ndarray | float = 0.0,
    boundary_field: np.ndarray | None = None,
) -> tuple[sp.csr_matrix, np.ndarray, np.ndarray]:
    """Assemble ``-Laplace(u) = f`` over an arbitrary interior point set.

    Parameters
    ----------
    grid:
        Bounding-box discretization grid.
    interior_mask:
        Boolean mask (``grid.shape``) of the unknowns.  Every 4-neighbour of
        an interior point must be interior or boundary.
    boundary_mask:
        Boolean mask of Dirichlet points; must be disjoint from the interior.
    forcing:
        Scalar or full-grid array of ``f`` values (interior values used).
    boundary_field:
        Full-grid array carrying the Dirichlet values ``g`` on
        ``boundary_mask`` points; ``None`` means homogeneous data.

    Returns
    -------
    ``(A, b, index)`` — the SPD system over the unknowns (row-major order of
    the interior points) and the full-grid index map (``-1`` outside the
    unknowns) used to scatter solutions back.
    """

    interior_mask = np.asarray(interior_mask, dtype=bool)
    boundary_mask = np.asarray(boundary_mask, dtype=bool)
    if interior_mask.shape != grid.shape or boundary_mask.shape != grid.shape:
        raise ValueError("masks must have the full grid shape")
    if (interior_mask & boundary_mask).any():
        raise ValueError("interior and boundary masks must be disjoint")
    n = int(interior_mask.sum())
    if n == 0:
        raise ValueError("interior mask selects no unknowns")

    index = np.full(grid.shape, -1, dtype=int)
    index[interior_mask] = np.arange(n)

    if np.isscalar(forcing):
        b = np.full(n, float(forcing))
    else:
        forcing = np.asarray(forcing, dtype=float)
        if forcing.shape != grid.shape:
            raise ValueError("forcing array must have the full grid shape")
        b = forcing[interior_mask].astype(float)

    inv_h2 = {"hx": 1.0 / grid.hx ** 2, "hy": 1.0 / grid.hy ** 2}
    rows_i, cols_i = np.nonzero(interior_mask)
    center = index[rows_i, cols_i]

    entries_row = [center]
    entries_col = [center]
    entries_val = [np.full(n, 2.0 * (inv_h2["hx"] + inv_h2["hy"]))]

    g = None
    if boundary_field is not None:
        g = np.asarray(boundary_field, dtype=float)
        if g.shape != grid.shape:
            raise ValueError("boundary_field must have the full grid shape")

    for dr, dc, axis in _neighbor_shifts():
        nr, nc = rows_i + dr, cols_i + dc
        in_bounds = (0 <= nr) & (nr < grid.ny) & (0 <= nc) & (nc < grid.nx)
        if not in_bounds.all():
            raise ValueError(
                "an interior point touches the edge of the bounding grid; "
                "interior_mask must be strictly inside"
            )
        neighbor_interior = interior_mask[nr, nc]
        neighbor_boundary = boundary_mask[nr, nc]
        if not (neighbor_interior | neighbor_boundary).all():
            bad = np.nonzero(~(neighbor_interior | neighbor_boundary))[0][0]
            raise ValueError(
                f"interior point ({rows_i[bad]}, {cols_i[bad]}) has the "
                f"non-domain neighbour ({nr[bad]}, {nc[bad]}); every "
                f"4-neighbour of an unknown must be interior or boundary"
            )
        sel = neighbor_interior
        entries_row.append(center[sel])
        entries_col.append(index[nr[sel], nc[sel]])
        entries_val.append(np.full(int(sel.sum()), -inv_h2[axis]))
        if g is not None:
            sel_b = neighbor_boundary
            np.add.at(b, center[sel_b], inv_h2[axis] * g[nr[sel_b], nc[sel_b]])

    A = sp.coo_matrix(
        (
            np.concatenate(entries_val),
            (np.concatenate(entries_row), np.concatenate(entries_col)),
        ),
        shape=(n, n),
    ).tocsr()
    return A, b, index


def solve_poisson_masked(
    grid: Grid2D,
    interior_mask: np.ndarray,
    boundary_mask: np.ndarray,
    forcing: np.ndarray | float = 0.0,
    boundary_field: np.ndarray | None = None,
    method: str = "direct",
    tol: float = 1e-10,
) -> np.ndarray:
    """Solve the masked Dirichlet Poisson problem; returns the full field.

    Points outside ``interior_mask | boundary_mask`` are left at zero.
    """

    A, b, index = assemble_poisson_masked(
        grid, interior_mask, boundary_mask, forcing, boundary_field
    )
    if method == "direct":
        interior = spla.spsolve(A.tocsc(), b)
    elif method == "cg":
        interior, info = conjugate_gradient(A, b, tol=tol)
        if not info["converged"]:
            raise RuntimeError(f"CG failed to converge: residual={info['residual']:.3e}")
    else:
        raise ValueError("method must be 'direct' or 'cg'")

    field = np.zeros(grid.shape)
    if boundary_field is not None:
        mask = np.asarray(boundary_mask, dtype=bool)
        field[mask] = np.asarray(boundary_field, dtype=float)[mask]
    field[index >= 0] = interior[index[index >= 0]]
    return field


def solve_laplace_masked(
    grid: Grid2D,
    interior_mask: np.ndarray,
    boundary_mask: np.ndarray,
    boundary_field: np.ndarray,
    method: str = "direct",
    tol: float = 1e-10,
) -> np.ndarray:
    """Solve the masked Dirichlet Laplace problem; returns the full field."""

    return solve_poisson_masked(
        grid,
        interior_mask,
        boundary_mask,
        0.0,
        boundary_field,
        method=method,
        tol=tol,
    )
