"""Structured 2-D grids and the boundary-vector convention.

Everything in the reproduction that touches discretized fields — the finite
difference ground-truth solver, the Gaussian-process data generator, SDNet's
boundary input and the Mosaic Flow predictor — shares the conventions defined
here:

* A :class:`Grid2D` covers the rectangle ``[x0, x0+Lx] x [y0, y0+Ly]`` with
  ``nx x ny`` points *including* the boundary; fields are stored as arrays of
  shape ``(ny, nx)`` (row = y index, column = x index).
* The discretized boundary function ``g_hat`` is a closed counter-clockwise
  loop of ``2*nx + 2*ny`` samples: bottom edge (left to right), right edge
  (bottom to top), top edge (right to left), left edge (top to bottom).
  Corners are repeated (they belong to two edges), which matches the paper's
  "4N" convention for an ``N x N`` subdomain and keeps the loop structure the
  convolutional boundary embedding exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Grid2D", "boundary_loop_indices"]


def boundary_loop_indices(nx: int, ny: int) -> tuple[np.ndarray, np.ndarray]:
    """Return (row, col) index arrays tracing the boundary loop.

    The loop has ``2*nx + 2*ny`` entries ordered bottom, right, top, left,
    with corners duplicated between consecutive edges.
    """

    if nx < 2 or ny < 2:
        raise ValueError("grids need at least 2 points per side")
    bottom_c = np.arange(nx)
    bottom_r = np.zeros(nx, dtype=int)
    right_r = np.arange(ny)
    right_c = np.full(ny, nx - 1, dtype=int)
    top_c = np.arange(nx)[::-1]
    top_r = np.full(nx, ny - 1, dtype=int)
    left_r = np.arange(ny)[::-1]
    left_c = np.zeros(ny, dtype=int)
    rows = np.concatenate([bottom_r, right_r, top_r, left_r])
    cols = np.concatenate([bottom_c, right_c, top_c, left_c])
    return rows, cols


@dataclass(frozen=True)
class Grid2D:
    """A uniform structured grid on an axis-aligned rectangle.

    Parameters
    ----------
    nx, ny:
        Number of grid points (including boundary points) per direction.
    extent:
        Physical size ``(Lx, Ly)`` of the rectangle.
    origin:
        Coordinates of the lower-left corner.
    """

    nx: int
    ny: int
    extent: tuple[float, float] = (1.0, 1.0)
    origin: tuple[float, float] = (0.0, 0.0)

    def __post_init__(self):
        if self.nx < 3 or self.ny < 3:
            raise ValueError("Grid2D requires at least 3 points per direction")
        if self.extent[0] <= 0 or self.extent[1] <= 0:
            raise ValueError("extent components must be positive")

    # -- geometry ---------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        """Field array shape ``(ny, nx)``."""

        return (self.ny, self.nx)

    @property
    def hx(self) -> float:
        return self.extent[0] / (self.nx - 1)

    @property
    def hy(self) -> float:
        return self.extent[1] / (self.ny - 1)

    @property
    def num_points(self) -> int:
        return self.nx * self.ny

    @property
    def num_interior(self) -> int:
        return (self.nx - 2) * (self.ny - 2)

    @property
    def boundary_size(self) -> int:
        """Length of the boundary loop vector (``2*nx + 2*ny``)."""

        return 2 * self.nx + 2 * self.ny

    def x_coords(self) -> np.ndarray:
        return self.origin[0] + np.arange(self.nx) * self.hx

    def y_coords(self) -> np.ndarray:
        return self.origin[1] + np.arange(self.ny) * self.hy

    def meshgrid(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(X, Y)`` arrays of shape ``(ny, nx)``."""

        return np.meshgrid(self.x_coords(), self.y_coords(), indexing="xy")

    def points(self) -> np.ndarray:
        """All grid point coordinates as an ``(ny*nx, 2)`` array (row-major)."""

        X, Y = self.meshgrid()
        return np.stack([X.ravel(), Y.ravel()], axis=1)

    def interior_points(self) -> np.ndarray:
        """Interior point coordinates, shape ``(num_interior, 2)``."""

        X, Y = self.meshgrid()
        return np.stack(
            [X[1:-1, 1:-1].ravel(), Y[1:-1, 1:-1].ravel()], axis=1
        )

    # -- boundary handling -------------------------------------------------------

    def boundary_indices(self) -> tuple[np.ndarray, np.ndarray]:
        return boundary_loop_indices(self.nx, self.ny)

    def boundary_coordinates(self) -> np.ndarray:
        """Coordinates of the boundary loop samples, shape ``(boundary_size, 2)``."""

        rows, cols = self.boundary_indices()
        X, Y = self.meshgrid()
        return np.stack([X[rows, cols], Y[rows, cols]], axis=1)

    def extract_boundary(self, field: np.ndarray) -> np.ndarray:
        """Extract the boundary loop vector from a full field."""

        field = np.asarray(field)
        if field.shape != self.shape:
            raise ValueError(f"field shape {field.shape} does not match grid {self.shape}")
        rows, cols = self.boundary_indices()
        return field[rows, cols].copy()

    def insert_boundary(self, boundary: np.ndarray, field: np.ndarray | None = None) -> np.ndarray:
        """Write a boundary loop vector into a (new or existing) field.

        Corner samples appear twice in the loop; the last write wins, which is
        harmless because consistent boundary data carries identical values.
        """

        boundary = np.asarray(boundary, dtype=float)
        if boundary.shape != (self.boundary_size,):
            raise ValueError(
                f"boundary vector must have length {self.boundary_size}, got {boundary.shape}"
            )
        if field is None:
            field = np.zeros(self.shape)
        else:
            field = np.array(field, dtype=float, copy=True)
        rows, cols = self.boundary_indices()
        field[rows, cols] = boundary
        return field

    def boundary_mask(self) -> np.ndarray:
        """Boolean mask of boundary points, shape ``(ny, nx)``."""

        mask = np.zeros(self.shape, dtype=bool)
        mask[0, :] = mask[-1, :] = True
        mask[:, 0] = mask[:, -1] = True
        return mask

    def boundary_from_function(self, fn) -> np.ndarray:
        """Sample ``fn(x, y)`` along the boundary loop."""

        coords = self.boundary_coordinates()
        return np.asarray(fn(coords[:, 0], coords[:, 1]), dtype=float)

    def field_from_function(self, fn) -> np.ndarray:
        """Sample ``fn(x, y)`` on the full grid."""

        X, Y = self.meshgrid()
        return np.asarray(fn(X, Y), dtype=float)

    # -- sub-grids ----------------------------------------------------------------

    def subgrid(self, row0: int, col0: int, ny: int, nx: int) -> "Grid2D":
        """Return the grid covering the window starting at ``(row0, col0)``.

        The window shares grid points with the parent (same spacing); used by
        the Mosaic Flow predictor to form atomic subdomains.
        """

        if row0 < 0 or col0 < 0 or row0 + ny > self.ny or col0 + nx > self.nx:
            raise ValueError("subgrid window out of range")
        return Grid2D(
            nx=nx,
            ny=ny,
            extent=((nx - 1) * self.hx, (ny - 1) * self.hy),
            origin=(
                self.origin[0] + col0 * self.hx,
                self.origin[1] + row0 * self.hy,
            ),
        )
