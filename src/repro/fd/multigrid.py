"""Geometric multigrid with Galerkin coarse operators.

This plays the role pyAMG plays in the paper: a fast, accurate solver for the
Dirichlet Laplace/Poisson problems used both to generate SDNet training data
and to produce reference solutions on large evaluation domains.

The hierarchy is built geometrically — 1-D linear-interpolation prolongators
are combined with a Kronecker product — while coarse operators are formed
with the Galerkin product ``A_c = R A P``.  This combination works for any
interior size (not only ``2^k - 1``) and converges at the usual multigrid
rate for the 5-point Laplacian.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .smoothers import get_smoother

__all__ = ["MultigridLevel", "GeometricMultigrid", "prolongation_1d"]


def prolongation_1d(n_fine: int) -> sp.csr_matrix:
    """Linear-interpolation prolongator from the coarse to the fine 1-D grid.

    The coarse grid keeps every second fine point (even indices).  Returns a
    ``(n_fine, n_coarse)`` sparse matrix; ``n_coarse = ceil(n_fine / 2)``.
    """

    if n_fine < 3:
        raise ValueError("prolongation requires at least 3 fine points")
    n_coarse = (n_fine + 1) // 2
    rows, cols, vals = [], [], []
    for i in range(n_fine):
        if i % 2 == 0:
            rows.append(i)
            cols.append(i // 2)
            vals.append(1.0)
        else:
            left = i // 2
            right = min(left + 1, n_coarse - 1)
            rows.extend([i, i])
            cols.extend([left, right])
            vals.extend([0.5, 0.5])
    return sp.csr_matrix((vals, (rows, cols)), shape=(n_fine, n_coarse))


@dataclass
class MultigridLevel:
    """One level of the multigrid hierarchy."""

    A: sp.csr_matrix
    shape: tuple[int, int]          # interior unknown layout (ny_i, nx_i)
    P: sp.csr_matrix | None = None  # prolongation to this (finer) level
    R: sp.csr_matrix | None = None  # restriction from this level


class GeometricMultigrid:
    """V-cycle multigrid solver for SPD 5-point systems.

    Parameters
    ----------
    A:
        Fine-level SPD matrix over the interior unknowns (row-major layout).
    interior_shape:
        ``(ny_i, nx_i)`` of the interior unknowns.
    smoother:
        ``"gauss_seidel"`` (default), ``"jacobi"`` or ``"sor"``.
    pre_smooth, post_smooth:
        Number of smoothing sweeps before/after coarse-grid correction.
    min_size:
        Coarsest-level size below which a direct solve is used.
    """

    def __init__(
        self,
        A: sp.spmatrix,
        interior_shape: tuple[int, int],
        smoother: str = "gauss_seidel",
        pre_smooth: int = 2,
        post_smooth: int = 2,
        min_size: int = 64,
        max_levels: int = 12,
    ):
        self.smooth = get_smoother(smoother)
        self.pre_smooth = int(pre_smooth)
        self.post_smooth = int(post_smooth)
        self.levels: list[MultigridLevel] = []
        self._build_hierarchy(sp.csr_matrix(A), tuple(interior_shape), min_size, max_levels)
        coarse = self.levels[-1].A
        self._coarse_solve = spla.factorized(coarse.tocsc())

    # -- setup -------------------------------------------------------------------

    def _build_hierarchy(self, A, shape, min_size, max_levels):
        self.levels.append(MultigridLevel(A=A, shape=shape))
        while (
            len(self.levels) < max_levels
            and self.levels[-1].A.shape[0] > min_size
            and min(self.levels[-1].shape) >= 3
        ):
            level = self.levels[-1]
            ny_i, nx_i = level.shape
            Px = prolongation_1d(nx_i)
            Py = prolongation_1d(ny_i)
            P = sp.kron(Py, Px, format="csr")
            R = (0.25 * P.T).tocsr()  # full-weighting-like restriction
            A_coarse = (R @ level.A @ P).tocsr()
            coarse_shape = ((ny_i + 1) // 2, (nx_i + 1) // 2)
            level.P = P
            level.R = R
            self.levels.append(MultigridLevel(A=A_coarse, shape=coarse_shape))

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    # -- cycles ------------------------------------------------------------------

    def v_cycle(self, b: np.ndarray, x: np.ndarray | None = None, level: int = 0) -> np.ndarray:
        """Perform one V-cycle starting from ``x`` (zeros if ``None``)."""

        lvl = self.levels[level]
        if x is None:
            x = np.zeros_like(b)
        if level == self.num_levels - 1:
            return self._coarse_solve(b)

        x = self.smooth(lvl.A, b, x, iterations=self.pre_smooth)
        residual = b - lvl.A @ x
        coarse_residual = lvl.R @ residual
        correction = self.v_cycle(coarse_residual, None, level + 1)
        x = x + lvl.P @ correction
        x = self.smooth(lvl.A, b, x, iterations=self.post_smooth)
        return x

    def solve(
        self,
        b: np.ndarray,
        x0: np.ndarray | None = None,
        tol: float = 1e-10,
        max_cycles: int = 50,
    ) -> tuple[np.ndarray, dict]:
        """Iterate V-cycles until the relative residual drops below ``tol``.

        Returns ``(solution, info)`` where ``info`` carries the cycle count
        and the final relative residual.
        """

        A = self.levels[0].A
        x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=float).copy()
        b_norm = np.linalg.norm(b)
        if b_norm == 0.0:
            return np.zeros_like(b), {"cycles": 0, "residual": 0.0, "converged": True}
        history = []
        for cycle in range(1, max_cycles + 1):
            x = self.v_cycle(b, x)
            rel = float(np.linalg.norm(b - A @ x) / b_norm)
            history.append(rel)
            if rel < tol:
                return x, {
                    "cycles": cycle,
                    "residual": rel,
                    "converged": True,
                    "history": history,
                }
        return x, {
            "cycles": max_cycles,
            "residual": history[-1],
            "converged": False,
            "history": history,
        }
