"""Stationary iterative smoothers for the multigrid hierarchy."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

__all__ = ["weighted_jacobi", "gauss_seidel", "sor", "get_smoother"]


def weighted_jacobi(
    A: sp.spmatrix, b: np.ndarray, x: np.ndarray, iterations: int = 1, omega: float = 2.0 / 3.0
) -> np.ndarray:
    """Weighted Jacobi sweeps: ``x <- x + omega * D^{-1} (b - A x)``."""

    diag = A.diagonal()
    if np.any(diag == 0):
        raise ValueError("Jacobi smoother requires a nonzero diagonal")
    inv_diag = 1.0 / diag
    for _ in range(iterations):
        residual = b - A @ x
        x = x + omega * inv_diag * residual
    return x


def _lower_triangle(A: sp.spmatrix) -> sp.csr_matrix:
    return sp.tril(A, k=0, format="csr")


def gauss_seidel(
    A: sp.spmatrix, b: np.ndarray, x: np.ndarray, iterations: int = 1
) -> np.ndarray:
    """Forward Gauss-Seidel sweeps using a sparse triangular solve."""

    lower = _lower_triangle(A)
    for _ in range(iterations):
        residual = b - A @ x
        x = x + spsolve_triangular(lower, residual, lower=True)
    return x


def sor(
    A: sp.spmatrix, b: np.ndarray, x: np.ndarray, iterations: int = 1, omega: float = 1.5
) -> np.ndarray:
    """Successive over-relaxation sweeps (``omega=1`` reduces to Gauss-Seidel)."""

    if not 0.0 < omega < 2.0:
        raise ValueError("SOR requires 0 < omega < 2 for convergence")
    diag = sp.diags(A.diagonal())
    lower_strict = sp.tril(A, k=-1, format="csr")
    M = (diag / omega + lower_strict).tocsr()
    for _ in range(iterations):
        residual = b - A @ x
        x = x + spsolve_triangular(M, residual, lower=True)
    return x


_SMOOTHERS = {
    "jacobi": weighted_jacobi,
    "gauss_seidel": gauss_seidel,
    "sor": sor,
}


def get_smoother(name: str):
    """Look up a smoother by name (``jacobi``, ``gauss_seidel``, ``sor``)."""

    try:
        return _SMOOTHERS[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown smoother '{name}'; available: {sorted(_SMOOTHERS)}"
        ) from exc
