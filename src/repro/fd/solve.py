"""High-level Dirichlet Laplace / Poisson solvers.

These are the reproduction's stand-in for pyAMG in the paper's data
generation pipeline (Section 5.1): given a grid and boundary data they return
the full-field solution, choosing a direct sparse factorization for small
problems and geometric multigrid for large ones.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg as spla

from .discretize import assemble_poisson
from .grid import Grid2D
from .krylov import conjugate_gradient
from .multigrid import GeometricMultigrid

__all__ = ["solve_poisson", "solve_laplace", "solve_laplace_from_loop"]

#: interior-unknown count above which multigrid is preferred over a direct solve
_DIRECT_SOLVE_LIMIT = 20_000


def solve_poisson(
    grid: Grid2D,
    forcing: np.ndarray | float = 0.0,
    boundary_field: np.ndarray | None = None,
    method: str = "auto",
    tol: float = 1e-10,
) -> np.ndarray:
    """Solve ``-Laplace(u) = f`` with Dirichlet data, returning the full field.

    Parameters
    ----------
    grid:
        Discretization grid.
    forcing:
        Scalar or full-grid array of ``f`` values.
    boundary_field:
        Full-grid array whose boundary ring contains the Dirichlet values.
    method:
        ``"auto"`` (direct for small systems, multigrid otherwise),
        ``"direct"``, ``"multigrid"`` or ``"cg"``.
    """

    A, b = assemble_poisson(grid, forcing, boundary_field)
    n = A.shape[0]
    if method == "auto":
        method = "direct" if n <= _DIRECT_SOLVE_LIMIT else "multigrid"

    if method == "direct":
        interior = spla.spsolve(A.tocsc(), b)
    elif method == "multigrid":
        mg = GeometricMultigrid(A, (grid.ny - 2, grid.nx - 2))
        interior, info = mg.solve(b, tol=tol)
        if not info["converged"]:
            raise RuntimeError(
                f"multigrid failed to converge: residual={info['residual']:.3e}"
            )
    elif method == "cg":
        interior, info = conjugate_gradient(A, b, tol=tol)
        if not info["converged"]:
            raise RuntimeError(f"CG failed to converge: residual={info['residual']:.3e}")
    else:
        raise ValueError("method must be 'auto', 'direct', 'multigrid' or 'cg'")

    field = np.zeros(grid.shape)
    if boundary_field is not None:
        mask = grid.boundary_mask()
        field[mask] = np.asarray(boundary_field, dtype=float)[mask]
    field[1:-1, 1:-1] = interior.reshape(grid.ny - 2, grid.nx - 2)
    return field


def solve_laplace(
    grid: Grid2D,
    boundary_field: np.ndarray,
    method: str = "auto",
    tol: float = 1e-10,
) -> np.ndarray:
    """Solve the Laplace equation with Dirichlet boundary data."""

    return solve_poisson(grid, 0.0, boundary_field, method=method, tol=tol)


def solve_laplace_from_loop(
    grid: Grid2D,
    boundary_loop: np.ndarray,
    method: str = "auto",
    tol: float = 1e-10,
) -> np.ndarray:
    """Solve the Laplace equation given the boundary as a loop vector (``4N``)."""

    boundary_field = grid.insert_boundary(boundary_loop)
    return solve_laplace(grid, boundary_field, method=method, tol=tol)
