"""SDNet training dataset generation and batching.

The training dataset (Section 5.2 of the paper) consists of boundary
conditions drawn from Gaussian processes on a small square domain, paired
with reference solutions from the numerical substrate (the pyAMG stand-in).
Each training batch supplies

* a batch of boundary loops ``G`` of shape ``(B, 4N)``,
* data points with known solutions (sub-sampled grid points) and
* freshly sampled collocation points for the PDE residual term.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..fd.grid import Grid2D
from ..fd.solve import solve_laplace_from_loop
from ..pde.bvp import Domain
from ..pde.collocation import sample_interior_uniform
from .gp import GaussianProcessSampler, GPBoundaryConfig

__all__ = ["SDNetDataset", "TrainingBatch", "BatchIterator", "generate_dataset"]


@dataclass
class TrainingBatch:
    """One mini-batch of SDNet training data.

    Attributes
    ----------
    boundaries:
        ``(B, 4N)`` boundary loops.
    x_data:
        ``(B, q_data, 2)`` coordinates with known solution values.
    u_data:
        ``(B, q_data)`` reference solution values at ``x_data``.
    x_collocation:
        ``(B, q_collocation, 2)`` collocation coordinates for the PDE loss.
    indices:
        Dataset indices of the boundary conditions in the batch.
    """

    boundaries: np.ndarray
    x_data: np.ndarray
    u_data: np.ndarray
    x_collocation: np.ndarray
    indices: np.ndarray

    @property
    def size(self) -> int:
        return self.boundaries.shape[0]


@dataclass
class SDNetDataset:
    """Boundary conditions with reference solutions on a fixed small grid."""

    grid: Grid2D
    boundaries: np.ndarray       # (n, 4N)
    solutions: np.ndarray        # (n, ny, nx)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.boundaries.ndim != 2 or self.solutions.ndim != 3:
            raise ValueError("boundaries must be 2-D and solutions 3-D arrays")
        if self.boundaries.shape[0] != self.solutions.shape[0]:
            raise ValueError("boundaries and solutions must have the same length")
        if self.boundaries.shape[1] != self.grid.boundary_size:
            raise ValueError("boundary vectors do not match the grid boundary size")
        if self.solutions.shape[1:] != self.grid.shape:
            raise ValueError("solution fields do not match the grid shape")

    def __len__(self) -> int:
        return self.boundaries.shape[0]

    @property
    def domain(self) -> Domain:
        return Domain(extent=self.grid.extent, origin=self.grid.origin)

    def split(self, validation_fraction: float = 0.1, seed: int = 0) -> tuple["SDNetDataset", "SDNetDataset"]:
        """Random train/validation split (paper: 90 % / 10 %)."""

        if not 0.0 < validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in (0, 1)")
        n = len(self)
        rng = np.random.default_rng(seed)
        order = rng.permutation(n)
        n_val = max(int(round(n * validation_fraction)), 1)
        val_idx, train_idx = order[:n_val], order[n_val:]
        train = SDNetDataset(
            self.grid, self.boundaries[train_idx], self.solutions[train_idx],
            metadata=dict(self.metadata, split="train"),
        )
        val = SDNetDataset(
            self.grid, self.boundaries[val_idx], self.solutions[val_idx],
            metadata=dict(self.metadata, split="validation"),
        )
        return train, val

    def subset(self, indices: np.ndarray) -> "SDNetDataset":
        indices = np.asarray(indices, dtype=int)
        return SDNetDataset(
            self.grid, self.boundaries[indices], self.solutions[indices],
            metadata=dict(self.metadata),
        )

    # -- batch assembly ---------------------------------------------------------

    def data_points(
        self, indices: np.ndarray, points_per_domain: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sub-sample interior grid points with known solutions.

        Returns ``(x_data, u_data)`` with shapes ``(B, q, 2)`` and ``(B, q)``.
        """

        interior = self.grid.interior_points()           # (num_interior, 2)
        num_interior = interior.shape[0]
        points_per_domain = min(points_per_domain, num_interior)
        batch = len(indices)
        x_data = np.empty((batch, points_per_domain, 2))
        u_data = np.empty((batch, points_per_domain))
        for row, index in enumerate(indices):
            choice = rng.choice(num_interior, size=points_per_domain, replace=False)
            x_data[row] = interior[choice]
            interior_values = self.solutions[index][1:-1, 1:-1].reshape(-1)
            u_data[row] = interior_values[choice]
        return x_data, u_data

    def collocation_points(
        self, batch: int, points_per_domain: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Freshly sampled interior collocation points, shape ``(B, q, 2)``."""

        domain = self.domain
        points = np.empty((batch, points_per_domain, 2))
        for row in range(batch):
            points[row] = sample_interior_uniform(domain, points_per_domain, rng)
        return points

    def full_grid_batch(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return boundaries, all grid coordinates and solutions for evaluation."""

        indices = np.asarray(indices, dtype=int)
        coords = self.grid.points()
        x = np.broadcast_to(coords, (len(indices),) + coords.shape).copy()
        u = self.solutions[indices].reshape(len(indices), -1)
        return self.boundaries[indices], x, u


class BatchIterator:
    """Iterate over an :class:`SDNetDataset` in shuffled mini-batches.

    Supports data-parallel sharding: rank ``r`` of ``world_size`` processes
    only its slice of every global batch, so the union over ranks equals the
    single-process batch — preserving SGD semantics when gradients are
    averaged with an allreduce (Algorithm 1).
    """

    def __init__(
        self,
        dataset: SDNetDataset,
        batch_size: int,
        data_points_per_domain: int = 64,
        collocation_points_per_domain: int = 64,
        seed: int = 0,
        rank: int = 0,
        world_size: int = 1,
        drop_last: bool = True,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if not 0 <= rank < world_size:
            raise ValueError("rank must satisfy 0 <= rank < world_size")
        if batch_size % world_size != 0:
            raise ValueError("batch_size must be divisible by world_size")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.data_points_per_domain = int(data_points_per_domain)
        self.collocation_points_per_domain = int(collocation_points_per_domain)
        self.seed = int(seed)
        self.rank = int(rank)
        self.world_size = int(world_size)
        self.drop_last = bool(drop_last)
        self.epoch = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return int(np.ceil(n / self.batch_size))

    def set_epoch(self, epoch: int) -> None:
        """Set the epoch number so every rank shuffles identically."""

        self.epoch = int(epoch)

    def __iter__(self) -> Iterator[TrainingBatch]:
        n = len(self.dataset)
        shuffle_rng = np.random.default_rng((self.seed, self.epoch))
        order = shuffle_rng.permutation(n)
        # Point sampling must differ per rank (each rank has its own shard)
        # but stay reproducible.
        point_rng = np.random.default_rng((self.seed, self.epoch, self.rank))
        num_batches = len(self)
        local = self.batch_size // self.world_size
        for b in range(num_batches):
            global_indices = order[b * self.batch_size: (b + 1) * self.batch_size]
            if len(global_indices) < self.batch_size and self.drop_last:
                break
            shard = global_indices[self.rank * local: (self.rank + 1) * local]
            if len(shard) == 0:
                continue
            x_data, u_data = self.dataset.data_points(
                shard, self.data_points_per_domain, point_rng
            )
            x_coll = self.dataset.collocation_points(
                len(shard), self.collocation_points_per_domain, point_rng
            )
            yield TrainingBatch(
                boundaries=self.dataset.boundaries[shard],
                x_data=x_data,
                u_data=u_data,
                x_collocation=x_coll,
                indices=shard,
            )


def generate_dataset(
    num_samples: int,
    resolution: int = 32,
    extent: tuple[float, float] = (0.5, 0.5),
    gp_config: GPBoundaryConfig | None = None,
    seed: int = 0,
    solver_method: str = "auto",
) -> SDNetDataset:
    """Generate an SDNet training dataset (GP boundaries + FD solutions).

    Parameters
    ----------
    num_samples:
        Number of boundary-condition / solution pairs (paper: 20,000).
    resolution:
        Grid points per direction of the training subdomain (paper: 32).
    extent:
        Physical size of the training subdomain (paper: 0.5 x 0.5).
    gp_config:
        Gaussian-process kernel configuration.
    seed:
        Seed controlling both the GP draws and the Sobol hyperparameters.
    solver_method:
        Method passed to the reference solver.
    """

    grid = Grid2D(resolution, resolution, extent=extent)
    sampler = GaussianProcessSampler(
        boundary_size=grid.boundary_size,
        perimeter=2.0 * (extent[0] + extent[1]),
        config=gp_config,
        seed=seed,
    )
    boundaries = sampler.sample(num_samples)
    solutions = np.empty((num_samples,) + grid.shape)
    for i in range(num_samples):
        solutions[i] = solve_laplace_from_loop(grid, boundaries[i], method=solver_method)
    return SDNetDataset(
        grid=grid,
        boundaries=boundaries,
        solutions=solutions,
        metadata={"seed": seed, "resolution": resolution, "extent": extent},
    )
