"""Gaussian-process boundary condition generation (Section 5.1 of the paper).

The training and evaluation boundary conditions are sample paths of 1-D
Gaussian processes along the (closed) domain boundary.  Following the paper:

1. a Sobol sequence samples the hyperparameters of an infinitely
   differentiable (squared-exponential) kernel,
2. for each hyperparameter setting a sample function is drawn from the GP,
3. the sampled curve is the discretized boundary function ``g_hat``.

Both the plain squared-exponential kernel and its periodic variant are
available; the periodic kernel produces boundary loops that close smoothly,
which is the natural choice for the boundary of a closed domain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import qmc

__all__ = [
    "squared_exponential_kernel",
    "periodic_kernel",
    "GaussianProcessSampler",
    "GPBoundaryConfig",
    "sample_kernel_hyperparameters",
]


def squared_exponential_kernel(
    s1: np.ndarray, s2: np.ndarray, lengthscale: float, variance: float
) -> np.ndarray:
    """Infinitely differentiable RBF kernel ``k(s, s')``."""

    if lengthscale <= 0 or variance <= 0:
        raise ValueError("kernel hyperparameters must be positive")
    diff = s1[:, None] - s2[None, :]
    return variance * np.exp(-0.5 * (diff / lengthscale) ** 2)


def periodic_kernel(
    s1: np.ndarray,
    s2: np.ndarray,
    lengthscale: float,
    variance: float,
    period: float,
) -> np.ndarray:
    """Exp-sine-squared kernel: smooth and periodic with the given period."""

    if lengthscale <= 0 or variance <= 0 or period <= 0:
        raise ValueError("kernel hyperparameters must be positive")
    diff = np.pi * np.abs(s1[:, None] - s2[None, :]) / period
    return variance * np.exp(-2.0 * (np.sin(diff) / lengthscale) ** 2)


@dataclass(frozen=True)
class GPBoundaryConfig:
    """Configuration of the GP boundary sampler.

    Attributes
    ----------
    lengthscale_range:
        ``(low, high)`` range the Sobol sequence maps to (log-uniform).
    variance_range:
        ``(low, high)`` range for the kernel variance (log-uniform).
    periodic:
        Use the periodic kernel so the boundary loop closes smoothly.
    jitter:
        Diagonal jitter added before the Cholesky factorization.
    """

    lengthscale_range: tuple[float, float] = (0.2, 2.0)
    variance_range: tuple[float, float] = (0.25, 1.0)
    periodic: bool = True
    jitter: float = 1e-8


def sample_kernel_hyperparameters(
    count: int, config: GPBoundaryConfig, seed: int | None = None
) -> np.ndarray:
    """Sobol-sample ``count`` (lengthscale, variance) pairs (log-uniform)."""

    sampler = qmc.Sobol(d=2, scramble=True, seed=seed)
    unit = sampler.random(count)
    log_ls = np.log(config.lengthscale_range[0]) + unit[:, 0] * (
        np.log(config.lengthscale_range[1]) - np.log(config.lengthscale_range[0])
    )
    log_var = np.log(config.variance_range[0]) + unit[:, 1] * (
        np.log(config.variance_range[1]) - np.log(config.variance_range[0])
    )
    return np.stack([np.exp(log_ls), np.exp(log_var)], axis=1)


class GaussianProcessSampler:
    """Draw boundary condition curves from Sobol-parameterized GPs.

    Parameters
    ----------
    boundary_size:
        Number of samples along the boundary loop (``4N``).
    perimeter:
        Physical length of the boundary loop; the GP is defined over the
        arc-length parameterization ``s in [0, perimeter)``.
    config:
        Kernel hyperparameter ranges and options.
    seed:
        Seed shared by the Sobol sequence and the Gaussian draws.
    """

    def __init__(
        self,
        boundary_size: int,
        perimeter: float = 2.0,
        config: GPBoundaryConfig | None = None,
        seed: int | None = None,
    ):
        if boundary_size < 4:
            raise ValueError("boundary_size must be at least 4")
        self.boundary_size = int(boundary_size)
        self.perimeter = float(perimeter)
        self.config = config if config is not None else GPBoundaryConfig()
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._arc = np.linspace(0.0, self.perimeter, self.boundary_size, endpoint=False)

    def _covariance(self, lengthscale: float, variance: float) -> np.ndarray:
        if self.config.periodic:
            K = periodic_kernel(
                self._arc, self._arc, lengthscale, variance, self.perimeter
            )
        else:
            K = squared_exponential_kernel(self._arc, self._arc, lengthscale, variance)
        K[np.diag_indices_from(K)] += self.config.jitter
        return K

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` boundary curves, shape ``(count, boundary_size)``.

        Each curve uses its own Sobol-sampled kernel hyperparameters, so the
        dataset spans a range of boundary smoothness, as in the paper.
        """

        hypers = sample_kernel_hyperparameters(count, self.config, seed=self.seed)
        curves = np.empty((count, self.boundary_size))
        for i, (lengthscale, variance) in enumerate(hypers):
            K = self._covariance(float(lengthscale), float(variance))
            chol = np.linalg.cholesky(K)
            curves[i] = chol @ self._rng.standard_normal(self.boundary_size)
        return curves

    def sample_one(self) -> np.ndarray:
        """Draw a single boundary curve, shape ``(boundary_size,)``."""

        return self.sample(1)[0]
