"""Data generation: Gaussian-process boundary conditions and SDNet datasets."""

from .dataset import BatchIterator, SDNetDataset, TrainingBatch, generate_dataset
from .gp import (
    GaussianProcessSampler,
    GPBoundaryConfig,
    periodic_kernel,
    sample_kernel_hyperparameters,
    squared_exponential_kernel,
)

__all__ = [
    "GaussianProcessSampler",
    "GPBoundaryConfig",
    "squared_exponential_kernel",
    "periodic_kernel",
    "sample_kernel_hyperparameters",
    "SDNetDataset",
    "TrainingBatch",
    "BatchIterator",
    "generate_dataset",
]
