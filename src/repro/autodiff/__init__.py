"""Reverse-mode automatic differentiation engine.

This package replaces the role PyTorch autograd plays in the original paper.
It provides:

* :class:`Tensor` — a numpy-backed array recording operations,
* primitive ops in :mod:`repro.autodiff.ops` whose VJPs are themselves
  differentiable (higher-order gradients),
* :func:`grad` / :func:`backward` / :func:`gradcheck` in
  :mod:`repro.autodiff.functional`,
* forward Taylor-mode second-derivative propagation in
  :mod:`repro.autodiff.taylor`, used as the optimized Laplacian path,
* :class:`GraphMemoryTracker` for the Table 3 memory study.
"""

from .tensor import (
    DEFAULT_DTYPE,
    GraphMemoryTracker,
    Tensor,
    astensor,
    enable_grad,
    is_grad_enabled,
    no_grad,
    set_grad_enabled,
)
from . import ops
from .functional import backward, grad, gradcheck, jacobian
from .taylor import TaylorTriple, taylor_constant, taylor_seed

__all__ = [
    "Tensor",
    "astensor",
    "no_grad",
    "enable_grad",
    "set_grad_enabled",
    "is_grad_enabled",
    "grad",
    "backward",
    "gradcheck",
    "jacobian",
    "ops",
    "TaylorTriple",
    "taylor_constant",
    "taylor_seed",
    "GraphMemoryTracker",
    "DEFAULT_DTYPE",
]
