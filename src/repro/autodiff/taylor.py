"""Forward Taylor-mode propagation of second derivatives.

The PDE residual of the Laplace equation needs the sum of unmixed second
derivatives of the network output with respect to the spatial inputs
(``u_xx + u_yy``).  The paper computes them with nested reverse-mode passes
("three backward passes" in Section 5.2).  This module implements the
alternative *forward-over-reverse* strategy: the value, first directional
derivative, and second directional derivative along a coordinate direction
are propagated together through the network.

Each component of a :class:`TaylorTriple` is an ordinary autodiff
:class:`~repro.autodiff.tensor.Tensor`, so the resulting second derivative is
still differentiable with respect to the network *parameters* with a single
reverse sweep.  Compared with double backward this reduces graph size and is
used as the optimized Laplacian path; the two are cross-validated in the test
suite and compared in an ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from . import ops
from .tensor import Tensor, astensor

__all__ = [
    "TaylorTriple",
    "taylor_constant",
    "taylor_seed",
    "taylor_seed_directions",
    "sum_direction_blocks",
]


@dataclass
class TaylorTriple:
    """Second-order Taylor coefficients along one direction.

    Attributes
    ----------
    value:
        ``f(x)``
    d1:
        first directional derivative ``d f / d t``
    d2:
        second directional derivative ``d^2 f / d t^2``
    """

    value: Tensor
    d1: Tensor
    d2: Tensor

    # -- linear operations --------------------------------------------------

    def __add__(self, other: "TaylorTriple | Tensor | float") -> "TaylorTriple":
        if isinstance(other, TaylorTriple):
            return TaylorTriple(
                self.value + other.value, self.d1 + other.d1, self.d2 + other.d2
            )
        other = astensor(other)
        return TaylorTriple(self.value + other, self.d1, self.d2)

    __radd__ = __add__

    def __sub__(self, other: "TaylorTriple | Tensor | float") -> "TaylorTriple":
        if isinstance(other, TaylorTriple):
            return TaylorTriple(
                self.value - other.value, self.d1 - other.d1, self.d2 - other.d2
            )
        other = astensor(other)
        return TaylorTriple(self.value - other, self.d1, self.d2)

    def __mul__(self, other: "TaylorTriple | Tensor | float") -> "TaylorTriple":
        if isinstance(other, TaylorTriple):
            # Product rule up to second order.
            value = self.value * other.value
            d1 = self.d1 * other.value + self.value * other.d1
            d2 = (
                self.d2 * other.value
                + 2.0 * (self.d1 * other.d1)
                + self.value * other.d2
            )
            return TaylorTriple(value, d1, d2)
        other = astensor(other)
        return TaylorTriple(self.value * other, self.d1 * other, self.d2 * other)

    __rmul__ = __mul__

    def matmul(self, weight: Tensor) -> "TaylorTriple":
        """Right-multiply by a weight matrix that does not depend on the direction."""

        return TaylorTriple(
            ops.matmul(self.value, weight),
            ops.matmul(self.d1, weight),
            ops.matmul(self.d2, weight),
        )

    def apply_activation(
        self,
        f: Callable[[Tensor], Tensor],
        f1: Callable[[Tensor], Tensor],
        f2: Callable[[Tensor], Tensor],
    ) -> "TaylorTriple":
        """Propagate through an elementwise activation via Faà di Bruno.

        ``f``, ``f1`` and ``f2`` evaluate the activation and its first and
        second derivatives at a tensor argument.
        """

        value = f(self.value)
        first = f1(self.value)
        second = f2(self.value)
        d1 = first * self.d1
        d2 = second * (self.d1 * self.d1) + first * self.d2
        return TaylorTriple(value, d1, d2)


def taylor_constant(value: Tensor) -> TaylorTriple:
    """A quantity that does not vary along the differentiation direction."""

    value = astensor(value)
    zero = Tensor(np.zeros_like(value.data))
    return TaylorTriple(value, zero, Tensor(np.zeros_like(value.data)))


def taylor_seed(value: Tensor, direction: np.ndarray) -> TaylorTriple:
    """Seed a Taylor triple for an input varying linearly along ``direction``.

    ``direction`` must broadcast against ``value``; the second derivative of
    a linear seed is zero.
    """

    value = astensor(value)
    d1 = Tensor(np.broadcast_to(np.asarray(direction, dtype=value.data.dtype), value.shape).copy())
    d2 = Tensor(np.zeros_like(value.data))
    return TaylorTriple(value, d1, d2)


def taylor_seed_directions(value: Tensor, num_directions: int | None = None) -> TaylorTriple:
    """Seed one triple carrying *every* coordinate direction at once.

    ``value`` is a batch of query points of shape ``(batch, q, dim)``.  The
    returned triple replicates the points ``num_directions`` times (default:
    ``dim``) along a **new leading direction axis**: slice ``k`` of the
    stacked tensor carries the first-derivative seed ``e_k``, so a single
    propagation sweep computes the directional jets of all coordinate
    directions -- each layer issues one batched matmul over
    ``num_directions * batch`` point blocks instead of ``num_directions``
    separate sweeps.

    The direction axis is a pure broadcast axis: every 2-D matmul slice and
    every elementwise lane is computed by exactly the same floating-point
    operations as the per-direction loop, so the stacked jets are bitwise
    identical to looped ones.  Better: the ``value`` channel — and with it
    every ``f(v)`` / ``f'(v)`` / ``f''(v)`` evaluation along the way — does
    not depend on the direction at all, so it is kept at direction extent 1
    and *broadcast* against the per-direction ``d1``/``d2`` channels instead
    of being recomputed per direction (the per-direction loop pays that
    redundancy ``num_directions`` times).  The batch axis (axis 1 of the
    stacked layout) also stays uniform across directions, which is what lets
    the engine's bucketed execution plans slice capacity-sized seed
    constants down to any smaller batch.  Use :func:`sum_direction_blocks`
    to reduce the propagated ``d2`` back to a Laplacian.
    """

    value = astensor(value)
    if value.ndim != 3:
        raise ValueError(
            f"taylor_seed_directions expects (batch, q, dim) points; got {value.shape}"
        )
    batch, q, dim = value.shape
    directions = dim if num_directions is None else int(num_directions)
    if not 1 <= directions <= dim:
        raise ValueError(f"num_directions must be in [1, {dim}], got {directions}")
    stacked_shape = (directions, batch, q, dim)
    lifted = ops.reshape(value, (1, batch, q, dim))
    d1 = np.zeros(stacked_shape, dtype=value.data.dtype)
    for k in range(directions):
        d1[k, :, :, k] = 1.0
    d2 = np.zeros(stacked_shape, dtype=value.data.dtype)
    return TaylorTriple(lifted, Tensor(d1), Tensor(d2))


def sum_direction_blocks(stacked: Tensor, num_directions: int) -> Tensor:
    """Sum a direction-stacked result over its leading direction axis.

    ``stacked`` has shape ``(num_directions, batch, q)`` -- the ``d2``
    component propagated from :func:`taylor_seed_directions`, with the
    trailing singleton reshaped away -- and the result is the ``(batch, q)``
    sum over directions, i.e. the Laplacian when every coordinate direction
    was seeded.  Slices are added left to right, exactly like the
    per-direction loop accumulates ``lap = lap + d2``.
    """

    total = stacked[0]
    for k in range(1, num_directions):
        total = total + stacked[k]
    return total
