"""Forward Taylor-mode propagation of second derivatives.

The PDE residual of the Laplace equation needs the sum of unmixed second
derivatives of the network output with respect to the spatial inputs
(``u_xx + u_yy``).  The paper computes them with nested reverse-mode passes
("three backward passes" in Section 5.2).  This module implements the
alternative *forward-over-reverse* strategy: the value, first directional
derivative, and second directional derivative along a coordinate direction
are propagated together through the network.

Each component of a :class:`TaylorTriple` is an ordinary autodiff
:class:`~repro.autodiff.tensor.Tensor`, so the resulting second derivative is
still differentiable with respect to the network *parameters* with a single
reverse sweep.  Compared with double backward this reduces graph size and is
used as the optimized Laplacian path; the two are cross-validated in the test
suite and compared in an ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from . import ops
from .tensor import Tensor, astensor

__all__ = ["TaylorTriple", "taylor_constant", "taylor_seed"]


@dataclass
class TaylorTriple:
    """Second-order Taylor coefficients along one direction.

    Attributes
    ----------
    value:
        ``f(x)``
    d1:
        first directional derivative ``d f / d t``
    d2:
        second directional derivative ``d^2 f / d t^2``
    """

    value: Tensor
    d1: Tensor
    d2: Tensor

    # -- linear operations --------------------------------------------------

    def __add__(self, other: "TaylorTriple | Tensor | float") -> "TaylorTriple":
        if isinstance(other, TaylorTriple):
            return TaylorTriple(
                self.value + other.value, self.d1 + other.d1, self.d2 + other.d2
            )
        other = astensor(other)
        return TaylorTriple(self.value + other, self.d1, self.d2)

    __radd__ = __add__

    def __sub__(self, other: "TaylorTriple | Tensor | float") -> "TaylorTriple":
        if isinstance(other, TaylorTriple):
            return TaylorTriple(
                self.value - other.value, self.d1 - other.d1, self.d2 - other.d2
            )
        other = astensor(other)
        return TaylorTriple(self.value - other, self.d1, self.d2)

    def __mul__(self, other: "TaylorTriple | Tensor | float") -> "TaylorTriple":
        if isinstance(other, TaylorTriple):
            # Product rule up to second order.
            value = self.value * other.value
            d1 = self.d1 * other.value + self.value * other.d1
            d2 = (
                self.d2 * other.value
                + 2.0 * (self.d1 * other.d1)
                + self.value * other.d2
            )
            return TaylorTriple(value, d1, d2)
        other = astensor(other)
        return TaylorTriple(self.value * other, self.d1 * other, self.d2 * other)

    __rmul__ = __mul__

    def matmul(self, weight: Tensor) -> "TaylorTriple":
        """Right-multiply by a weight matrix that does not depend on the direction."""

        return TaylorTriple(
            ops.matmul(self.value, weight),
            ops.matmul(self.d1, weight),
            ops.matmul(self.d2, weight),
        )

    def apply_activation(
        self,
        f: Callable[[Tensor], Tensor],
        f1: Callable[[Tensor], Tensor],
        f2: Callable[[Tensor], Tensor],
    ) -> "TaylorTriple":
        """Propagate through an elementwise activation via Faà di Bruno.

        ``f``, ``f1`` and ``f2`` evaluate the activation and its first and
        second derivatives at a tensor argument.
        """

        value = f(self.value)
        first = f1(self.value)
        second = f2(self.value)
        d1 = first * self.d1
        d2 = second * (self.d1 * self.d1) + first * self.d2
        return TaylorTriple(value, d1, d2)


def taylor_constant(value: Tensor) -> TaylorTriple:
    """A quantity that does not vary along the differentiation direction."""

    value = astensor(value)
    zero = Tensor(np.zeros_like(value.data))
    return TaylorTriple(value, zero, Tensor(np.zeros_like(value.data)))


def taylor_seed(value: Tensor, direction: np.ndarray) -> TaylorTriple:
    """Seed a Taylor triple for an input varying linearly along ``direction``.

    ``direction`` must broadcast against ``value``; the second derivative of
    a linear seed is zero.
    """

    value = astensor(value)
    d1 = Tensor(np.broadcast_to(np.asarray(direction, dtype=value.data.dtype), value.shape).copy())
    d2 = Tensor(np.zeros_like(value.data))
    return TaylorTriple(value, d1, d2)
