"""Primitive differentiable operations.

Every primitive creates an output :class:`~repro.autodiff.tensor.Tensor` and
registers vector-Jacobian product (VJP) closures for its inputs.  The VJPs are
written *in terms of other primitives*, which is what enables higher-order
differentiation: when :func:`repro.autodiff.grad` runs with
``create_graph=True`` the backward pass itself is recorded and can be
differentiated again.  This mirrors the mechanism PyTorch uses for the
``create_graph=True`` path exercised by physics-informed losses.

Only the operations required by the reproduction are implemented; they are
sufficient for MLPs, 1-D convolutions, GELU/Tanh activations, losses, and the
second derivatives needed by the Laplace residual.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy import special as _special

from .tensor import Tensor, astensor, is_grad_enabled

__all__ = [
    "add", "sub", "mul", "div", "neg", "pow", "exp", "log", "sqrt",
    "tanh", "erf", "sin", "cos", "abs", "maximum_zero",
    "matmul", "sum", "mean", "reshape", "transpose", "swapaxes",
    "broadcast_to", "getitem", "scatter_add", "concatenate", "stack", "pad",
    "where_mask", "clip",
]


# ---------------------------------------------------------------------------
# Broadcasting helpers
# ---------------------------------------------------------------------------


def _unbroadcast(grad: Tensor, shape: tuple) -> Tensor:
    """Reduce ``grad`` so that it has ``shape``.

    When a binary operation broadcasts an operand, the gradient flowing back
    must be summed over the broadcast axes.  The reduction is expressed with
    differentiable primitives so double backward works.
    """

    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = sum(grad, axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = sum(grad, axis=axes, keepdims=True)
    if grad.shape != shape:
        grad = reshape(grad, shape)
    return grad


# ---------------------------------------------------------------------------
# Elementwise binary operations
# ---------------------------------------------------------------------------


def add(a, b) -> Tensor:
    a, b = astensor(a), astensor(b)
    out_data = a.data + b.data
    return Tensor._from_op(
        out_data,
        [(a, lambda g: _unbroadcast(g, a.shape)),
         (b, lambda g: _unbroadcast(g, b.shape))],
        "add",
    )


def sub(a, b) -> Tensor:
    a, b = astensor(a), astensor(b)
    out_data = a.data - b.data
    return Tensor._from_op(
        out_data,
        [(a, lambda g: _unbroadcast(g, a.shape)),
         (b, lambda g: _unbroadcast(neg(g), b.shape))],
        "sub",
    )


def mul(a, b) -> Tensor:
    a, b = astensor(a), astensor(b)
    out_data = a.data * b.data
    return Tensor._from_op(
        out_data,
        [(a, lambda g: _unbroadcast(mul(g, b), a.shape)),
         (b, lambda g: _unbroadcast(mul(g, a), b.shape))],
        "mul",
    )


def div(a, b) -> Tensor:
    a, b = astensor(a), astensor(b)
    out_data = a.data / b.data
    return Tensor._from_op(
        out_data,
        [(a, lambda g: _unbroadcast(div(g, b), a.shape)),
         (b, lambda g: _unbroadcast(neg(div(mul(g, a), mul(b, b))), b.shape))],
        "div",
    )


# ---------------------------------------------------------------------------
# Elementwise unary operations
# ---------------------------------------------------------------------------


def neg(a) -> Tensor:
    a = astensor(a)
    return Tensor._from_op(-a.data, [(a, lambda g: neg(g))], "neg")


def pow(a, exponent: float) -> Tensor:
    """Elementwise power with a constant (non-differentiated) exponent."""

    a = astensor(a)
    exponent = float(exponent)
    out_data = a.data ** exponent

    def vjp(g: Tensor) -> Tensor:
        return mul(g, mul(exponent, pow(a, exponent - 1.0)))

    return Tensor._from_op(out_data, [(a, vjp)], "pow")


def exp(a) -> Tensor:
    a = astensor(a)
    # The VJP recomputes ``exp(a)`` instead of capturing the output tensor so
    # that the backward graph stays connected to ``a`` under double backward.
    return Tensor._from_op(
        np.exp(a.data), [(a, lambda g: mul(g, exp(a)))], "exp"
    )


def log(a) -> Tensor:
    a = astensor(a)
    return Tensor._from_op(
        np.log(a.data), [(a, lambda g: div(g, a))], "log"
    )


def sqrt(a) -> Tensor:
    return pow(a, 0.5)


def tanh(a) -> Tensor:
    a = astensor(a)

    def vjp(g: Tensor) -> Tensor:
        t = tanh(a)
        return mul(g, sub(1.0, mul(t, t)))

    return Tensor._from_op(np.tanh(a.data), [(a, vjp)], "tanh")


def erf(a) -> Tensor:
    """Gauss error function (used by the exact GELU activation)."""

    a = astensor(a)
    coeff = 2.0 / math.sqrt(math.pi)

    def vjp(g: Tensor) -> Tensor:
        return mul(g, mul(coeff, exp(neg(mul(a, a)))))

    return Tensor._from_op(_special.erf(a.data), [(a, vjp)], "erf")


def sin(a) -> Tensor:
    a = astensor(a)
    return Tensor._from_op(np.sin(a.data), [(a, lambda g: mul(g, cos(a)))], "sin")


def cos(a) -> Tensor:
    a = astensor(a)
    return Tensor._from_op(
        np.cos(a.data), [(a, lambda g: neg(mul(g, sin(a))))], "cos"
    )


def abs(a) -> Tensor:
    a = astensor(a)
    sign = np.sign(a.data)

    def vjp(g: Tensor) -> Tensor:
        return mul(g, Tensor(sign))

    return Tensor._from_op(np.abs(a.data), [(a, vjp)], "abs")


def maximum_zero(a) -> Tensor:
    """ReLU primitive: ``max(a, 0)`` with a zero sub-gradient at 0."""

    a = astensor(a)
    mask = (a.data > 0).astype(a.data.dtype)

    def vjp(g: Tensor) -> Tensor:
        return mul(g, Tensor(mask))

    return Tensor._from_op(np.maximum(a.data, 0.0), [(a, vjp)], "relu")


def where_mask(mask: np.ndarray, a, b) -> Tensor:
    """Select ``a`` where ``mask`` is true, ``b`` elsewhere.

    ``mask`` is a plain boolean numpy array and is not differentiated.
    """

    a, b = astensor(a), astensor(b)
    mask = np.asarray(mask, dtype=bool)
    fa = mask.astype(a.data.dtype)
    fb = 1.0 - fa

    return Tensor._from_op(
        np.where(mask, a.data, b.data),
        [(a, lambda g: _unbroadcast(mul(g, Tensor(fa)), a.shape)),
         (b, lambda g: _unbroadcast(mul(g, Tensor(fb)), b.shape))],
        "where",
    )


def clip(a, low: float, high: float) -> Tensor:
    """Clamp values to ``[low, high]`` with straight-through zero gradients outside."""

    a = astensor(a)
    mask = ((a.data >= low) & (a.data <= high)).astype(a.data.dtype)

    def vjp(g: Tensor) -> Tensor:
        return mul(g, Tensor(mask))

    return Tensor._from_op(np.clip(a.data, low, high), [(a, vjp)], "clip")


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------


def _swap_last(t: Tensor) -> Tensor:
    return swapaxes(t, -1, -2)


def matmul(a, b) -> Tensor:
    """Matrix product following numpy ``@`` semantics (operands must be >=2-D)."""

    a, b = astensor(a), astensor(b)
    if a.ndim < 2 or b.ndim < 2:
        raise ValueError("matmul requires operands with at least 2 dimensions")
    out_data = a.data @ b.data

    def vjp_a(g: Tensor) -> Tensor:
        return _unbroadcast(matmul(g, _swap_last(b)), a.shape)

    def vjp_b(g: Tensor) -> Tensor:
        return _unbroadcast(matmul(_swap_last(a), g), b.shape)

    return Tensor._from_op(out_data, [(a, vjp_a), (b, vjp_b)], "matmul")


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------


def sum(a, axis=None, keepdims: bool = False) -> Tensor:
    a = astensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)
    in_shape = a.shape

    if axis is None:
        axes = tuple(range(a.ndim))
    elif isinstance(axis, int):
        axes = (axis % a.ndim,)
    else:
        axes = tuple(ax % a.ndim for ax in axis)

    def vjp(g: Tensor) -> Tensor:
        if not keepdims and in_shape:
            expanded_shape = list(in_shape)
            for ax in axes:
                expanded_shape[ax] = 1
            g = reshape(g, tuple(expanded_shape))
        return broadcast_to(g, in_shape)

    return Tensor._from_op(out_data, [(a, vjp)], "sum")


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = astensor(a)
    if axis is None:
        count = a.size
    elif isinstance(axis, int):
        count = a.shape[axis % a.ndim]
    else:
        count = 1
        for ax in axis:
            count *= a.shape[ax % a.ndim]
    return div(sum(a, axis=axis, keepdims=keepdims), float(count))


# ---------------------------------------------------------------------------
# Shape manipulation
# ---------------------------------------------------------------------------


def reshape(a, shape) -> Tensor:
    a = astensor(a)
    in_shape = a.shape
    return Tensor._from_op(
        a.data.reshape(shape), [(a, lambda g: reshape(g, in_shape))], "reshape"
    )


def transpose(a, axes=None) -> Tensor:
    a = astensor(a)
    if axes is None:
        axes = tuple(reversed(range(a.ndim)))
    axes = tuple(ax % a.ndim for ax in axes)
    inverse = tuple(np.argsort(axes))
    return Tensor._from_op(
        a.data.transpose(axes), [(a, lambda g: transpose(g, inverse))], "transpose"
    )


def swapaxes(a, axis1: int, axis2: int) -> Tensor:
    a = astensor(a)
    axes = list(range(a.ndim))
    axis1, axis2 = axis1 % a.ndim, axis2 % a.ndim
    axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
    return transpose(a, tuple(axes))


def broadcast_to(a, shape) -> Tensor:
    a = astensor(a)
    in_shape = a.shape
    out_data = np.broadcast_to(a.data, shape).copy()
    return Tensor._from_op(
        out_data, [(a, lambda g: _unbroadcast(g, in_shape))], "broadcast_to"
    )


def concatenate(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [astensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    axis = axis % out_data.ndim
    # Pre-compute slice boundaries for the VJPs.
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    parents = []
    for i, t in enumerate(tensors):
        start, stop = int(offsets[i]), int(offsets[i + 1])

        def make_vjp(start=start, stop=stop):
            def vjp(g: Tensor) -> Tensor:
                index = [slice(None)] * out_data.ndim
                index[axis] = slice(start, stop)
                return getitem(g, tuple(index))

            return vjp

        parents.append((t, make_vjp()))
    return Tensor._from_op(out_data, parents, "concatenate")


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [astensor(t) for t in tensors]
    expanded = [reshape(t, t.shape[:axis] + (1,) + t.shape[axis:]) for t in tensors]
    return concatenate(expanded, axis=axis)


def pad(a, pad_width) -> Tensor:
    """Zero padding.  ``pad_width`` follows :func:`numpy.pad` conventions."""

    a = astensor(a)
    out_data = np.pad(a.data, pad_width)
    norm = np.empty((a.ndim, 2), dtype=int)
    pw = np.asarray(pad_width)
    if pw.ndim == 0:
        norm[:, :] = int(pw)
    elif pw.ndim == 1:
        norm[:, 0] = pw[0]
        norm[:, 1] = pw[1]
    else:
        norm[:, :] = pw

    def vjp(g: Tensor) -> Tensor:
        index = tuple(
            slice(int(norm[d, 0]), g.shape[d] - int(norm[d, 1])) for d in range(a.ndim)
        )
        return getitem(g, index)

    return Tensor._from_op(out_data, [(a, vjp)], "pad")


# ---------------------------------------------------------------------------
# Indexing
# ---------------------------------------------------------------------------


def getitem(a, index) -> Tensor:
    """Differentiable indexing (basic slices and integer-array indexing)."""

    a = astensor(a)
    out_data = a.data[index]
    in_shape = a.shape

    def vjp(g: Tensor) -> Tensor:
        return scatter_add(g, index, in_shape)

    return Tensor._from_op(out_data, [(a, vjp)], "getitem")


def scatter_add(g, index, shape) -> Tensor:
    """Scatter-add ``g`` into a zero tensor of ``shape`` at ``index``.

    This is the adjoint of :func:`getitem`; its own adjoint is ``getitem``
    with the same index, which keeps arbitrary-order differentiation closed.
    """

    g = astensor(g)
    out_data = np.zeros(shape, dtype=g.data.dtype)
    np.add.at(out_data, index, g.data)

    def vjp(h: Tensor) -> Tensor:
        return getitem(h, index)

    return Tensor._from_op(out_data, [(g, vjp)], "scatter_add")


# ---------------------------------------------------------------------------
# Operator overloads on Tensor
# ---------------------------------------------------------------------------


def _radd(a, b):
    return add(b, a)


def _rsub(a, b):
    return sub(b, a)


def _rmul(a, b):
    return mul(b, a)


def _rdiv(a, b):
    return div(b, a)


def _attach_operators() -> None:
    Tensor.__add__ = lambda self, other: add(self, other)
    Tensor.__radd__ = lambda self, other: add(other, self)
    Tensor.__sub__ = lambda self, other: sub(self, other)
    Tensor.__rsub__ = lambda self, other: sub(other, self)
    Tensor.__mul__ = lambda self, other: mul(self, other)
    Tensor.__rmul__ = lambda self, other: mul(other, self)
    Tensor.__truediv__ = lambda self, other: div(self, other)
    Tensor.__rtruediv__ = lambda self, other: div(other, self)
    Tensor.__neg__ = lambda self: neg(self)
    Tensor.__pow__ = lambda self, exponent: pow(self, exponent)
    Tensor.__matmul__ = lambda self, other: matmul(self, other)
    Tensor.__getitem__ = lambda self, index: getitem(self, index)
    Tensor.sum = lambda self, axis=None, keepdims=False: sum(self, axis, keepdims)
    Tensor.mean = lambda self, axis=None, keepdims=False: mean(self, axis, keepdims)
    Tensor.reshape = lambda self, *shape: reshape(
        self, shape[0] if len(shape) == 1 and isinstance(shape[0], (tuple, list)) else shape
    )
    Tensor.transpose = lambda self, axes=None: transpose(self, axes)
    Tensor.T = property(lambda self: transpose(self))


_attach_operators()
