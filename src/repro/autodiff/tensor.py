"""Core reverse-mode automatic differentiation tensor.

This module provides the :class:`Tensor` class used throughout the
reproduction in place of a deep-learning framework.  A ``Tensor`` wraps a
``numpy.ndarray`` and records the operations applied to it so that gradients
can be computed by reverse-mode automatic differentiation.

Two properties are essential for reproducing the paper:

* **Higher-order gradients.**  The physics-informed loss (eq. 3 of the paper)
  requires the Laplacian of the network output with respect to its *inputs*,
  and the gradient of that Laplacian with respect to the network
  *parameters*.  The vector-Jacobian products (VJPs) registered by the
  primitive operations are themselves expressed with ``Tensor`` operations,
  so calling :func:`repro.autodiff.grad` with ``create_graph=True`` builds a
  differentiable graph of the backward pass (``double backward``).

* **Graph memory accounting.**  Table 3 of the paper reports device memory
  consumed by the autograd graph with and without the PDE loss.  The
  :class:`GraphMemoryTracker` context manager records the bytes of every
  intermediate tensor retained by the graph, which is the CPU analogue of
  that measurement.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "astensor",
    "asarray",
    "is_grad_enabled",
    "no_grad",
    "enable_grad",
    "set_grad_enabled",
    "GraphMemoryTracker",
    "DEFAULT_DTYPE",
]

DEFAULT_DTYPE = np.float64

# ---------------------------------------------------------------------------
# Gradient mode (thread-local)
# ---------------------------------------------------------------------------
#
# The simulated cluster runs every rank in its own thread, and both the
# data-parallel trainer and the distributed predictor toggle gradient
# recording (``no_grad`` during inference, graph-free accumulation during the
# reverse sweep).  The flag is therefore thread-local: one rank entering
# ``no_grad`` must not disable recording for a rank that is mid-backward.


class _GradMode(threading.local):
    enabled: bool = True


_GRAD_MODE = _GradMode()


def is_grad_enabled() -> bool:
    """Return ``True`` if operations are currently being recorded (this thread)."""

    return _GRAD_MODE.enabled


@contextlib.contextmanager
def set_grad_enabled(mode: bool):
    """Context manager that sets gradient recording to ``mode`` for this thread."""

    previous = _GRAD_MODE.enabled
    _GRAD_MODE.enabled = bool(mode)
    try:
        yield
    finally:
        _GRAD_MODE.enabled = previous


def no_grad():
    """Context manager that disables gradient recording."""

    return set_grad_enabled(False)


def enable_grad():
    """Context manager that enables gradient recording."""

    return set_grad_enabled(True)


# ---------------------------------------------------------------------------
# Graph memory tracking (used by the Table 3 reproduction)
# ---------------------------------------------------------------------------


class GraphMemoryTracker:
    """Accumulate the bytes of every tensor recorded on the autodiff graph.

    The tracker is a coarse but faithful analogue of the "maximum memory
    allocated" measurement in Table 3 of the paper: when the PDE loss is
    enabled, the backward-of-backward graph retains far more intermediate
    activations, and the tracked byte count grows accordingly.

    Example
    -------
    >>> from repro.autodiff import Tensor, GraphMemoryTracker
    >>> with GraphMemoryTracker() as tracker:
    ...     x = Tensor([1.0, 2.0], requires_grad=True)
    ...     y = (x * x).sum()
    >>> tracker.graph_bytes > 0
    True
    """

    def __init__(self) -> None:
        self.graph_bytes: int = 0
        self.tensor_count: int = 0

    def record(self, array: np.ndarray) -> None:
        self.graph_bytes += int(array.nbytes)
        self.tensor_count += 1

    def __enter__(self) -> "GraphMemoryTracker":
        _ACTIVE_TRACKERS.append(self)
        return self

    def __exit__(self, *exc) -> None:
        _ACTIVE_TRACKERS.remove(self)


_ACTIVE_TRACKERS: list[GraphMemoryTracker] = []


def _notify_trackers(array: np.ndarray) -> None:
    if _ACTIVE_TRACKERS:
        for tracker in _ACTIVE_TRACKERS:
            tracker.record(array)


# ---------------------------------------------------------------------------
# Tensor
# ---------------------------------------------------------------------------


def asarray(value, dtype=DEFAULT_DTYPE) -> np.ndarray:
    """Convert ``value`` to a numpy array of the library default dtype."""

    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy-backed array that records operations for reverse-mode AD.

    Parameters
    ----------
    data:
        Array-like value.  Converted to ``float64`` by default.
    requires_grad:
        If ``True`` the tensor participates in gradient computation.
    """

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_op_name")

    def __init__(self, data, requires_grad: bool = False, dtype=DEFAULT_DTYPE):
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = np.asarray(data, dtype=dtype)
        self.requires_grad: bool = bool(requires_grad)
        self.grad: "Tensor | None" = None
        # Sequence of (parent_tensor, vjp_callable) pairs.  Empty for leaves.
        self._parents: tuple = ()
        self._op_name: str = "leaf"

    # -- graph construction -------------------------------------------------

    @classmethod
    def _from_op(
        cls,
        data: np.ndarray,
        parents: Sequence[tuple["Tensor", Callable[["Tensor"], "Tensor"]]],
        op_name: str,
    ) -> "Tensor":
        """Create a tensor that is the result of a primitive operation."""

        requires = is_grad_enabled() and any(p.requires_grad for p, _ in parents)
        out = cls.__new__(cls)
        out.data = np.asarray(data, dtype=DEFAULT_DTYPE)
        out.grad = None
        if requires:
            out.requires_grad = True
            out._parents = tuple((p, fn) for p, fn in parents if p.requires_grad)
            out._op_name = op_name
            _notify_trackers(out.data)
        else:
            out.requires_grad = False
            out._parents = ()
            out._op_name = op_name
        return out

    # -- basic introspection -------------------------------------------------

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def is_leaf(self) -> bool:
        return not self._parents

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""

        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""

        out = Tensor.__new__(Tensor)
        out.data = self.data
        out.requires_grad = False
        out.grad = None
        out._parents = ()
        out._op_name = "detach"
        return out

    def copy(self) -> "Tensor":
        """Return a detached copy of this tensor."""

        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        self.grad = None

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grad_part = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=5)}{grad_part})"

    # -- gradient API ---------------------------------------------------------

    def backward(self, grad_output: "Tensor | None" = None) -> None:
        """Backpropagate from this tensor, accumulating ``.grad`` on leaves.

        Equivalent to ``loss.backward()`` in PyTorch.  ``grad_output``
        defaults to a tensor of ones matching this tensor's shape.
        """

        from . import functional

        functional.backward(self, grad_output=grad_output)

    # Arithmetic operators are attached by :mod:`repro.autodiff.ops` at import
    # time to avoid a circular import; see the bottom of that module.


def astensor(value, requires_grad: bool = False) -> Tensor:
    """Convert ``value`` to a :class:`Tensor` (no copy if already a tensor)."""

    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def _iter_graph(root: Tensor) -> Iterable[Tensor]:
    """Yield graph nodes reachable from ``root`` in topological order."""

    seen: set[int] = set()
    order: list[Tensor] = []
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for parent, _ in node._parents:
            if id(parent) not in seen:
                stack.append((parent, False))
    return order
