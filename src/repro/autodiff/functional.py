"""Functional gradient interface: :func:`grad`, :func:`backward`, gradcheck.

The API intentionally mirrors ``torch.autograd``:

* :func:`grad` returns gradients of a scalar (or vector, given
  ``grad_output``) with respect to an explicit list of inputs, optionally
  building a differentiable graph of the backward pass
  (``create_graph=True``) so that second derivatives — required by the PDE
  residual loss — can be taken.
* :func:`backward` accumulates ``.grad`` on leaf tensors, which is what the
  optimizers consume.
* :func:`gradcheck` compares analytic gradients against central finite
  differences and underpins a large part of the test suite.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor, _iter_graph, astensor, no_grad, set_grad_enabled

__all__ = ["grad", "backward", "gradcheck", "jacobian"]


def _ones_like(t: Tensor) -> Tensor:
    return Tensor(np.ones_like(t.data))


def _accumulate_cotangents(
    output: Tensor, grad_output: Tensor, create_graph: bool
) -> dict[int, Tensor]:
    """Run the reverse sweep and return a map ``id(tensor) -> cotangent``."""

    order = list(_iter_graph(output))
    cotangents: dict[int, Tensor] = {id(output): grad_output}

    with set_grad_enabled(create_graph):
        for node in reversed(order):
            cot = cotangents.get(id(node))
            if cot is None:
                continue
            for parent, vjp in node._parents:
                contribution = vjp(cot)
                existing = cotangents.get(id(parent))
                if existing is None:
                    cotangents[id(parent)] = contribution
                else:
                    cotangents[id(parent)] = existing + contribution
    return cotangents


def grad(
    output: Tensor,
    inputs: Sequence[Tensor] | Tensor,
    grad_output: Tensor | None = None,
    create_graph: bool = False,
    allow_unused: bool = True,
) -> list[Tensor]:
    """Compute gradients of ``output`` with respect to ``inputs``.

    Parameters
    ----------
    output:
        Tensor to differentiate.  If it is not a scalar, ``grad_output`` must
        be supplied (the cotangent seeding the reverse sweep).
    inputs:
        Tensor or sequence of tensors to differentiate with respect to.
    grad_output:
        Seed cotangent; defaults to ones.
    create_graph:
        Record the backward computation so the returned gradients are
        themselves differentiable (needed for the Laplacian in the PDE loss).
    allow_unused:
        If ``True`` (default) inputs not reachable from ``output`` receive a
        zero gradient instead of raising.
    """

    single = isinstance(inputs, Tensor)
    input_list = [inputs] if single else list(inputs)
    if grad_output is None:
        if output.size != 1:
            raise ValueError("grad requires grad_output for non-scalar outputs")
        grad_output = _ones_like(output)
    else:
        grad_output = astensor(grad_output)

    cotangents = _accumulate_cotangents(output, grad_output, create_graph)

    results: list[Tensor] = []
    for inp in input_list:
        cot = cotangents.get(id(inp))
        if cot is None:
            if not allow_unused:
                raise RuntimeError("an input tensor was not used in the graph")
            cot = Tensor(np.zeros_like(inp.data))
        results.append(cot)
    return results


def backward(output: Tensor, grad_output: Tensor | None = None) -> None:
    """Accumulate gradients into ``.grad`` of every reachable leaf tensor."""

    if grad_output is None:
        if output.size != 1:
            raise ValueError("backward requires grad_output for non-scalar outputs")
        grad_output = _ones_like(output)
    else:
        grad_output = astensor(grad_output)

    cotangents = _accumulate_cotangents(output, grad_output, create_graph=False)

    order = list(_iter_graph(output))
    for node in order:
        if node.is_leaf and node.requires_grad:
            cot = cotangents.get(id(node))
            if cot is None:
                continue
            if node.grad is None:
                node.grad = Tensor(cot.data.copy())
            else:
                node.grad = Tensor(node.grad.data + cot.data)


def jacobian(fn: Callable[[Tensor], Tensor], x: Tensor) -> np.ndarray:
    """Dense Jacobian of ``fn`` at ``x`` by repeated reverse-mode sweeps.

    Only intended for small problems (tests, verification); shape is
    ``(output_size, input_size)``.
    """

    x = astensor(x)
    x_var = Tensor(x.data, requires_grad=True)
    y = fn(x_var)
    out_size, in_size = y.size, x_var.size
    result = np.zeros((out_size, in_size))
    flat_shape = y.shape
    for i in range(out_size):
        seed = np.zeros(out_size)
        seed[i] = 1.0
        (gx,) = grad(y, [x_var], grad_output=Tensor(seed.reshape(flat_shape)))
        result[i, :] = gx.data.reshape(-1)
    return result


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> bool:
    """Verify reverse-mode gradients of a scalar-valued ``fn`` numerically.

    ``fn`` receives the tensors in ``inputs`` and must return a scalar
    tensor.  Central finite differences are compared against the analytic
    gradient for every element of every input.  Raises ``AssertionError``
    with a diagnostic message on mismatch, returns ``True`` otherwise.
    """

    inputs = [astensor(t) for t in inputs]
    var_inputs = [Tensor(t.data.copy(), requires_grad=True) for t in inputs]
    output = fn(*var_inputs)
    if output.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    analytic = grad(output, var_inputs)

    for idx, inp in enumerate(var_inputs):
        numeric = np.zeros_like(inp.data)
        flat = inp.data.reshape(-1)
        numeric_flat = numeric.reshape(-1)
        for j in range(flat.size):
            original = flat[j]
            flat[j] = original + eps
            with no_grad():
                f_plus = fn(*var_inputs).item()
            flat[j] = original - eps
            with no_grad():
                f_minus = fn(*var_inputs).item()
            flat[j] = original
            numeric_flat[j] = (f_plus - f_minus) / (2.0 * eps)
        if not np.allclose(analytic[idx].data, numeric, rtol=rtol, atol=atol):
            max_err = np.max(np.abs(analytic[idx].data - numeric))
            raise AssertionError(
                f"gradcheck failed for input {idx}: max abs error {max_err:.3e}"
            )
    return True
