"""Strong and weak scaling predictions for the distributed MFP (Section 4.3).

The per-iteration cost of the distributed Mosaic Flow predictor on ``P``
processors is modelled as

    C_comp = c * (d N)^2 / (m^2 P)
    C_comm = 8 I alpha + I * 16 N d / (sqrt(P) beta)

where ``N`` is the global resolution per side, ``m`` the subdomain
resolution, ``d`` the subdomain placement density (2 in this work), ``c`` the
cost of one SDNet inference, and ``alpha`` / ``beta`` the network latency and
bandwidth.  These closed forms, calibrated either from the GPU model or from
a measured single-process run, regenerate the strong-scaling (Figure 9a) and
weak-scaling (Figure 9b) curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..distributed.costmodel import AlphaBetaModel
from .gpu import GPUSpec, inference_time, model_inference_flops

__all__ = ["MFPCostModel", "ScalingPoint", "strong_scaling_curve", "weak_scaling_curve"]


@dataclass(frozen=True)
class MFPCostModel:
    """Cost model of one distributed-MFP configuration.

    Parameters
    ----------
    subdomain_resolution:
        Grid points per subdomain side (``m``).
    density:
        Subdomain placement density ``d`` (2 = anchors every half subdomain).
    per_subdomain_inference_seconds:
        Calibrated cost ``c`` of one subdomain inference (seconds).
    network:
        Alpha-beta model of the interconnect.
    """

    subdomain_resolution: int
    density: int
    per_subdomain_inference_seconds: float
    network: AlphaBetaModel

    @classmethod
    def from_gpu(
        cls,
        gpu: GPUSpec,
        network: AlphaBetaModel,
        boundary_size: int,
        hidden: int,
        trunk_layers: int,
        subdomain_resolution: int,
        density: int = 2,
        efficiency: float = 0.5,
    ) -> "MFPCostModel":
        """Calibrate the per-subdomain inference cost from the GPU model."""

        points = 2 * subdomain_resolution - 1  # the two centre lines
        flops = model_inference_flops(boundary_size, hidden, trunk_layers, points)
        return cls(
            subdomain_resolution=subdomain_resolution,
            density=density,
            per_subdomain_inference_seconds=inference_time(flops, gpu, efficiency),
            network=network,
        )

    # -- per-iteration costs -------------------------------------------------------

    def subdomains_per_processor(self, resolution: int, world_size: int) -> float:
        """``(d N)^2 / (m^2 P)`` subdomains assigned to each processor."""

        return (self.density * resolution) ** 2 / (
            self.subdomain_resolution ** 2 * world_size
        )

    def computation_time(self, resolution: int, world_size: int, iterations: int) -> float:
        per_iteration = (
            self.per_subdomain_inference_seconds
            * self.subdomains_per_processor(resolution, world_size)
        )
        return iterations * per_iteration

    def communication_time(self, resolution: int, world_size: int, iterations: int) -> float:
        if world_size <= 1:
            return 0.0
        latency = 8.0 * iterations * self.network.alpha
        words = iterations * 16.0 * resolution * self.density / math.sqrt(world_size)
        return latency + words * 8.0 / self.network.beta

    def allgather_time(self, resolution: int, world_size: int) -> float:
        """Final solution assembly: every rank contributes its block (8-byte words)."""

        if world_size <= 1:
            return 0.0
        block_bytes = 8.0 * resolution * resolution / world_size
        return self.network.ring_allgather(block_bytes, world_size)

    def total_time(self, resolution: int, world_size: int, iterations: int) -> dict[str, float]:
        comp = self.computation_time(resolution, world_size, iterations)
        comm = self.communication_time(resolution, world_size, iterations)
        gather = self.allgather_time(resolution, world_size)
        return {
            "computation": comp,
            "sendrecv": comm,
            "allgather": gather,
            "total": comp + comm + gather,
        }


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a scaling curve."""

    world_size: int
    resolution: int
    iterations: int
    computation: float
    sendrecv: float
    allgather: float

    @property
    def total(self) -> float:
        return self.computation + self.sendrecv + self.allgather

    @property
    def communication_fraction(self) -> float:
        total = self.total
        return (self.sendrecv + self.allgather) / total if total > 0 else 0.0


def strong_scaling_curve(
    model: MFPCostModel,
    resolution: int,
    world_sizes: list[int],
    iterations_per_world_size: dict[int, int] | int,
) -> list[ScalingPoint]:
    """Predicted strong-scaling curve (fixed problem, growing processor count)."""

    points = []
    for world_size in world_sizes:
        iterations = (
            iterations_per_world_size
            if isinstance(iterations_per_world_size, int)
            else iterations_per_world_size[world_size]
        )
        breakdown = model.total_time(resolution, world_size, iterations)
        points.append(
            ScalingPoint(
                world_size=world_size,
                resolution=resolution,
                iterations=iterations,
                computation=breakdown["computation"],
                sendrecv=breakdown["sendrecv"],
                allgather=breakdown["allgather"],
            )
        )
    return points


def weak_scaling_curve(
    model: MFPCostModel,
    per_processor_resolution: tuple[int, int],
    world_sizes: list[int],
    iterations: int,
) -> list[ScalingPoint]:
    """Predicted weak-scaling curve (fixed work per processor).

    ``per_processor_resolution`` is the ``(rows, cols)`` resolution owned by
    each processor; the global resolution grows with the processor grid.
    """

    rows, cols = per_processor_resolution
    points = []
    for world_size in world_sizes:
        grid_rows = int(math.floor(math.sqrt(world_size)))
        while world_size % grid_rows:
            grid_rows -= 1
        grid_cols = world_size // grid_rows
        global_resolution = int(math.sqrt(rows * grid_rows * cols * grid_cols))
        breakdown = model.total_time(global_resolution, world_size, iterations)
        points.append(
            ScalingPoint(
                world_size=world_size,
                resolution=global_resolution,
                iterations=iterations,
                computation=breakdown["computation"],
                sendrecv=breakdown["sendrecv"],
                allgather=breakdown["allgather"],
            )
        )
    return points
