"""GPU platform models (Table 2 of the paper) and inference cost estimates.

The reproduction runs on CPU, so absolute wall-clock numbers cannot match the
paper's A30/V100/A100 measurements.  To regenerate the *shape* of the
performance figures, the benchmarks combine

* algorithmic counts measured from the actual implementation (subdomains
  solved, points predicted, floating point operations), with
* the platform models defined here (peak rates and memory capacities taken
  from Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "GPUSpec",
    "GPU_SPECS",
    "sdnet_first_layer_flops",
    "concat_first_layer_flops",
    "mlp_trunk_flops",
    "model_inference_flops",
    "inference_time",
]


@dataclass(frozen=True)
class GPUSpec:
    """Hardware characteristics of one evaluation platform (Table 2)."""

    name: str
    peak_fp32_tflops: float
    memory_gb: float
    memory_bandwidth_gbs: float
    intranode_interconnect_gbs: float
    gpus_per_node: int

    @property
    def peak_flops(self) -> float:
        return self.peak_fp32_tflops * 1e12

    @property
    def memory_bytes(self) -> float:
        return self.memory_gb * 1024 ** 3


#: the three evaluation platforms of Table 2
GPU_SPECS: dict[str, GPUSpec] = {
    "V100": GPUSpec("V100", peak_fp32_tflops=14.0, memory_gb=16.0,
                    memory_bandwidth_gbs=900.0, intranode_interconnect_gbs=32.0,
                    gpus_per_node=4),
    "A30": GPUSpec("A30", peak_fp32_tflops=10.3, memory_gb=24.0,
                   memory_bandwidth_gbs=933.0, intranode_interconnect_gbs=200.0,
                   gpus_per_node=4),
    "A100": GPUSpec("A100", peak_fp32_tflops=19.5, memory_gb=80.0,
                    memory_bandwidth_gbs=2000.0, intranode_interconnect_gbs=600.0,
                    gpus_per_node=2),
}


# ---------------------------------------------------------------------------
# FLOP counts (Section 3.2 cost analysis)
# ---------------------------------------------------------------------------


def sdnet_first_layer_flops(boundary_size: int, hidden: int, q_points: int) -> float:
    """First-layer cost of the split-layer network: ``O(N d + q d)``."""

    return 2.0 * (boundary_size * hidden + q_points * hidden)


def concat_first_layer_flops(boundary_size: int, hidden: int, q_points: int) -> float:
    """First-layer cost of the input-concat baseline: ``O(q N d)``."""

    return 2.0 * q_points * (boundary_size + 2) * hidden


def mlp_trunk_flops(hidden: int, layers: int, q_points: int) -> float:
    """Trunk cost: ``layers`` dense layers of width ``hidden`` per query point."""

    return 2.0 * q_points * layers * hidden * hidden


def model_inference_flops(
    boundary_size: int,
    hidden: int,
    trunk_layers: int,
    q_points: int,
    architecture: str = "split",
) -> float:
    """Total FLOPs for one inference over ``q_points`` query points."""

    if architecture == "split":
        first = sdnet_first_layer_flops(boundary_size, hidden, q_points)
    elif architecture == "concat":
        first = concat_first_layer_flops(boundary_size, hidden, q_points)
    else:
        raise ValueError("architecture must be 'split' or 'concat'")
    return first + mlp_trunk_flops(hidden, trunk_layers, q_points)


def inference_time(flops: float, gpu: GPUSpec, efficiency: float = 0.5) -> float:
    """Estimated inference time on ``gpu`` at a given fraction of peak.

    The paper reports batched MFP inference reaching roughly 50 % of peak
    (Section 5.3), which is the default efficiency.
    """

    if not 0.0 < efficiency <= 1.0:
        raise ValueError("efficiency must be in (0, 1]")
    return flops / (gpu.peak_flops * efficiency)
