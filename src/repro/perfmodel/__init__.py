"""Performance models: GPU platforms (Table 2) and scaling predictions (Section 4.3)."""

from .gpu import (
    GPU_SPECS,
    GPUSpec,
    concat_first_layer_flops,
    inference_time,
    mlp_trunk_flops,
    model_inference_flops,
    sdnet_first_layer_flops,
)
from .scaling import MFPCostModel, ScalingPoint, strong_scaling_curve, weak_scaling_curve

__all__ = [
    "GPUSpec",
    "GPU_SPECS",
    "sdnet_first_layer_flops",
    "concat_first_layer_flops",
    "mlp_trunk_flops",
    "model_inference_flops",
    "inference_time",
    "MFPCostModel",
    "ScalingPoint",
    "strong_scaling_curve",
    "weak_scaling_curve",
]
