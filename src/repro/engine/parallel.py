"""Parallel execution of independent plan regions on a shared thread pool.

An optimized :class:`~repro.engine.graph.Graph` is a topologically ordered
step list, but its dependency structure is rarely a chain: the SDNet split
architecture, for example, runs a boundary branch and a trunk branch that
only meet at the final combine.  :func:`schedule_waves` recovers that
structure as dependency *levels* — the level of a node is one more than the
maximum level of its inputs, so two nodes on the same level cannot have a
path between them and may execute concurrently.

:class:`ParallelExecutionPlan` is a drop-in
:class:`~repro.engine.runtime.ExecutionPlan` that walks the wave schedule
instead of the flat step list.  Inside a wave, steps whose output is large
enough to amortize dispatch (``offload_bytes``) are submitted to a shared
process-wide thread pool while the submitting thread runs the remaining
steps inline.  The heavy kernels are numpy BLAS/ufunc calls that release the
GIL, so waves with several big independent steps overlap on real cores.

Bitwise safety: every kernel writes only into its own preallocated ``out=``
buffer (views — reshape/transpose — are read-only on their input), so steps
of one wave touch disjoint memory and the per-step floating-point math is
the exact sequential kernel.  Execution order *between* dependent steps is
unchanged (waves are a topological refinement), hence outputs are bitwise
identical to the sequential plan — enforced by the parity tests in
``tests/engine/test_parallel.py``.

Like every plan, a parallel plan is single-owner: the worker threads of the
shared pool only ever run individual steps handed to them, they never call
``run`` themselves, so the one-plan-per-thread ownership contract of
:class:`ExecutionPlan` is unaffected.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

from .graph import Graph
from .runtime import ExecutionPlan

__all__ = ["OFFLOAD_BYTES", "schedule_waves", "ParallelExecutionPlan"]

#: Minimum step output size (bytes) worth handing to the pool; below this
#: the submit/wakeup overhead exceeds the kernel itself.
OFFLOAD_BYTES = 64 * 1024

_pool: ThreadPoolExecutor | None = None
_pool_lock = threading.Lock()


def _shared_pool() -> ThreadPoolExecutor:
    """The process-wide kernel pool, created lazily on first parallel run."""

    global _pool
    if _pool is None:
        with _pool_lock:
            if _pool is None:
                _pool = ThreadPoolExecutor(
                    max_workers=max(2, min(8, os.cpu_count() or 2)),
                    thread_name_prefix="engine-wave",
                )
    return _pool


def schedule_waves(graph: Graph) -> list[list[int]]:
    """Partition a graph's compute steps into dependency levels (waves).

    Returns a list of waves in execution order; each wave lists *step
    indices* — the position of the node among the graph's executable
    (non-placeholder, non-constant) nodes, i.e. indices into an
    :class:`ExecutionPlan`'s step list.  Steps sharing a wave have no
    dependency path between them: a path strictly increases the level.
    Within a wave, indices keep graph order, so running every wave's steps
    in order degenerates to exactly the sequential schedule.
    """

    level: dict[int, int] = {}
    waves: dict[int, list[int]] = {}
    step_index = 0
    for node in graph:
        if node.is_placeholder or node.is_constant:
            level[node.id] = 0
            continue
        depth = 1 + max((level[i] for i in node.inputs), default=0)
        level[node.id] = depth
        waves.setdefault(depth, []).append(step_index)
        step_index += 1
    return [waves[depth] for depth in sorted(waves)]


class ParallelExecutionPlan(ExecutionPlan):
    """An :class:`ExecutionPlan` that overlaps independent steps of a wave.

    Parameters
    ----------
    graph, profiler:
        As for :class:`ExecutionPlan`.  A profiled plan runs sequentially —
        per-step wall-clock attribution is meaningless with overlap and the
        profiler's recorder is not re-entrant — so ``profile=True`` simply
        opts out of the overlap, never changes results.
    offload_bytes:
        Steps whose output buffer is at least this large go to the shared
        pool when their wave holds two or more of them; everything else runs
        inline on the calling thread.
    """

    def __init__(self, graph: Graph, profiler=None, offload_bytes: int = OFFLOAD_BYTES):
        super().__init__(graph, profiler=profiler)
        self._waves = schedule_waves(graph)
        self._offload = [
            nbytes >= offload_bytes for (_op, nbytes) in self._step_info
        ]
        self.offloaded_steps = sum(self._offload)

    @property
    def waves(self) -> list[list[int]]:
        """The wave schedule (step indices per dependency level)."""

        return [list(wave) for wave in self._waves]

    def run(self, arrays: list) -> list:
        """Execute the plan wave by wave; returns may alias plan buffers."""

        if self._profiler is not None:
            return super().run(arrays)
        self._claim_owner()
        slots = self._slots
        for slot, array in zip(self._input_slots, arrays):
            slots[slot] = array
        steps = self._steps
        offload = self._offload
        for wave in self._waves:
            big = [i for i in wave if offload[i]]
            if len(big) < 2:
                for i in wave:
                    steps[i](slots)
                continue
            # Overlap: big steps (minus one kept for this thread) go to the
            # pool; the small steps and the kept big step run inline.
            pool = _shared_pool()
            futures = [pool.submit(steps[i], slots) for i in big[1:]]
            error = None
            try:
                for i in wave:
                    if not offload[i]:
                        steps[i](slots)
                steps[big[0]](slots)
            except Exception as exc:  # keep the pool drained before raising
                error = exc
            for future in futures:
                try:
                    future.result()
                except Exception as exc:
                    if error is None:
                        error = exc
            if error is not None:
                raise error
        return [slots[slot] for slot in self._output_slots]
