"""Tracing front-end: record one eager forward pass as a static graph.

The eager stack funnels every tensor operation through the primitive
functions of :mod:`repro.autodiff.ops` — module code calls ``ops.matmul``
etc., and the ``Tensor`` operator overloads are lambdas that resolve the
``ops`` module globals *at call time*.  The tracer exploits this single
choke point: while a trace is active it swaps each primitive for a thin
wrapper that first runs the original computation and then records the call
(output tensor, operand tensors, non-tensor attributes) into a
:class:`~repro.engine.graph.Graph`.

Properties of this design:

* **Composite ops decompose for free.**  Only genuine primitives are
  patched; ``ops.mean``/``ops.sqrt``/``ops.stack``/``ops.swapaxes`` call
  patched primitives internally, so the graph always contains primitive
  nodes and never double-records.
* **Thread safety.**  The wrappers dispatch through a *thread-local*
  active-tracer slot: concurrent traces on different threads record into
  their own graphs, and eager calls on threads with no active tracer run
  the original primitive with one attribute lookup of overhead.  The patch
  itself is installed/removed under a lock with reference counting, so the
  steady state (no live tracer anywhere) has zero overhead.
* **Shape specialization.**  Recorded attributes (reshape targets, gather
  index arrays, broadcast shapes) are concrete, so a trace is valid exactly
  for the input shapes it was taken with — the runtime re-traces per shape
  signature (see :class:`~repro.engine.runtime.CompiledModule`).

Tracing runs under ``no_grad`` — inference graphs never need the autodiff
tape — and value-dependent Python control flow in the traced module is baked
in at trace time (the standard tracing-JIT caveat; the models in this
reproduction only branch on shapes, which the signature cache accounts for).
"""

from __future__ import annotations

import contextlib
import threading

import numpy as np

from ..autodiff import ops
from ..autodiff.tensor import DEFAULT_DTYPE, Tensor, astensor, enable_grad, no_grad
from ..nn.module import Module
from .graph import Graph

__all__ = ["TraceError", "trace", "trace_program"]


class TraceError(RuntimeError):
    """Raised when a forward pass cannot be recorded as a static graph."""


# ---------------------------------------------------------------------------
# Primitive signatures
# ---------------------------------------------------------------------------
#
# For every patched primitive: the ordered argument spec, each entry either
# ("t", name) for a tensor operand or ("a", name, default) for a non-tensor
# attribute.  ``concatenate`` takes a *list* of tensors and is special-cased.

_T = "t"
_A = "a"

_PRIMITIVE_SPECS: dict[str, tuple] = {
    # elementwise binary
    "add": ((_T, "a"), (_T, "b")),
    "sub": ((_T, "a"), (_T, "b")),
    "mul": ((_T, "a"), (_T, "b")),
    "div": ((_T, "a"), (_T, "b")),
    # elementwise unary
    "neg": ((_T, "a"),),
    "exp": ((_T, "a"),),
    "log": ((_T, "a"),),
    "tanh": ((_T, "a"),),
    "erf": ((_T, "a"),),
    "sin": ((_T, "a"),),
    "cos": ((_T, "a"),),
    "abs": ((_T, "a"),),
    "maximum_zero": ((_T, "a"),),
    "pow": ((_T, "a"), (_A, "exponent", None)),
    "clip": ((_T, "a"), (_A, "low", None), (_A, "high", None)),
    "where_mask": ((_A, "mask", None), (_T, "a"), (_T, "b")),
    # linear algebra / reductions
    "matmul": ((_T, "a"), (_T, "b")),
    "sum": ((_T, "a"), (_A, "axis", None), (_A, "keepdims", False)),
    # shape manipulation
    "reshape": ((_T, "a"), (_A, "shape", None)),
    "transpose": ((_T, "a"), (_A, "axes", None)),
    "broadcast_to": ((_T, "a"), (_A, "shape", None)),
    "pad": ((_T, "a"), (_A, "pad_width", None)),
    # indexing
    "getitem": ((_T, "a"), (_A, "index", None)),
    "scatter_add": ((_T, "g"), (_A, "index", None), (_A, "shape", None)),
}


def _bind(spec: tuple, args: tuple, kwargs: dict):
    """Split a primitive call's arguments into (tensor operands, attrs)."""

    tensors, attrs = [], {}
    for position, entry in enumerate(spec):
        if position < len(args):
            value = args[position]
        else:
            name = entry[1]
            if name in kwargs:
                value = kwargs[name]
            elif entry[0] == _A:
                value = entry[2]
            else:  # pragma: no cover - primitives always receive operands
                raise TraceError(f"missing tensor operand {name!r}")
        if entry[0] == _T:
            tensors.append(value)
        else:
            attrs[entry[1]] = value
    return tensors, attrs


# ---------------------------------------------------------------------------
# Patch management (process-global, reference counted, thread-local dispatch)
# ---------------------------------------------------------------------------

_PATCH_LOCK = threading.Lock()
_INSTALL_COUNT = 0
_ORIGINALS: dict[str, object] = {}
_TLS = threading.local()


def _current_tracer():
    return getattr(_TLS, "tracer", None)


def _make_wrapper(name: str, original, spec):
    if name == "concatenate":

        def wrapper(tensors, axis: int = 0):
            out = original(tensors, axis=axis)
            tracer = _current_tracer()
            if tracer is not None:
                # Record the normalized axis and per-operand extents so the
                # buffered kernel can precompute its copy slices.
                norm_axis = axis % out.data.ndim
                sizes = tuple(
                    np.shape(t.data if isinstance(t, Tensor) else t)[norm_axis]
                    for t in tensors
                )
                tracer.record(
                    name, out, list(tensors), {"axis": norm_axis, "sizes": sizes}
                )
            return out

    else:

        def wrapper(*args, **kwargs):
            out = original(*args, **kwargs)
            tracer = _current_tracer()
            if tracer is not None:
                tensors, attrs = _bind(spec, args, kwargs)
                tracer.record(name, out, tensors, attrs)
            return out

    wrapper.__name__ = name
    wrapper.__wrapped__ = original  # type: ignore[attr-defined]
    return wrapper


def _install_patch() -> None:
    global _INSTALL_COUNT
    with _PATCH_LOCK:
        if _INSTALL_COUNT == 0:
            for name in list(_PRIMITIVE_SPECS) + ["concatenate"]:
                original = getattr(ops, name)
                _ORIGINALS[name] = original
                setattr(
                    ops, name, _make_wrapper(name, original, _PRIMITIVE_SPECS.get(name))
                )
        _INSTALL_COUNT += 1


def _remove_patch() -> None:
    global _INSTALL_COUNT
    with _PATCH_LOCK:
        _INSTALL_COUNT -= 1
        if _INSTALL_COUNT == 0:
            for name, original in _ORIGINALS.items():
                setattr(ops, name, original)
            _ORIGINALS.clear()


@contextlib.contextmanager
def _active(tracer: "_Tracer"):
    if _current_tracer() is not None:
        raise TraceError("traces cannot nest on one thread")
    _install_patch()
    _TLS.tracer = tracer
    try:
        yield
    finally:
        _TLS.tracer = None
        _remove_patch()


# ---------------------------------------------------------------------------
# The tracer
# ---------------------------------------------------------------------------


class _Tracer:
    """Builds a :class:`Graph` from the primitive calls of one forward pass."""

    def __init__(self, graph: Graph, param_names: dict[int, str]):
        self.graph = graph
        self.param_names = param_names
        # id(Tensor) -> node id; keepalive pins the tensors so CPython cannot
        # recycle an id mid-trace.
        self._tensor_nodes: dict[int, int] = {}
        self._keepalive: list[Tensor] = []

    # -- node lookup / creation -------------------------------------------------

    def register(self, tensor: Tensor, node_id: int) -> None:
        self._tensor_nodes[id(tensor)] = node_id
        self._keepalive.append(tensor)

    def node_for(self, value) -> int:
        """Node id of an operand, lifting unseen values to constants.

        Eager primitives convert non-tensor operands with
        ``astensor``/``np.asarray(..., float64)``; the lifted constant stores
        the *same* converted array so the compiled call replays identical
        operand values.  Tensors that are module parameters keep a reference
        to the parameter's storage (no copy) and record its qualified name.
        """

        if isinstance(value, Tensor):
            node_id = self._tensor_nodes.get(id(value))
            if node_id is not None:
                return node_id
            data = value.data
            param = self.param_names.get(id(value))
        else:
            data = np.asarray(value, dtype=DEFAULT_DTYPE)
            param = None
        node = self.graph.add_node(
            "constant", shape=data.shape, dtype=data.dtype, value=data, param=param
        )
        if isinstance(value, Tensor):
            self.register(value, node.id)
        return node.id

    # -- recording --------------------------------------------------------------

    def record(self, op: str, out: Tensor, tensor_args: list, attrs: dict) -> None:
        inputs = [self.node_for(t) for t in tensor_args]
        if op == "getitem" and _index_contains_tensor(attrs.get("index")):
            raise TraceError(
                "getitem with Tensor-valued indices cannot be traced; "
                "index with numpy arrays or slices"
            )
        node = self.graph.add_node(
            op, inputs=inputs, attrs=attrs, shape=out.shape, dtype=out.dtype
        )
        self.register(out, node.id)


def _index_contains_tensor(index) -> bool:
    entries = index if isinstance(index, tuple) else (index,)
    return any(isinstance(entry, Tensor) for entry in entries)


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------


def trace(module: Module, *example_inputs) -> Graph:
    """Record one forward pass of ``module`` as a static operator graph.

    Parameters
    ----------
    module:
        Any :class:`~repro.nn.module.Module` (SDNet, MLP, the concat
        baseline, ...).  Its ``forward`` is executed once, eagerly, under
        ``no_grad``.
    example_inputs:
        Call arguments (arrays or tensors).  The resulting graph is
        specialized to these input *shapes*; re-trace for new shapes.

    Returns
    -------
    A validated :class:`~repro.engine.graph.Graph` whose placeholders match
    ``example_inputs`` in order and whose outputs are the traced call's
    results.

    Raises
    ------
    TraceError
        If the forward pass produces something that is not a ``Tensor`` (or
        tuple of tensors), or performs an operation the tracer cannot record.
    """

    return trace_program(module, example_inputs, params=module)


def trace_program(fn, example_inputs, params=None, grad: bool = False) -> Graph:
    """Record one call of an arbitrary callable as a static operator graph.

    This is the general entry point behind :func:`trace`: ``fn`` may be any
    Python callable over tensors — a module, a closure computing a loss, or
    a function that *itself runs a reverse-mode sweep*.  Because the VJPs of
    every primitive in :mod:`repro.autodiff.ops` are expressed in terms of
    other primitives, running :func:`repro.autodiff.grad` inside ``fn``
    records the entire backward pass into the same graph, which is how the
    engine compiles training-time loss-and-gradient programs (see
    :mod:`repro.engine.jet`).

    Parameters
    ----------
    fn:
        Callable invoked as ``fn(*inputs)``; must return a ``Tensor`` or a
        tuple of tensors.
    example_inputs:
        Sequence of call arguments (arrays or tensors).  The graph is
        specialized to these input *shapes*.
    params:
        A :class:`~repro.nn.module.Module` whose parameters should be
        labeled in the graph, or a mapping ``name -> Tensor``.  Captured
        parameter constants alias the parameter storage, so in-place
        parameter updates flow into the compiled graph.
    grad:
        When ``True`` the call runs with gradient recording *enabled* so a
        reverse sweep inside ``fn`` has a tape to walk; the default replays
        the inference behaviour of :func:`trace` (``no_grad``).
    """

    inputs = [astensor(x) for x in example_inputs]
    graph = Graph()
    param_names: dict[int, str] = {}
    if isinstance(params, Module):
        param_names = {id(param): name for name, param in params.named_parameters()}
    elif params:
        param_names = {id(astensor(tensor)): name for name, tensor in dict(params).items()}
    tracer = _Tracer(graph, param_names)
    for tensor in inputs:
        node = graph.add_node("placeholder", shape=tensor.shape, dtype=tensor.dtype)
        graph.inputs.append(node.id)
        tracer.register(tensor, node.id)

    grad_mode = enable_grad if grad else no_grad
    with _active(tracer), grad_mode():
        result = fn(*inputs)

    outputs = result if isinstance(result, tuple) else (result,)
    for out in outputs:
        if not isinstance(out, Tensor):
            raise TraceError(
                f"traced program returned {type(out).__name__}; only Tensor "
                "outputs can be compiled"
            )
        graph.outputs.append(tracer.node_for(out))
    graph.validate()
    return graph
