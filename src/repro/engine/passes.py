"""Compiler passes over the static operator graph.

The default pipeline (:data:`DEFAULT_PASSES`) applied by
:func:`~repro.engine.runtime.compile_module` is:

1. :func:`fold_constants` — evaluate every node whose operands are all
   constants once at compile time.  This freezes the weight-preprocessing
   chains of the models (``transpose(W)`` of every linear layer, the im2col
   weight reshape of the boundary convolutions), which eager mode recomputes
   on every call.  Folding runs the *eager* numpy expressions via
   :func:`~repro.engine.kernels.evaluate_node`, so folded values — often
   views of the parameter storage — are bitwise and layout identical to
   what eager mode produces.
2. :func:`lower_gathers` — rewrite advanced-indexing gathers along one axis
   (the conv ``im2col`` pattern ``x[:, :, index]``) into a ``take`` node
   backed by a preallocated flat buffer.
3. :func:`fuse_elementwise` — pattern-match elementwise chains into single
   fused kernels using the rules in :data:`FUSION_RULES`: the five-node
   erf-GELU chain becomes one ``gelu`` node, ``matmul`` + bias-``add``
   becomes ``affine``, and an ``affine`` feeding a ``gelu``/``tanh``
   exclusively becomes ``affine_gelu``/``affine_tanh``.  Fusion never
   reorders floating-point math — the fused kernels replay the identical
   ufunc sequence — so outputs stay bitwise equal to eager.
4. :func:`eliminate_dead_code` — drop every node (folded-over weights,
   absorbed chain links) that no output depends on.

Adding a new fusion rule
------------------------
Create a :class:`FusionRule` whose matcher inspects a candidate root node
and returns the fused replacement, then register it::

    def match_double(graph, node, consumers):
        # x + x  ->  scale(x, 2)   (illustrative only)
        a, b = node.inputs
        if a == b:
            return dict(op="scale", inputs=(a,), attrs={"factor": 2.0},
                        absorbed=[])
        return None

    register_fusion_rule(FusionRule("double-add", root_ops=("add",),
                                    matcher=match_double))

and add a matching kernel in :mod:`repro.engine.kernels` (``build_step`` and
``evaluate_node``).  Matchers must only absorb nodes that are consumed
exclusively inside the matched set (check ``consumers``); the replacement
keeps the root node's id, shape and dtype.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .graph import Graph, Node
from .kernels import evaluate_node

__all__ = [
    "FusionRule",
    "FUSION_RULES",
    "register_fusion_rule",
    "fold_constants",
    "lower_gathers",
    "fuse_elementwise",
    "eliminate_dead_code",
    "DEFAULT_PASSES",
    "optimize",
]


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------


def fold_constants(graph: Graph) -> Graph:
    """Evaluate nodes whose operands are all constants; freeze the results.

    Folding happens in topological order, so whole constant subgraphs (e.g.
    ``reshape(transpose(W))``) collapse in one pass.  The computed values may
    alias parameter storage (views), exactly as the eager ops would produce.
    """

    for node in graph.nodes():
        if node.is_constant or node.is_placeholder:
            continue
        parents = [graph.node(i) for i in node.inputs]
        if parents and all(p.is_constant for p in parents):
            value = evaluate_node(node, [p.value for p in parents])
            value = np.asarray(value)
            graph.replace_node(
                node.id, op="constant", inputs=(), attrs={}, value=value,
                shape=value.shape, dtype=value.dtype,
            )
    return graph


# ---------------------------------------------------------------------------
# Gather lowering
# ---------------------------------------------------------------------------


def lower_gathers(graph: Graph) -> Graph:
    """Rewrite one-axis advanced gathers into buffered ``take`` nodes.

    Matches ``getitem`` nodes whose index is a tuple of full slices followed
    by one integer index array in the final position (the conv ``im2col``
    pattern).  ``np.take`` along that axis with the flattened index selects
    the same elements, runs into a preallocated buffer, and the multi-dim
    index shape is restored with a free reshape view.
    """

    for node in graph.nodes():
        if node.op != "getitem":
            continue
        index = node.attrs.get("index")
        if not isinstance(index, tuple) or not index:
            continue
        *leading, last = index
        if not isinstance(last, np.ndarray) or last.dtype.kind not in "iu":
            continue
        if not all(
            isinstance(entry, slice) and entry == slice(None) for entry in leading
        ):
            continue
        source = graph.node(node.inputs[0])
        axis = len(index) - 1
        if axis >= len(source.shape):
            continue
        flat = np.ascontiguousarray(last.reshape(-1))
        flat_shape = (
            tuple(source.shape[:axis]) + (flat.size,) + tuple(source.shape[axis + 1:])
        )
        graph.replace_node(
            node.id,
            op="take",
            attrs={"axis": axis, "indices": flat, "flat_shape": flat_shape},
        )
    return graph


# ---------------------------------------------------------------------------
# Elementwise fusion
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FusionRule:
    """A pattern-rewrite rule applied by :func:`fuse_elementwise`.

    Attributes
    ----------
    name:
        Human-readable rule name (diagnostics).
    root_ops:
        Op names at which the matcher is attempted (the *last* node of the
        pattern, whose id/shape the fused node inherits).
    matcher:
        ``matcher(graph, root_node, consumers) -> dict | None`` returning
        ``{"op", "inputs", "attrs", "absorbed"}`` for a match.  ``consumers``
        maps node id to its total consumer count (outputs included); every
        absorbed node must be consumed only within the matched set.
    """

    name: str
    root_ops: tuple[str, ...]
    matcher: Callable[[Graph, Node, dict], dict | None]


def _const_scalar(graph: Graph, node_id: int) -> float | None:
    node = graph.node(node_id)
    if node.is_constant and node.value is not None and node.value.ndim == 0:
        return float(node.value)
    return None


def _match_gelu(graph: Graph, root: Node, consumers: dict) -> dict | None:
    """``x * (c2 * (c1 + erf(x / c0)))`` — the eager erf-GELU chain."""

    x_id, outer_id = root.inputs
    outer = graph.node(outer_id)
    if outer.op != "mul" or consumers[outer.id] != 1:
        return None
    c2 = _const_scalar(graph, outer.inputs[0])
    if c2 is None:
        return None
    inner = graph.node(outer.inputs[1])
    if inner.op != "add" or consumers[inner.id] != 1:
        return None
    c1 = _const_scalar(graph, inner.inputs[0])
    if c1 is None:
        return None
    erf_node = graph.node(inner.inputs[1])
    if erf_node.op != "erf" or consumers[erf_node.id] != 1:
        return None
    div_node = graph.node(erf_node.inputs[0])
    if div_node.op != "div" or consumers[div_node.id] != 1:
        return None
    if div_node.inputs[0] != x_id:
        return None
    c0 = _const_scalar(graph, div_node.inputs[1])
    if c0 is None:
        return None
    return {
        "op": "gelu",
        "inputs": (x_id,),
        "attrs": {"div_const": c0, "add_const": c1, "mul_const": c2},
        "absorbed": [outer.id, inner.id, erf_node.id, div_node.id],
    }


def _match_affine(graph: Graph, root: Node, consumers: dict) -> dict | None:
    """``matmul(x, W) + bias`` with a constant bias — one BLAS call + in-place add."""

    mm_id, bias_id = root.inputs
    mm = graph.node(mm_id)
    if mm.op != "matmul" or consumers[mm.id] != 1:
        return None
    if not graph.node(bias_id).is_constant:
        return None
    # The fused kernel matmuls straight into the add's output buffer, which
    # is only valid when the bias broadcasts *into* the matmul shape (the
    # Linear-layer case), not when it widens the result.
    if mm.shape != root.shape:
        return None
    return {
        "op": "affine",
        "inputs": (mm.inputs[0], mm.inputs[1], bias_id),
        "attrs": {},
        "absorbed": [mm.id],
    }


def _match_affine_activation(graph: Graph, root: Node, consumers: dict) -> dict | None:
    """An ``affine`` consumed only by a ``gelu``/``tanh`` — one fused kernel."""

    pre = graph.node(root.inputs[0])
    if pre.op != "affine" or consumers[pre.id] != 1:
        return None
    fused_op = "affine_gelu" if root.op == "gelu" else "affine_tanh"
    return {
        "op": fused_op,
        "inputs": pre.inputs,
        "attrs": dict(root.attrs),
        "absorbed": [pre.id],
    }


#: Registered fusion rules, applied in order by :func:`fuse_elementwise`.
FUSION_RULES: list[FusionRule] = [
    FusionRule("erf-gelu", root_ops=("mul",), matcher=_match_gelu),
    FusionRule("affine", root_ops=("add",), matcher=_match_affine),
    FusionRule(
        "affine-activation", root_ops=("gelu", "tanh"),
        matcher=_match_affine_activation,
    ),
]


def register_fusion_rule(rule: FusionRule, index: int | None = None) -> None:
    """Register a custom fusion rule (appended, or inserted at ``index``)."""

    if index is None:
        FUSION_RULES.append(rule)
    else:
        FUSION_RULES.insert(index, rule)


def fuse_elementwise(graph: Graph, rules: list[FusionRule] | None = None) -> Graph:
    """Apply the fusion rules over the graph (each rule scans once, in order)."""

    for rule in FUSION_RULES if rules is None else rules:
        consumers = graph.consumer_counts()
        for node in graph.nodes():
            if node.id not in graph or node.op not in rule.root_ops:
                continue
            match = rule.matcher(graph, node, consumers)
            if match is None:
                continue
            graph.fuse(
                node.id, match["absorbed"], match["op"], match["inputs"],
                match.get("attrs"),
            )
            consumers = graph.consumer_counts()
    return graph


# ---------------------------------------------------------------------------
# Dead code elimination
# ---------------------------------------------------------------------------


def eliminate_dead_code(graph: Graph) -> Graph:
    """Remove every node no output transitively depends on.

    Placeholders are always kept — they define the compiled call signature
    even when an input does not influence the outputs.
    """

    live: set[int] = set(graph.inputs)
    stack = list(graph.outputs)
    while stack:
        nid = stack.pop()
        if nid in live:
            continue
        live.add(nid)
        stack.extend(graph.node(nid).inputs)
    dead = [node.id for node in graph.nodes() if node.id not in live]
    graph.remove_nodes(dead)
    return graph


#: The default pass pipeline, in application order.
DEFAULT_PASSES = (fold_constants, lower_gathers, fuse_elementwise, eliminate_dead_code)


def optimize(graph: Graph, passes=None) -> Graph:
    """Run a pass pipeline (default: :data:`DEFAULT_PASSES`) over ``graph``."""

    for pass_fn in DEFAULT_PASSES if passes is None else passes:
        graph = pass_fn(graph)
    graph.validate()
    return graph
