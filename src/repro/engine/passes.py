"""Compiler passes over the static operator graph.

The default pipeline (:data:`DEFAULT_PASSES`) applied by
:func:`~repro.engine.runtime.compile_module` is:

1. :func:`fold_constants` — evaluate every node whose operands are all
   constants once at compile time.  This freezes the weight-preprocessing
   chains of the models (``transpose(W)`` of every linear layer, the im2col
   weight reshape of the boundary convolutions), which eager mode recomputes
   on every call.  Folding runs the *eager* numpy expressions via
   :func:`~repro.engine.kernels.evaluate_node`, so folded values — often
   views of the parameter storage — are bitwise and layout identical to
   what eager mode produces.
2. :func:`lower_gathers` — rewrite advanced-indexing gathers along one axis
   (the conv ``im2col`` pattern ``x[:, :, index]``) into a ``take`` node
   backed by a preallocated flat buffer.
3. :func:`fuse_elementwise` — pattern-match elementwise chains into single
   fused kernels using the rules in :data:`FUSION_RULES`: the five-node
   erf-GELU chain becomes one ``gelu`` node, ``matmul`` + bias-``add``
   becomes ``affine``, and an ``affine`` feeding a ``gelu``/``tanh``
   exclusively becomes ``affine_gelu``/``affine_tanh``.  Fusion never
   reorders floating-point math — the fused kernels replay the identical
   ufunc sequence — so outputs stay bitwise equal to eager.
4. :func:`eliminate_dead_code` — drop every node (folded-over weights,
   absorbed chain links) that no output depends on.

Adding a new fusion rule
------------------------
Create a :class:`FusionRule` whose matcher inspects a candidate root node
and returns the fused replacement, then register it::

    def match_double(graph, node, consumers):
        # x + x  ->  scale(x, 2)   (illustrative only)
        a, b = node.inputs
        if a == b:
            return dict(op="scale", inputs=(a,), attrs={"factor": 2.0},
                        absorbed=[])
        return None

    register_fusion_rule(FusionRule("double-add", root_ops=("add",),
                                    matcher=match_double))

and add a matching kernel in :mod:`repro.engine.kernels` (``build_step`` and
``evaluate_node``).  Matchers must only absorb nodes that are consumed
exclusively inside the matched set (check ``consumers``); the replacement
keeps the root node's id, shape and dtype.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .graph import Graph, Node
from .kernels import evaluate_node

__all__ = [
    "FusionRule",
    "FUSION_RULES",
    "register_fusion_rule",
    "fold_constants",
    "fold_mutable_constants",
    "lower_gathers",
    "fuse_elementwise",
    "eliminate_dead_code",
    "DEFAULT_PASSES",
    "TRAINING_PASSES",
    "optimize",
]


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------


def fold_constants(graph: Graph, assume_frozen: bool = True) -> Graph:
    """Evaluate nodes whose operands are all constants; freeze the results.

    Folding happens in topological order, so whole constant subgraphs (e.g.
    ``reshape(transpose(W))``) collapse in one pass.  The computed values may
    alias parameter storage (views), exactly as the eager ops would produce.

    ``assume_frozen`` controls how aggressively parameter-derived subgraphs
    fold.  The default (inference pipelines) folds everything, which is only
    valid while parameters never change between calls.  With
    ``assume_frozen=False`` (the training pipeline,
    :data:`TRAINING_PASSES`), a node whose constant ancestry includes a
    module parameter is folded **only when the folded value is a view of the
    parameter's storage** (``transpose(W)``, weight reshapes, basic slices):
    in-place optimizer updates then flow into the folded constant, while any
    computation that would *bake parameter values into a fresh array* — e.g.
    ``matmul(seed, W^T)`` — is left in the graph to be recomputed per call.
    Purely parameter-free constant subgraphs (direction seeds, scalar
    arithmetic) still fold fully.
    """

    derived: set[int] = set()
    for node in graph.nodes():
        if node.is_constant:
            if node.param is not None:
                derived.add(node.id)
            continue
        if node.is_placeholder:
            continue
        parents = [graph.node(i) for i in node.inputs]
        if not (parents and all(p.is_constant for p in parents)):
            continue
        value = evaluate_node(node, [p.value for p in parents])
        value = np.asarray(value)
        derived_parents = [p for p in parents if p.id in derived]
        if derived_parents:
            # A freshly allocated result never overlaps the parameter
            # buffer, so the bounds check is an exact view test here.
            if not assume_frozen and not any(
                np.may_share_memory(value, p.value) for p in derived_parents
            ):
                continue
            derived.add(node.id)
        graph.replace_node(
            node.id, op="constant", inputs=(), attrs={}, value=value,
            shape=value.shape, dtype=value.dtype,
        )
    return graph


def fold_mutable_constants(graph: Graph) -> Graph:
    """:func:`fold_constants` in mutable-parameter (training) mode."""

    return fold_constants(graph, assume_frozen=False)


# ---------------------------------------------------------------------------
# Gather lowering
# ---------------------------------------------------------------------------


def lower_gathers(graph: Graph) -> Graph:
    """Rewrite one-axis advanced gathers into buffered ``take`` nodes.

    Matches ``getitem`` nodes whose index is a tuple of full slices followed
    by one integer index array in the final position (the conv ``im2col``
    pattern).  ``np.take`` along that axis with the flattened index selects
    the same elements, runs into a preallocated buffer, and the multi-dim
    index shape is restored with a free reshape view.
    """

    for node in graph.nodes():
        if node.op != "getitem":
            continue
        index = node.attrs.get("index")
        if not isinstance(index, tuple) or not index:
            continue
        *leading, last = index
        if not isinstance(last, np.ndarray) or last.dtype.kind not in "iu":
            continue
        if not all(
            isinstance(entry, slice) and entry == slice(None) for entry in leading
        ):
            continue
        source = graph.node(node.inputs[0])
        axis = len(index) - 1
        if axis >= len(source.shape):
            continue
        flat = np.ascontiguousarray(last.reshape(-1))
        flat_shape = (
            tuple(source.shape[:axis]) + (flat.size,) + tuple(source.shape[axis + 1:])
        )
        graph.replace_node(
            node.id,
            op="take",
            attrs={"axis": axis, "indices": flat, "flat_shape": flat_shape},
        )
    return graph


# ---------------------------------------------------------------------------
# Elementwise fusion
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FusionRule:
    """A pattern-rewrite rule applied by :func:`fuse_elementwise`.

    Attributes
    ----------
    name:
        Human-readable rule name (diagnostics).
    root_ops:
        Op names at which the matcher is attempted (the *last* node of the
        pattern, whose id/shape the fused node inherits).
    matcher:
        ``matcher(graph, root_node, consumers) -> dict | None`` returning
        ``{"op", "inputs", "attrs", "absorbed"}`` for a match.  ``consumers``
        maps node id to its total consumer count (outputs included); every
        absorbed node must be consumed only within the matched set.
    """

    name: str
    root_ops: tuple[str, ...]
    matcher: Callable[[Graph, Node, dict], dict | None]


def _const_scalar(graph: Graph, node_id: int) -> float | None:
    node = graph.node(node_id)
    if node.is_constant and node.value is not None and node.value.ndim == 0:
        return float(node.value)
    return None


def _match_gelu(graph: Graph, root: Node, consumers: dict) -> dict | None:
    """``x * (c2 * (c1 + erf(x / c0)))`` — the eager erf-GELU chain."""

    x_id, outer_id = root.inputs
    outer = graph.node(outer_id)
    if outer.op != "mul" or consumers[outer.id] != 1:
        return None
    c2 = _const_scalar(graph, outer.inputs[0])
    if c2 is None:
        return None
    inner = graph.node(outer.inputs[1])
    if inner.op != "add" or consumers[inner.id] != 1:
        return None
    c1 = _const_scalar(graph, inner.inputs[0])
    if c1 is None:
        return None
    erf_node = graph.node(inner.inputs[1])
    if erf_node.op != "erf" or consumers[erf_node.id] != 1:
        return None
    div_node = graph.node(erf_node.inputs[0])
    if div_node.op != "div" or consumers[div_node.id] != 1:
        return None
    if div_node.inputs[0] != x_id:
        return None
    c0 = _const_scalar(graph, div_node.inputs[1])
    if c0 is None:
        return None
    return {
        "op": "gelu",
        "inputs": (x_id,),
        "attrs": {"div_const": c0, "add_const": c1, "mul_const": c2},
        "absorbed": [outer.id, inner.id, erf_node.id, div_node.id],
    }


def _match_affine(graph: Graph, root: Node, consumers: dict) -> dict | None:
    """``matmul(x, W) + bias`` with a constant bias — one BLAS call + in-place add."""

    mm_id, bias_id = root.inputs
    mm = graph.node(mm_id)
    if mm.op != "matmul" or consumers[mm.id] != 1:
        return None
    if not graph.node(bias_id).is_constant:
        return None
    # The fused kernel matmuls straight into the add's output buffer, which
    # is only valid when the bias broadcasts *into* the matmul shape (the
    # Linear-layer case), not when it widens the result.
    if mm.shape != root.shape:
        return None
    return {
        "op": "affine",
        "inputs": (mm.inputs[0], mm.inputs[1], bias_id),
        "attrs": {},
        "absorbed": [mm.id],
    }


def _match_affine_activation(graph: Graph, root: Node, consumers: dict) -> dict | None:
    """An ``affine`` consumed only by a ``gelu``/``tanh`` — one fused kernel."""

    pre = graph.node(root.inputs[0])
    if pre.op != "affine" or consumers[pre.id] != 1:
        return None
    fused_op = "affine_gelu" if root.op == "gelu" else "affine_tanh"
    return {
        "op": fused_op,
        "inputs": pre.inputs,
        "attrs": dict(root.attrs),
        "absorbed": [pre.id],
    }


# -- Faà di Bruno jet fusions -------------------------------------------------
#
# The Taylor-mode Laplacian propagates (value, d1, d2) jets through every
# activation:
#
#     value = f(v);  d1' = f'(v) * d1;  d2' = f''(v) * d1^2 + f'(v) * d2
#
# Each of f / f' / f'' expands into a chain of primitive nodes per layer
# (eager mode pays a Python dispatch and a fresh allocation per link).  The
# rules below collapse the f' and f'' chains of the GELU and Tanh
# activations, and the ``a*b^2 + c*d`` second-order combination, into single
# preallocated kernels that replay the identical ufunc sequence — so jet
# programs stay bitwise equal to eager mode while dropping most of the
# per-op overhead.  (The f chain of the GELU is already covered by the
# ``erf-gelu`` rule above.)


def _match_phi_chain(graph: Graph, node_id: int, x_id: int, consumers: dict):
    """``c_phi * exp(c_neg_half * (x * x))`` — the standard normal PDF chain.

    Returns ``(absorbed_ids, phi_const, neg_half_const)`` or ``None``; every
    chain node must be exclusively consumed.
    """

    p = graph.node(node_id)
    if p.op != "mul" or consumers[p.id] != 1:
        return None
    phi_const = _const_scalar(graph, p.inputs[0])
    if phi_const is None:
        return None
    e = graph.node(p.inputs[1])
    if e.op != "exp" or consumers[e.id] != 1:
        return None
    m2 = graph.node(e.inputs[0])
    if m2.op != "mul" or consumers[m2.id] != 1:
        return None
    neg_half = _const_scalar(graph, m2.inputs[0])
    if neg_half is None:
        return None
    m1 = graph.node(m2.inputs[1])
    if m1.op != "mul" or consumers[m1.id] != 1:
        return None
    if m1.inputs != (x_id, x_id):
        return None
    return ([p.id, e.id, m2.id, m1.id], phi_const, neg_half)


def _match_gelu_d1(graph: Graph, root: Node, consumers: dict) -> dict | None:
    """``Phi(x) + x * phi(x)`` — the eager GELU first-derivative chain."""

    if len(root.inputs) != 2:
        return None
    big_phi_id, xp_id = root.inputs
    big_phi = graph.node(big_phi_id)
    # Phi(x) = half * (one + erf(x / sqrt2))
    if big_phi.op != "mul" or consumers[big_phi.id] != 1:
        return None
    half = _const_scalar(graph, big_phi.inputs[0])
    if half is None:
        return None
    inner = graph.node(big_phi.inputs[1])
    if inner.op != "add" or consumers[inner.id] != 1:
        return None
    one = _const_scalar(graph, inner.inputs[0])
    if one is None:
        return None
    erf_node = graph.node(inner.inputs[1])
    if erf_node.op != "erf" or consumers[erf_node.id] != 1:
        return None
    div_node = graph.node(erf_node.inputs[0])
    if div_node.op != "div" or consumers[div_node.id] != 1:
        return None
    x_id = div_node.inputs[0]
    sqrt2 = _const_scalar(graph, div_node.inputs[1])
    if sqrt2 is None:
        return None
    xp = graph.node(xp_id)
    if xp.op != "mul" or consumers[xp.id] != 1 or xp.inputs[0] != x_id:
        return None
    if graph.node(x_id).shape != root.shape:
        return None
    phi = _match_phi_chain(graph, xp.inputs[1], x_id, consumers)
    if phi is None:
        return None
    phi_nodes, phi_const, neg_half = phi
    return {
        "op": "gelu_d1",
        "inputs": (x_id,),
        "attrs": {
            "div_const": sqrt2, "one_const": one, "half_const": half,
            "neg_half_const": neg_half, "phi_const": phi_const,
        },
        "absorbed": [big_phi.id, inner.id, erf_node.id, div_node.id, xp.id,
                     *phi_nodes],
    }


def _match_gelu_d2(graph: Graph, root: Node, consumers: dict) -> dict | None:
    """``phi(x) * (two - x * x)`` — the eager GELU second-derivative chain."""

    if len(root.inputs) != 2:
        return None
    p_id, s_id = root.inputs
    s = graph.node(s_id)
    if s.op != "sub" or consumers[s.id] != 1:
        return None
    two = _const_scalar(graph, s.inputs[0])
    if two is None:
        return None
    sq = graph.node(s.inputs[1])
    if sq.op != "mul" or consumers[sq.id] != 1:
        return None
    if sq.inputs[0] != sq.inputs[1]:
        return None
    x_id = sq.inputs[0]
    if graph.node(x_id).shape != root.shape:
        return None
    phi = _match_phi_chain(graph, p_id, x_id, consumers)
    if phi is None:
        return None
    phi_nodes, phi_const, neg_half = phi
    return {
        "op": "gelu_d2",
        "inputs": (x_id,),
        "attrs": {
            "neg_half_const": neg_half, "phi_const": phi_const,
            "two_const": two,
        },
        "absorbed": [s.id, sq.id, *phi_nodes],
    }


def _match_tanh_d1(graph: Graph, root: Node, consumers: dict) -> dict | None:
    """``one - tanh(v)^2`` — the eager Tanh first-derivative chain."""

    one = _const_scalar(graph, root.inputs[0])
    if one is None:
        return None
    sq = graph.node(root.inputs[1])
    if sq.op != "mul" or consumers[sq.id] != 1 or sq.inputs[0] != sq.inputs[1]:
        return None
    t = graph.node(sq.inputs[0])
    if t.op != "tanh" or consumers[t.id] != 2:
        return None
    if graph.node(t.inputs[0]).shape != root.shape:
        return None
    return {
        "op": "tanh_d1",
        "inputs": (t.inputs[0],),
        "attrs": {"one_const": one},
        "absorbed": [sq.id, t.id],
    }


def _match_tanh_d2(graph: Graph, root: Node, consumers: dict) -> dict | None:
    """``(neg_two * tanh(v)) * (one - tanh(v)^2)`` — Tanh second derivative."""

    if len(root.inputs) != 2:
        return None
    ma = graph.node(root.inputs[0])
    if ma.op != "mul" or consumers[ma.id] != 1:
        return None
    neg_two = _const_scalar(graph, ma.inputs[0])
    if neg_two is None:
        return None
    t_id = ma.inputs[1]
    inner = graph.node(root.inputs[1])
    if inner.op != "sub" or consumers[inner.id] != 1:
        return None
    one = _const_scalar(graph, inner.inputs[0])
    if one is None:
        return None
    sq = graph.node(inner.inputs[1])
    if sq.op != "mul" or consumers[sq.id] != 1 or sq.inputs != (t_id, t_id):
        return None
    t = graph.node(t_id)
    if t.op != "tanh" or consumers[t.id] != 3:
        return None
    if graph.node(t.inputs[0]).shape != root.shape:
        return None
    return {
        "op": "tanh_d2",
        "inputs": (t.inputs[0],),
        "attrs": {"neg_two_const": neg_two, "one_const": one},
        "absorbed": [ma.id, inner.id, sq.id, t.id],
    }


def _match_jet_d2(graph: Graph, root: Node, consumers: dict) -> dict | None:
    """``second * (d1 * d1) + first * d2`` — the jet second-order combine.

    The pattern is matched structurally, so it also fires on any other
    ``a*b^2 + c*d`` site; the fused kernel replays the identical ufunc
    sequence, which keeps that safe.
    """

    if len(root.inputs) != 2:
        return None
    t2 = graph.node(root.inputs[0])
    if t2.op != "mul" or consumers[t2.id] != 1:
        return None
    t1 = graph.node(t2.inputs[1])
    if t1.op != "mul" or consumers[t1.id] != 1 or t1.inputs[0] != t1.inputs[1]:
        return None
    t3 = graph.node(root.inputs[1])
    if t3.op != "mul" or consumers[t3.id] != 1:
        return None
    # The fused kernel writes every stage into root-shaped buffers, so no
    # operand may broadcast.
    operands = (t2.inputs[0], t1.inputs[0], t3.inputs[0], t3.inputs[1])
    if any(graph.node(i).shape != root.shape for i in operands):
        return None
    if t1.shape != root.shape or t2.shape != root.shape or t3.shape != root.shape:
        return None
    return {
        "op": "jet_d2",
        "inputs": (t2.inputs[0], t1.inputs[0], t3.inputs[0], t3.inputs[1]),
        "attrs": {},
        "absorbed": [t2.id, t1.id, t3.id],
    }


def _match_erf_vjp(graph: Graph, root: Node, consumers: dict) -> dict | None:
    """``g * (coeff * exp(-(a * a)))`` — the traced reverse chain of ``erf``.

    One of these appears per erf site in a traced backward pass (the GELU's
    ``Phi`` chains); fusing it collapses five dispatches into one kernel.
    """

    if len(root.inputs) != 2:
        return None
    g_id, outer_id = root.inputs
    outer = graph.node(outer_id)
    if outer.op != "mul" or consumers[outer.id] != 1:
        return None
    coeff = _const_scalar(graph, outer.inputs[0])
    if coeff is None:
        return None
    e = graph.node(outer.inputs[1])
    if e.op != "exp" or consumers[e.id] != 1:
        return None
    ng = graph.node(e.inputs[0])
    if ng.op != "neg" or consumers[ng.id] != 1:
        return None
    sq = graph.node(ng.inputs[0])
    if sq.op != "mul" or consumers[sq.id] != 1 or sq.inputs[0] != sq.inputs[1]:
        return None
    a_id = sq.inputs[0]
    if graph.node(a_id).shape != root.shape or graph.node(g_id).shape != root.shape:
        return None
    return {
        "op": "erf_vjp",
        "inputs": (g_id, a_id),
        "attrs": {"coeff_const": coeff},
        "absorbed": [outer.id, e.id, ng.id, sq.id],
    }


def _match_mul_exp(graph: Graph, root: Node, consumers: dict) -> dict | None:
    """``g * exp(a)`` — the traced reverse chain of ``exp`` (which recomputes)."""

    if len(root.inputs) != 2:
        return None
    g_id, e_id = root.inputs
    e = graph.node(e_id)
    if e.op != "exp" or consumers[e.id] != 1:
        return None
    if e.shape != root.shape or graph.node(g_id).shape != root.shape:
        return None
    return {
        "op": "mul_exp",
        "inputs": (g_id, e.inputs[0]),
        "attrs": {},
        "absorbed": [e.id],
    }


#: Registered fusion rules, applied in order by :func:`fuse_elementwise`.
FUSION_RULES: list[FusionRule] = [
    FusionRule("erf-gelu", root_ops=("mul",), matcher=_match_gelu),
    FusionRule("affine", root_ops=("add",), matcher=_match_affine),
    FusionRule(
        "affine-activation", root_ops=("gelu", "tanh"),
        matcher=_match_affine_activation,
    ),
    FusionRule("gelu-d1", root_ops=("add",), matcher=_match_gelu_d1),
    FusionRule("gelu-d2", root_ops=("mul",), matcher=_match_gelu_d2),
    FusionRule("tanh-d1", root_ops=("sub",), matcher=_match_tanh_d1),
    FusionRule("tanh-d2", root_ops=("mul",), matcher=_match_tanh_d2),
    FusionRule("jet-d2-combine", root_ops=("add",), matcher=_match_jet_d2),
    FusionRule("erf-vjp", root_ops=("mul",), matcher=_match_erf_vjp),
    FusionRule("exp-vjp", root_ops=("mul",), matcher=_match_mul_exp),
]


def register_fusion_rule(rule: FusionRule, index: int | None = None) -> None:
    """Register a custom fusion rule (appended, or inserted at ``index``)."""

    if index is None:
        FUSION_RULES.append(rule)
    else:
        FUSION_RULES.insert(index, rule)


def fuse_elementwise(graph: Graph, rules: list[FusionRule] | None = None) -> Graph:
    """Apply the fusion rules over the graph (each rule scans once, in order)."""

    for rule in FUSION_RULES if rules is None else rules:
        consumers = graph.consumer_counts()
        for node in graph.nodes():
            if node.id not in graph or node.op not in rule.root_ops:
                continue
            match = rule.matcher(graph, node, consumers)
            if match is None:
                continue
            graph.fuse(
                node.id, match["absorbed"], match["op"], match["inputs"],
                match.get("attrs"),
            )
            consumers = graph.consumer_counts()
    return graph


# ---------------------------------------------------------------------------
# Dead code elimination
# ---------------------------------------------------------------------------


def eliminate_dead_code(graph: Graph) -> Graph:
    """Remove every node no output transitively depends on.

    Placeholders are always kept — they define the compiled call signature
    even when an input does not influence the outputs.
    """

    live: set[int] = set(graph.inputs)
    stack = list(graph.outputs)
    while stack:
        nid = stack.pop()
        if nid in live:
            continue
        live.add(nid)
        stack.extend(graph.node(nid).inputs)
    dead = [node.id for node in graph.nodes() if node.id not in live]
    graph.remove_nodes(dead)
    return graph


#: The default pass pipeline, in application order.
DEFAULT_PASSES = (fold_constants, lower_gathers, fuse_elementwise, eliminate_dead_code)

#: The training pipeline: identical except constant folding never bakes
#: parameter values into fresh arrays, so in-place optimizer updates keep
#: flowing into compiled loss-and-gradient programs without re-tracing.
TRAINING_PASSES = (
    fold_mutable_constants, lower_gathers, fuse_elementwise, eliminate_dead_code
)


def optimize(graph: Graph, passes=None) -> Graph:
    """Run a pass pipeline (default: :data:`DEFAULT_PASSES`) over ``graph``."""

    for pass_fn in DEFAULT_PASSES if passes is None else passes:
        graph = pass_fn(graph)
    graph.validate()
    return graph
