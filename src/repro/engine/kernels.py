"""Vectorized NumPy kernels executed by the compiled runtime.

Two things live here:

* :func:`evaluate_node` — a pure, buffer-free evaluator that replays a graph
  node with *exactly* the numpy expressions the eager primitives in
  :mod:`repro.autodiff.ops` use.  Constant folding runs on it, and rarely-hot
  ops without an ``out=``-capable kernel fall back to it at runtime, so every
  value the engine ever produces is computed by the same floating-point
  operations as eager mode — the foundation of the bitwise-parity guarantee.
* :func:`build_step` — the kernel compiler: given a node and its operand
  slots it returns a closure that executes the op into a *preallocated*
  output buffer (``np.add(a, b, out=buf)``-style), so steady-state inference
  performs no tensor allocations for elementwise chains, matmuls, reductions
  and concatenations.  Pure shape ops (reshape/transpose/basic slicing)
  produce views.

The fused kernels (``gelu``, ``affine``, ``affine_gelu``, ``affine_tanh``,
``take``) execute the same ufunc sequence as the eager subgraphs they
replace — fusion removes Python dispatch and temporaries, never reorders
floating-point math — which keeps fused outputs bitwise identical too.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy import special as _special

from ..autodiff.tensor import DEFAULT_DTYPE
from .graph import Node

__all__ = ["evaluate_node", "build_step", "step_bytes", "KernelError"]


class KernelError(RuntimeError):
    """Raised when a graph node has no kernel (unknown op)."""


def step_bytes(node: Node) -> int:
    """Output bytes of one graph node (for per-kernel byte accounting)."""

    size = 1
    for dim in node.shape:
        size *= int(dim)
    itemsize = np.dtype(node.dtype if node.dtype is not None else DEFAULT_DTYPE).itemsize
    return size * itemsize


# ---------------------------------------------------------------------------
# Pure evaluation (eager-faithful; used by constant folding and fallbacks)
# ---------------------------------------------------------------------------


def _normalized_axes(axes, ndim: int) -> tuple:
    """Replicate the axis normalization of ``ops.transpose``."""

    if axes is None:
        return tuple(reversed(range(ndim)))
    return tuple(ax % ndim for ax in axes)


def _eval_gelu(x, attrs):
    t = x / attrs["div_const"]
    t = _special.erf(t)
    t = attrs["add_const"] + t
    t = attrs["mul_const"] * t
    return x * t


def _eval_affine(a, b, bias):
    return (a @ b) + bias


def _eval_phi(x, attrs):
    """Standard normal PDF chain, eager op order."""

    return attrs["phi_const"] * np.exp(attrs["neg_half_const"] * (x * x))


def _eval_gelu_d1(x, attrs):
    big_phi = attrs["half_const"] * (
        attrs["one_const"] + _special.erf(x / attrs["div_const"])
    )
    return big_phi + x * _eval_phi(x, attrs)


def _eval_gelu_d2(x, attrs):
    return _eval_phi(x, attrs) * (attrs["two_const"] - x * x)


def _eval_tanh_d1(x, attrs):
    t = np.tanh(x)
    return attrs["one_const"] - t * t


def _eval_tanh_d2(x, attrs):
    t = np.tanh(x)
    return (attrs["neg_two_const"] * t) * (attrs["one_const"] - t * t)


_EVALUATORS: dict[str, Callable] = {
    "add": lambda v, n: v[0] + v[1],
    "sub": lambda v, n: v[0] - v[1],
    "mul": lambda v, n: v[0] * v[1],
    "div": lambda v, n: v[0] / v[1],
    "neg": lambda v, n: -v[0],
    "pow": lambda v, n: v[0] ** float(n.attrs["exponent"]),
    "exp": lambda v, n: np.exp(v[0]),
    "log": lambda v, n: np.log(v[0]),
    "tanh": lambda v, n: np.tanh(v[0]),
    "erf": lambda v, n: _special.erf(v[0]),
    "sin": lambda v, n: np.sin(v[0]),
    "cos": lambda v, n: np.cos(v[0]),
    "abs": lambda v, n: np.abs(v[0]),
    "maximum_zero": lambda v, n: np.maximum(v[0], 0.0),
    "clip": lambda v, n: np.clip(v[0], n.attrs["low"], n.attrs["high"]),
    "where_mask": lambda v, n: np.where(
        np.asarray(n.attrs["mask"], dtype=bool), v[0], v[1]
    ),
    "matmul": lambda v, n: v[0] @ v[1],
    "sum": lambda v, n: v[0].sum(
        axis=n.attrs["axis"], keepdims=n.attrs["keepdims"]
    ),
    "reshape": lambda v, n: v[0].reshape(n.attrs["shape"]),
    "transpose": lambda v, n: v[0].transpose(
        _normalized_axes(n.attrs["axes"], v[0].ndim)
    ),
    "broadcast_to": lambda v, n: np.broadcast_to(v[0], n.attrs["shape"]).copy(),
    "concatenate": lambda v, n: np.concatenate(list(v), axis=n.attrs["axis"]),
    "pad": lambda v, n: np.pad(v[0], n.attrs["pad_width"]),
    "getitem": lambda v, n: v[0][n.attrs["index"]],
    "scatter_add": lambda v, n: _eval_scatter_add(v[0], n),
    # fused / lowered ops
    "take": lambda v, n: np.take(v[0], n.attrs["indices"], axis=n.attrs["axis"])
    .reshape(n.shape),
    "gelu": lambda v, n: _eval_gelu(v[0], n.attrs),
    "affine": lambda v, n: _eval_affine(v[0], v[1], v[2]),
    "affine_gelu": lambda v, n: _eval_gelu(_eval_affine(v[0], v[1], v[2]), n.attrs),
    "affine_tanh": lambda v, n: np.tanh(_eval_affine(v[0], v[1], v[2])),
    # fused Faa di Bruno jet ops (Taylor-mode Laplacian path)
    "gelu_d1": lambda v, n: _eval_gelu_d1(v[0], n.attrs),
    "gelu_d2": lambda v, n: _eval_gelu_d2(v[0], n.attrs),
    "tanh_d1": lambda v, n: _eval_tanh_d1(v[0], n.attrs),
    "tanh_d2": lambda v, n: _eval_tanh_d2(v[0], n.attrs),
    "jet_d2": lambda v, n: v[0] * (v[1] * v[1]) + v[2] * v[3],
    "erf_vjp": lambda v, n: v[0] * (n.attrs["coeff_const"] * np.exp(-(v[1] * v[1]))),
    "mul_exp": lambda v, n: v[0] * np.exp(v[1]),
}


def _eval_scatter_add(g, node):
    out = np.zeros(node.attrs["shape"], dtype=g.dtype)
    np.add.at(out, node.attrs["index"], g)
    return out


def evaluate_node(node: Node, input_values: list[np.ndarray]) -> np.ndarray:
    """Evaluate one node on concrete operand values (eager-identical math)."""

    try:
        evaluator = _EVALUATORS[node.op]
    except KeyError as exc:
        raise KernelError(f"no evaluator for op {node.op!r}") from exc
    return evaluator(input_values, node)


# ---------------------------------------------------------------------------
# Buffered kernels
# ---------------------------------------------------------------------------
#
# A "step" is a closure run(slots) that reads operand arrays from the slot
# table, computes into bound buffers, and stores its result slot.  ``alloc``
# is provided by the execution plan and returns a persistent buffer.

Step = Callable[[list], None]
_UFUNC_BINARY = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
}
_UFUNC_UNARY = {
    "neg": np.negative,
    "exp": np.exp,
    "log": np.log,
    "tanh": np.tanh,
    "erf": _special.erf,
    "sin": np.sin,
    "cos": np.cos,
    "abs": np.absolute,
}


def _binary_step(ufunc, src, dst, buf) -> Step:
    a, b = src

    def run(slots):
        ufunc(slots[a], slots[b], out=buf)
        slots[dst] = buf

    return run


def _unary_step(ufunc, src, dst, buf) -> Step:
    (a,) = src

    def run(slots):
        ufunc(slots[a], out=buf)
        slots[dst] = buf

    return run


def _fallback_step(node, src, dst) -> Step:
    """Evaluate via :func:`evaluate_node` (allocating; for rarely-hot ops)."""

    def run(slots):
        slots[dst] = evaluate_node(node, [slots[i] for i in src])

    return run


def build_step(node: Node, src: list[int], dst: int, alloc) -> Step:
    """Compile one node into an executable step.

    Parameters
    ----------
    node:
        The graph node (op, attrs, output shape/dtype).
    src:
        Slot indices of the node's operands, in operand order.
    dst:
        Slot index the step must store its result into.
    alloc:
        ``alloc(shape, dtype) -> np.ndarray`` returning a buffer owned by the
        execution plan (one per call site, reused across runs).
    """

    op = node.op
    if op in _UFUNC_BINARY:
        return _binary_step(_UFUNC_BINARY[op], src, dst, alloc(node.shape, node.dtype))
    if op in _UFUNC_UNARY:
        return _unary_step(_UFUNC_UNARY[op], src, dst, alloc(node.shape, node.dtype))

    if op == "maximum_zero":
        (a,) = src
        buf = alloc(node.shape, node.dtype)

        def run_relu(slots):
            np.maximum(slots[a], 0.0, out=buf)
            slots[dst] = buf

        return run_relu

    if op == "clip":
        (a,) = src
        low, high = node.attrs["low"], node.attrs["high"]
        buf = alloc(node.shape, node.dtype)

        def run_clip(slots):
            np.clip(slots[a], low, high, out=buf)
            slots[dst] = buf

        return run_clip

    if op == "matmul":
        a, b = src
        buf = alloc(node.shape, node.dtype)

        def run_matmul(slots):
            np.matmul(slots[a], slots[b], out=buf)
            slots[dst] = buf

        return run_matmul

    if op == "sum":
        (a,) = src
        axis = node.attrs["axis"]
        keepdims = node.attrs["keepdims"]
        buf = alloc(node.shape, node.dtype)

        def run_sum(slots):
            np.sum(slots[a], axis=axis, keepdims=keepdims, out=buf)
            slots[dst] = buf

        return run_sum

    if op == "reshape":
        (a,) = src
        shape = node.attrs["shape"]

        def run_reshape(slots):
            slots[dst] = slots[a].reshape(shape)

        return run_reshape

    if op == "transpose":
        (a,) = src
        # Axis normalization is shape-dependent; input ndim is fixed per plan.
        axes = None

        def run_transpose(slots):
            nonlocal axes
            value = slots[a]
            if axes is None:
                axes = _normalized_axes(node.attrs["axes"], value.ndim)
            slots[dst] = value.transpose(axes)

        return run_transpose

    if op == "broadcast_to":
        (a,) = src
        shape = node.attrs["shape"]
        buf = alloc(node.shape, node.dtype)

        def run_broadcast(slots):
            np.copyto(buf, np.broadcast_to(slots[a], shape))
            slots[dst] = buf

        return run_broadcast

    if op == "concatenate":
        axis = node.attrs["axis"] % max(len(node.shape), 1)
        buf = alloc(node.shape, node.dtype)
        slices = []
        offset = 0
        # Operand extents along the concat axis are fixed per plan (taken
        # from the plan's node shapes at build time by the caller via attrs).
        for size in node.attrs["sizes"]:
            index = [slice(None)] * len(node.shape)
            index[axis] = slice(offset, offset + size)
            slices.append(tuple(index))
            offset += size

        def run_concat(slots):
            for slot, index in zip(src, slices):
                np.copyto(buf[index], slots[slot])
            slots[dst] = buf

        return run_concat

    if op == "take":
        (a,) = src
        axis = node.attrs["axis"]
        indices = node.attrs["indices"]
        flat_shape = node.attrs["flat_shape"]
        out_shape = node.shape
        buf = alloc(flat_shape, node.dtype)

        def run_take(slots):
            np.take(slots[a], indices, axis=axis, out=buf)
            slots[dst] = buf.reshape(out_shape)

        return run_take

    if op == "getitem":
        index = node.attrs["index"]
        if _is_basic_index(index):
            (a,) = src

            def run_view(slots):
                slots[dst] = slots[a][index]

            return run_view
        return _fallback_step(node, src, dst)

    if op == "gelu":
        (x,) = src
        div_const = node.attrs["div_const"]
        add_const = node.attrs["add_const"]
        mul_const = node.attrs["mul_const"]
        scratch = alloc(node.shape, node.dtype)
        buf = alloc(node.shape, node.dtype)

        def run_gelu(slots):
            value = slots[x]
            np.divide(value, div_const, out=scratch)
            _special.erf(scratch, scratch)
            np.add(add_const, scratch, out=scratch)
            np.multiply(mul_const, scratch, out=scratch)
            np.multiply(value, scratch, out=buf)
            slots[dst] = buf

        return run_gelu

    if op == "affine":
        a, b, bias = src
        buf = alloc(node.shape, node.dtype)

        def run_affine(slots):
            np.matmul(slots[a], slots[b], out=buf)
            np.add(buf, slots[bias], out=buf)
            slots[dst] = buf

        return run_affine

    if op in ("affine_gelu", "affine_tanh"):
        a, b, bias = src
        pre = alloc(node.shape, node.dtype)
        buf = alloc(node.shape, node.dtype)
        if op == "affine_gelu":
            div_const = node.attrs["div_const"]
            add_const = node.attrs["add_const"]
            mul_const = node.attrs["mul_const"]
            scratch = alloc(node.shape, node.dtype)

            def run_affine_act(slots):
                np.matmul(slots[a], slots[b], out=pre)
                np.add(pre, slots[bias], out=pre)
                np.divide(pre, div_const, out=scratch)
                _special.erf(scratch, scratch)
                np.add(add_const, scratch, out=scratch)
                np.multiply(mul_const, scratch, out=scratch)
                np.multiply(pre, scratch, out=buf)
                slots[dst] = buf

        else:

            def run_affine_act(slots):
                np.matmul(slots[a], slots[b], out=pre)
                np.add(pre, slots[bias], out=pre)
                np.tanh(pre, out=buf)
                slots[dst] = buf

        return run_affine_act

    if op == "gelu_d1":
        (x,) = src
        attrs = node.attrs
        div_const = attrs["div_const"]
        one_const = attrs["one_const"]
        half_const = attrs["half_const"]
        neg_half = attrs["neg_half_const"]
        phi_const = attrs["phi_const"]
        big_phi = alloc(node.shape, node.dtype)
        buf = alloc(node.shape, node.dtype)

        def run_gelu_d1(slots):
            value = slots[x]
            # Phi(x) = half * (one + erf(x / sqrt2))
            np.divide(value, div_const, out=big_phi)
            _special.erf(big_phi, big_phi)
            np.add(one_const, big_phi, out=big_phi)
            np.multiply(half_const, big_phi, out=big_phi)
            # x * phi(x) = x * (c_phi * exp(neg_half * x^2))
            np.multiply(value, value, out=buf)
            np.multiply(neg_half, buf, out=buf)
            np.exp(buf, out=buf)
            np.multiply(phi_const, buf, out=buf)
            np.multiply(value, buf, out=buf)
            np.add(big_phi, buf, out=buf)
            slots[dst] = buf

        return run_gelu_d1

    if op == "gelu_d2":
        (x,) = src
        attrs = node.attrs
        neg_half = attrs["neg_half_const"]
        phi_const = attrs["phi_const"]
        two_const = attrs["two_const"]
        scratch = alloc(node.shape, node.dtype)
        buf = alloc(node.shape, node.dtype)

        def run_gelu_d2(slots):
            value = slots[x]
            # phi(x)
            np.multiply(value, value, out=buf)
            np.multiply(neg_half, buf, out=buf)
            np.exp(buf, out=buf)
            np.multiply(phi_const, buf, out=buf)
            # two - x^2
            np.multiply(value, value, out=scratch)
            np.subtract(two_const, scratch, out=scratch)
            np.multiply(buf, scratch, out=buf)
            slots[dst] = buf

        return run_gelu_d2

    if op == "tanh_d1":
        (x,) = src
        one_const = node.attrs["one_const"]
        buf = alloc(node.shape, node.dtype)

        def run_tanh_d1(slots):
            np.tanh(slots[x], out=buf)
            np.multiply(buf, buf, out=buf)
            np.subtract(one_const, buf, out=buf)
            slots[dst] = buf

        return run_tanh_d1

    if op == "tanh_d2":
        (x,) = src
        neg_two = node.attrs["neg_two_const"]
        one_const = node.attrs["one_const"]
        scratch = alloc(node.shape, node.dtype)
        buf = alloc(node.shape, node.dtype)

        def run_tanh_d2(slots):
            np.tanh(slots[x], out=scratch)
            np.multiply(neg_two, scratch, out=buf)
            np.multiply(scratch, scratch, out=scratch)
            np.subtract(one_const, scratch, out=scratch)
            np.multiply(buf, scratch, out=buf)
            slots[dst] = buf

        return run_tanh_d2

    if op == "jet_d2":
        second, d1, first, d2 = src
        scratch = alloc(node.shape, node.dtype)
        buf = alloc(node.shape, node.dtype)

        def run_jet_d2(slots):
            # second * (d1 * d1) + first * d2, eager op order
            np.multiply(slots[d1], slots[d1], out=scratch)
            np.multiply(slots[second], scratch, out=scratch)
            np.multiply(slots[first], slots[d2], out=buf)
            np.add(scratch, buf, out=buf)
            slots[dst] = buf

        return run_jet_d2

    if op == "erf_vjp":
        g_slot, a_slot = src
        coeff = node.attrs["coeff_const"]
        buf = alloc(node.shape, node.dtype)

        def run_erf_vjp(slots):
            a = slots[a_slot]
            np.multiply(a, a, out=buf)
            np.negative(buf, out=buf)
            np.exp(buf, out=buf)
            np.multiply(coeff, buf, out=buf)
            np.multiply(slots[g_slot], buf, out=buf)
            slots[dst] = buf

        return run_erf_vjp

    if op == "mul_exp":
        g_slot, a_slot = src
        buf = alloc(node.shape, node.dtype)

        def run_mul_exp(slots):
            np.exp(slots[a_slot], out=buf)
            np.multiply(slots[g_slot], buf, out=buf)
            slots[dst] = buf

        return run_mul_exp

    if op in _EVALUATORS:
        # Ops without a buffered kernel (pow, where_mask, pad, scatter_add,
        # custom fused ops that registered only an evaluator) run through the
        # allocating eager-faithful fallback.
        return _fallback_step(node, src, dst)

    raise KernelError(f"no kernel for op {node.op!r}")


def _is_basic_index(index) -> bool:
    """True when numpy basic indexing applies (result is a view)."""

    entries = index if isinstance(index, tuple) else (index,)
    return all(
        isinstance(entry, (slice, int, np.integer)) or entry is None
        or entry is Ellipsis
        for entry in entries
    )
