"""Static operator-graph IR of the inference engine.

A :class:`Graph` is the record of one symbolic forward pass of an
:class:`~repro.nn.module.Module`: a flat, topologically ordered sequence of
:class:`Node` objects, each naming a primitive operation from
:mod:`repro.autodiff.ops` (or a fused kernel introduced by
:mod:`repro.engine.passes`), the nodes it consumes, and the non-tensor
attributes of the call (shapes, axes, index arrays, ...).

Three special node kinds exist besides the primitives:

* ``placeholder`` — a graph input (one per traced call argument),
* ``constant``   — a value captured at trace time (module parameters and any
  numpy/scalar operands lifted by the eager ops),
* fused ops (``gelu``, ``affine``, ``affine_gelu``, ...) — produced by the
  fusion passes, never by the tracer.

The IR is deliberately minimal: node ids are dense integers assigned in trace
order, the node dictionary preserves insertion order (which *is* a valid
topological order, and every pass maintains that invariant), and rewrites
keep the rewritten node's id so consumers never need remapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

import numpy as np

__all__ = ["Node", "Graph", "GraphError"]


class GraphError(RuntimeError):
    """Raised when a graph rewrite would produce an inconsistent graph."""


@dataclass
class Node:
    """One operation of the static graph.

    Attributes
    ----------
    id:
        Dense integer id, unique within the graph; ids are assigned in trace
        order, so ``id(a) < id(b)`` whenever ``a`` must execute before ``b``.
    op:
        Primitive name (``"matmul"``, ``"add"``, ...), a fused-kernel name,
        ``"placeholder"`` or ``"constant"``.
    inputs:
        Ids of the nodes whose values this node consumes, in operand order.
    attrs:
        Non-tensor call attributes (``shape`` for reshape, ``axes`` for
        transpose, index arrays for gathers, fused-kernel constants, ...).
    shape, dtype:
        Shape and dtype of the node's value, as observed during tracing.
    value:
        The captured array for ``constant`` nodes (``None`` otherwise).
        Constants captured from module parameters alias the parameter's
        storage, so in-place parameter updates flow into the graph; computed
        constants (from :func:`~repro.engine.passes.fold_constants`) may be
        views of parameter storage or fresh arrays.
    param:
        Qualified parameter name when the constant was captured from a
        registered module parameter (purely informational).
    """

    id: int
    op: str
    inputs: tuple[int, ...] = ()
    attrs: dict = field(default_factory=dict)
    shape: tuple = ()
    dtype: object = None
    value: np.ndarray | None = None
    param: str | None = None

    @property
    def is_constant(self) -> bool:
        return self.op == "constant"

    @property
    def is_placeholder(self) -> bool:
        return self.op == "placeholder"


class Graph:
    """A topologically ordered static operator graph.

    Nodes are stored in an insertion-ordered dict keyed by id; iteration
    order is execution order.  ``inputs`` lists the placeholder ids in call
    order; ``outputs`` lists the ids whose values the compiled call returns.
    """

    def __init__(self) -> None:
        self._nodes: dict[int, Node] = {}
        self._next_id = 0
        self.inputs: list[int] = []
        self.outputs: list[int] = []

    # -- construction -----------------------------------------------------------

    def add_node(
        self,
        op: str,
        inputs: Iterable[int] = (),
        attrs: dict | None = None,
        shape: tuple = (),
        dtype=None,
        value: np.ndarray | None = None,
        param: str | None = None,
    ) -> Node:
        """Append a node; returns it.  Inputs must already be in the graph."""

        inputs = tuple(int(i) for i in inputs)
        for parent in inputs:
            if parent not in self._nodes:
                raise GraphError(f"input node {parent} does not exist")
        node = Node(
            id=self._next_id,
            op=op,
            inputs=inputs,
            attrs=dict(attrs or {}),
            shape=tuple(shape),
            dtype=dtype,
            value=value,
            param=param,
        )
        self._nodes[node.id] = node
        self._next_id += 1
        return node

    # -- access -----------------------------------------------------------------

    def node(self, node_id: int) -> Node:
        return self._nodes[node_id]

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        """Iterate nodes in execution (topological) order."""

        return iter(self._nodes.values())

    def nodes(self) -> list[Node]:
        """Snapshot list of nodes in execution order (safe to rewrite during)."""

        return list(self._nodes.values())

    def consumer_counts(self) -> dict[int, int]:
        """Number of graph-internal consumers per node (outputs add one)."""

        counts: dict[int, int] = {nid: 0 for nid in self._nodes}
        for node in self._nodes.values():
            for parent in node.inputs:
                counts[parent] += 1
        for out in self.outputs:
            counts[out] += 1
        return counts

    # -- rewriting --------------------------------------------------------------

    def replace_node(self, node_id: int, **changes) -> Node:
        """Replace fields of a node in place (id and position preserved)."""

        node = self._nodes[node_id]
        for parent in changes.get("inputs", ()):  # validate new edges
            if parent not in self._nodes:
                raise GraphError(f"input node {parent} does not exist")
        new = replace(node, **changes)
        if new.id != node_id:
            raise GraphError("replace_node must not change the node id")
        self._nodes[node_id] = new
        return new

    def remove_nodes(self, node_ids: Iterable[int]) -> None:
        """Delete nodes; they must have no remaining consumers."""

        doomed = set(node_ids)
        counts = self.consumer_counts()
        for node in self._nodes.values():
            if node.id in doomed:
                continue
            for parent in node.inputs:
                if parent in doomed:
                    raise GraphError(
                        f"cannot remove node {parent}: still consumed by {node.id}"
                    )
        for out in self.outputs:
            if out in doomed:
                raise GraphError(f"cannot remove output node {out}")
        for nid in doomed:
            self._nodes.pop(nid, None)
        self.inputs = [i for i in self.inputs if i not in doomed]

    def fuse(
        self,
        root_id: int,
        absorbed_ids: Iterable[int],
        op: str,
        inputs: Iterable[int],
        attrs: dict | None = None,
    ) -> Node:
        """Replace ``root_id`` with a fused node and delete the absorbed nodes.

        The fused node keeps the root's id, shape and dtype, so the root's
        consumers are untouched; ``absorbed_ids`` must be consumed only
        within the fused set (the fusion rule's matcher guarantees this).
        """

        root = self._nodes[root_id]
        self.replace_node(
            root_id, op=op, inputs=tuple(int(i) for i in inputs), attrs=dict(attrs or {})
        )
        absorbed = [i for i in absorbed_ids if i != root_id]
        self.remove_nodes(absorbed)
        return self._nodes[root_id]

    # -- introspection ----------------------------------------------------------

    def op_counts(self) -> dict[str, int]:
        """Histogram of op names (used by tests and the quickstart example)."""

        counts: dict[str, int] = {}
        for node in self:
            counts[node.op] = counts.get(node.op, 0) + 1
        return counts

    def validate(self) -> None:
        """Check topological ordering and edge integrity (debug helper)."""

        seen: set[int] = set()
        for node in self:
            for parent in node.inputs:
                if parent not in seen:
                    raise GraphError(
                        f"node {node.id} ({node.op}) consumes {parent} "
                        "which does not precede it"
                    )
            seen.add(node.id)
        for out in self.outputs:
            if out not in self._nodes:
                raise GraphError(f"output {out} is not a graph node")
        for inp in self.inputs:
            if inp not in self._nodes or not self._nodes[inp].is_placeholder:
                raise GraphError(f"input {inp} is not a placeholder node")

    def __str__(self) -> str:
        lines = []
        for node in self:
            if node.is_placeholder:
                rhs = f"placeholder[shape={node.shape}]"
            elif node.is_constant:
                origin = f" <- {node.param}" if node.param else ""
                rhs = f"constant[shape={node.shape}]{origin}"
            else:
                args = ", ".join(f"%{i}" for i in node.inputs)
                extras = ", ".join(
                    f"{k}={_short(v)}" for k, v in sorted(node.attrs.items())
                )
                rhs = f"{node.op}({args})" + (f" {{{extras}}}" if extras else "")
            marker = "  # output" if node.id in self.outputs else ""
            lines.append(f"%{node.id} = {rhs} : {node.shape}{marker}")
        return "\n".join(lines)


def _short(value) -> str:
    if isinstance(value, np.ndarray):
        return f"ndarray{value.shape}"
    if isinstance(value, tuple) and any(isinstance(v, np.ndarray) for v in value):
        return "(" + ", ".join(_short(v) for v in value) + ")"
    if isinstance(value, slice):
        return "slice"
    return repr(value)
