"""Compiled-module runtime: shape-specialized plans over optimized graphs.

:class:`CompiledModule` is the user-facing artifact of the engine.  It keeps
the source :class:`~repro.nn.module.Module` and lazily builds, per input
*shape signature*:

* one optimized :class:`~repro.engine.graph.Graph` (traced on first use of
  the signature, shared across threads under a lock), and
* one :class:`ExecutionPlan` *per thread* — the plan owns preallocated
  output buffers, so plans are intentionally not shared between threads
  (the simulated-cluster ranks and the serving worker pool each get their
  own buffers while sharing the trace).

Steady-state calls therefore run a flat list of buffered numpy kernels with
no per-op Python graph bookkeeping and no intermediate tensor allocations.

Parity contract
---------------
For every supported module the compiled call computes the *same floating
point operations in the same order* as the eager forward pass: kernels use
``out=`` variants of the identical ufuncs, constant folding replays the
eager expressions once, and fusion only removes dispatch (see
:mod:`repro.engine.passes`).  Outputs are therefore bitwise identical to
eager mode — the property tests in ``tests/engine`` and the ``validate=``
flag enforce it.  The documented exception: a module whose forward performs
value-dependent Python control flow or math outside the
:mod:`repro.autodiff.ops` primitives is outside the traceable subset (the
tracer misses it) — ``validate=True`` catches such modules at trace time.

Parameter mutation (``load_state_dict``) mostly flows into compiled graphs
because captured constants alias parameter storage, but call
:meth:`CompiledModule.retrace` after mutating parameters for a guaranteed
refresh; checkpoint loading via :mod:`repro.io.checkpoint` does this.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..autodiff.tensor import DEFAULT_DTYPE, Tensor
from ..nn.module import Module
from ..obs import memory as obs_memory
from .graph import Graph
from .kernels import build_step, step_bytes
from .passes import optimize
from .trace import TraceError, trace

__all__ = [
    "ExecutionPlan",
    "PlanCache",
    "CompiledModule",
    "ModuleCache",
    "compile_module",
    "compile_solver",
]


class ExecutionPlan:
    """A graph bound to preallocated buffers for one input-shape signature.

    Not thread-safe: the plan's kernels write into buffers owned by the
    plan.  :class:`CompiledModule` builds one plan per thread, and the plan
    *enforces* that contract — it binds to the first thread that runs it and
    raises :class:`RuntimeError` when any other thread calls :meth:`run`,
    instead of silently corrupting shared buffers.

    ``profiler`` (a :class:`~repro.obs.profile.KernelProfiler`) opts the plan
    into per-kernel timing: every step is clocked and attributed to its op.
    Profiled runs execute the identical kernels on the identical buffers, so
    outputs stay bitwise equal; without a profiler, ``run`` is the exact
    unclocked loop.
    """

    def __init__(self, graph: Graph, profiler=None):
        self._owner_thread: int | None = None
        slot_of: dict[int, int] = {}
        for position, node in enumerate(graph):
            slot_of[node.id] = position
        self._slots: list = [None] * len(slot_of)
        self._buffers: list[np.ndarray] = []
        self._steps = []
        self._step_info: list[tuple[str, int]] = []
        self._profiler = profiler
        for node in graph:
            if node.is_placeholder:
                continue
            if node.is_constant:
                self._slots[slot_of[node.id]] = node.value
                continue
            src = [slot_of[i] for i in node.inputs]
            self._steps.append(build_step(node, src, slot_of[node.id], self._alloc))
            self._step_info.append((node.op, step_bytes(node)))
        self._input_slots = [slot_of[i] for i in graph.inputs]
        self._output_slots = [slot_of[i] for i in graph.outputs]

    def _alloc(self, shape, dtype) -> np.ndarray:
        buffer = np.empty(shape, dtype=dtype if dtype is not None else DEFAULT_DTYPE)
        self._buffers.append(buffer)
        obs_memory.add(obs_memory.ENGINE_PLAN_BUFFERS, buffer.nbytes)
        return buffer

    def release_accounting(self) -> None:
        """Return this plan's bytes to the memory accountant (plan dropped).

        ``buffer_bytes`` is read at release time, so plans that grew after
        construction (bucketed specializations) stay balanced.
        """

        obs_memory.sub(obs_memory.ENGINE_PLAN_BUFFERS, self.buffer_bytes)

    @property
    def buffer_bytes(self) -> int:
        """Total bytes of the plan's preallocated intermediate buffers."""

        return sum(int(b.nbytes) for b in self._buffers)

    def _claim_owner(self) -> None:
        # Enforce the one-plan-per-thread contract.  The first runner binds
        # the plan (a benign race: two simultaneous first calls were already
        # corrupting buffers before any check could exist); every later call
        # from another thread is a caller bug surfaced loudly.
        ident = threading.get_ident()
        owner = self._owner_thread
        if owner is None:
            self._owner_thread = ident
        elif owner != ident:
            raise RuntimeError(
                f"{type(self).__name__} is bound to thread {owner} and was "
                f"run from thread {ident}; plans own their buffers and are "
                "not thread-safe — build one plan per thread "
                "(CompiledModule and the jet runtime do this automatically)"
            )

    def run(self, arrays: list[np.ndarray]) -> list[np.ndarray]:
        """Execute the plan; returned arrays may alias plan buffers."""

        self._claim_owner()
        slots = self._slots
        for slot, array in zip(self._input_slots, arrays):
            slots[slot] = array
        profiler = self._profiler
        if profiler is None:
            for step in self._steps:
                step(slots)
        else:
            clock = time.perf_counter
            record = profiler.record
            for step, (op, nbytes) in zip(self._steps, self._step_info):
                tic = clock()
                step(slots)
                record(op, clock() - tic, nbytes)
        return [slots[slot] for slot in self._output_slots]



def _release_accounting(plan) -> None:
    """Credit a retired plan's buffers back to the memory accountant.

    Duck-typed: the cache also holds test doubles and plan variants that
    never registered allocations, which simply lack the hook.
    """

    release = getattr(plan, "release_accounting", None)
    if release is not None:
        release()


class PlanCache:
    """A byte-accounted LRU of execution plans.

    Per-thread companion of :class:`CompiledModule` (and of the jet-program
    runtime in :mod:`repro.engine.jet`): each thread owns one cache, so no
    locking happens on the hot path.  Every inserted plan is charged its
    preallocated ``buffer_bytes``; once the total exceeds ``max_bytes`` the
    least recently used plans are dropped — except the newest entry, which
    is always kept so a single oversized plan still executes (it just
    prevents hoarding siblings).  ``on_evict(key, nbytes)`` lets the owner
    aggregate eviction counters across threads.
    """

    def __init__(self, max_bytes: int | None = None, on_evict=None):
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[object, tuple]" = OrderedDict()
        self._on_evict = on_evict
        self.bytes_in_use = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def get(self, key):
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        return entry[0]

    def put(self, key, plan) -> None:
        nbytes = int(plan.buffer_bytes)
        previous = self._entries.pop(key, None)
        if previous is not None:
            self.bytes_in_use -= previous[1]
            _release_accounting(previous[0])
        self._entries[key] = (plan, nbytes)
        self.bytes_in_use += nbytes
        if self.max_bytes is None:
            return
        while self.bytes_in_use > self.max_bytes and len(self._entries) > 1:
            old_key, (old_plan, old_bytes) = self._entries.popitem(last=False)
            self.bytes_in_use -= old_bytes
            _release_accounting(old_plan)
            if self._on_evict is not None:
                self._on_evict(old_key, old_bytes)

    def clear(self) -> None:
        for plan, _ in self._entries.values():
            _release_accounting(plan)
        self._entries.clear()
        self.bytes_in_use = 0


@dataclass
class EngineStats:
    """Counters of one :class:`CompiledModule` (diagnostics and tests).

    ``plan_bytes`` approximates the bytes currently held by per-thread plan
    caches (plans owned by threads that exited are still counted until the
    module is retraced); ``plan_evictions``/``plan_bytes_evicted`` count
    LRU evictions triggered by a ``max_plan_bytes`` budget.
    """

    calls: int = 0
    traces: int = 0
    plan_builds: int = 0
    plan_evictions: int = 0
    plan_bytes: int = 0
    plan_bytes_evicted: int = 0

    def as_dict(self) -> dict:
        return {"calls": self.calls, "traces": self.traces,
                "plan_builds": self.plan_builds,
                "plan_evictions": self.plan_evictions,
                "plan_bytes": self.plan_bytes,
                "plan_bytes_evicted": self.plan_bytes_evicted}


class CompiledModule:
    """Trace-and-fuse compiled wrapper around an :class:`~repro.nn.module.Module`.

    Exposes the same ``__call__`` contract as the source module (tensors in,
    detached :class:`~repro.autodiff.tensor.Tensor` out) with bitwise-equal
    outputs; see the module docstring for the parity contract.

    Parameters
    ----------
    module:
        The source module; kept (unmodified) for re-tracing and checkpointing.
    passes:
        Optimization pipeline; default
        :data:`~repro.engine.passes.DEFAULT_PASSES`.
    copy_outputs:
        When ``True`` (default) outputs are copied out of the plan's buffers,
        making calls safe to interleave freely.  ``False`` returns the
        buffers themselves — fully allocation-free, but the arrays are
        overwritten by the next same-shape call on the same thread.
    validate:
        When ``True``, every fresh trace is immediately checked bitwise
        against an eager forward pass of the same inputs (costs one eager
        call per new shape signature).
    max_plan_bytes:
        Memory budget for each thread's execution-plan cache.  Plans own
        preallocated buffers sized by their input shapes, so serving many
        distinct shapes would otherwise grow per-thread memory without
        bound; with a budget the least recently used plans are evicted
        (:class:`PlanCache`), counted in ``stats.plan_evictions``.  ``None``
        (default) keeps every plan, matching the previous behaviour.
    profile:
        Opt into per-kernel profiling: every executed plan step is timed and
        attributed to its op in :attr:`profiler`
        (:class:`~repro.obs.profile.KernelProfiler`), along with plan-cache
        events.  Results stay bitwise identical; see
        :meth:`kernel_report`.
    parallel:
        Build :class:`~repro.engine.parallel.ParallelExecutionPlan` plans:
        independent steps of one dependency wave overlap on a shared kernel
        thread pool.  Outputs stay bitwise identical (the per-step math and
        the dependent-step order are unchanged).
    """

    def __init__(
        self,
        module: Module,
        passes=None,
        copy_outputs: bool = True,
        validate: bool = False,
        max_plan_bytes: int | None = None,
        profile: bool = False,
        parallel: bool = False,
    ):
        self.module = module
        self.passes = passes
        self.copy_outputs = bool(copy_outputs)
        self.validate = bool(validate)
        self.max_plan_bytes = max_plan_bytes
        self.parallel = bool(parallel)
        self.profiler = None
        if profile:
            from ..obs.profile import KernelProfiler

            self.profiler = KernelProfiler()
        self.stats = EngineStats()
        self._graphs: dict[tuple, Graph] = {}
        self._multi_output: dict[tuple, bool] = {}
        self._lock = threading.Lock()
        self._generation = 0
        self._tls = threading.local()

    # -- attribute passthrough ---------------------------------------------------

    def __getattr__(self, name: str):
        # Only called on misses: delegate public attributes (boundary_size,
        # config, ...) to the source module so the compiled wrapper can stand
        # in for it structurally, not just callably.
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            module = self.__dict__["module"]
        except KeyError:
            raise AttributeError(name) from None
        return getattr(module, name)

    # -- compilation -------------------------------------------------------------

    @staticmethod
    def _as_arrays(inputs: tuple) -> list[np.ndarray]:
        # Mirror the eager conversion exactly: astensor/Tensor coerce every
        # input to the library default dtype (no copy when already float64).
        return [
            np.asarray(x.data if isinstance(x, Tensor) else x, dtype=DEFAULT_DTYPE)
            for x in inputs
        ]

    def _graph_for(self, signature: tuple, arrays: list[np.ndarray]) -> Graph:
        with self._lock:
            graph = self._graphs.get(signature)
            if graph is not None:
                return graph
            graph = optimize(trace(self.module, *arrays), self.passes)
            self.stats.traces += 1
            if self.validate:
                self._check_parity(graph, arrays)
            self._graphs[signature] = graph
            self._multi_output[signature] = len(graph.outputs) > 1
            return graph

    def _check_parity(self, graph: Graph, arrays: list[np.ndarray]) -> None:
        from ..autodiff import no_grad

        parity_plan = ExecutionPlan(graph)
        try:
            compiled = parity_plan.run(arrays)
        finally:
            # Transient plan: its buffers die with this frame, so the memory
            # accountant must not keep counting them.
            parity_plan.release_accounting()
        with no_grad():
            # Wrap inputs exactly as trace() does: a module applying Python
            # operators to raw ndarray inputs would otherwise take numpy's
            # operator path instead of the Tensor one and falsely diverge.
            eager = self.module(*[Tensor(a) for a in arrays])
        eager = eager if isinstance(eager, tuple) else (eager,)
        for ours, theirs in zip(compiled, eager):
            reference = theirs.data
            if ours.shape != reference.shape or ours.tobytes() != reference.tobytes():
                raise TraceError(
                    "compiled output diverges from the eager forward pass; "
                    "the module is outside the traceable subset (math outside "
                    "repro.autodiff.ops, or value-dependent control flow)"
                )

    def _record_eviction(self, key, nbytes: int) -> None:
        with self._lock:
            self.stats.plan_evictions += 1
            self.stats.plan_bytes_evicted += nbytes
            self.stats.plan_bytes -= nbytes
        if self.profiler is not None:
            self.profiler.count("plan_eviction")

    def _plan_for(self, signature: tuple, arrays: list[np.ndarray]) -> ExecutionPlan:
        tls = self._tls
        if getattr(tls, "generation", None) != self._generation:
            # Retire this thread's stale-generation plans explicitly so the
            # memory accountant sees their buffers released (other threads'
            # caches retire the same way on their next call).
            stale = getattr(tls, "plans", None)
            if stale is not None:
                stale.clear()
            tls.plans = PlanCache(self.max_plan_bytes, on_evict=self._record_eviction)
            tls.generation = self._generation
        plan = tls.plans.get(signature)
        if plan is None:
            if self.parallel:
                from .parallel import ParallelExecutionPlan as plan_cls
            else:
                plan_cls = ExecutionPlan
            plan = plan_cls(
                self._graph_for(signature, arrays), profiler=self.profiler
            )
            tls.plans.put(signature, plan)
            with self._lock:
                self.stats.plan_builds += 1
                self.stats.plan_bytes += plan.buffer_bytes
            if self.profiler is not None:
                self.profiler.count("plan_build")
        return plan

    # -- execution ---------------------------------------------------------------

    def predict(self, *inputs) -> np.ndarray:
        """Run the compiled graph and return the raw output array(s)."""

        arrays = self._as_arrays(inputs)
        signature = tuple(a.shape for a in arrays)
        plan = self._plan_for(signature, arrays)
        self.stats.calls += 1
        outputs = plan.run(arrays)
        if self.copy_outputs:
            outputs = [out.copy() for out in outputs]
        if self._multi_output.get(signature, False):
            return tuple(outputs)
        return outputs[0]

    def __call__(self, *inputs):
        """Compiled forward pass; same contract as ``module(*inputs)``."""

        result = self.predict(*inputs)
        if isinstance(result, tuple):
            return tuple(Tensor(out) for out in result)
        return Tensor(result)

    # -- management --------------------------------------------------------------

    def graph_for(self, *example_inputs) -> Graph:
        """The optimized graph for the given inputs' shapes (for inspection)."""

        arrays = self._as_arrays(example_inputs)
        return self._graph_for(tuple(a.shape for a in arrays), arrays)

    @property
    def signatures(self) -> list[tuple]:
        """Shape signatures compiled so far."""

        with self._lock:
            return list(self._graphs)

    def retrace(self) -> None:
        """Drop every cached graph and plan (call after mutating parameters).

        Plans held by other threads are invalidated lazily through a
        generation counter checked on their next call.
        """

        with self._lock:
            self._graphs.clear()
            self._multi_output.clear()
            self._generation += 1
            self.stats.plan_bytes = 0

    def kernel_report(self, n: int = 10) -> str:
        """Top-kernels table of the attached profiler (requires ``profile=True``)."""

        if self.profiler is None:
            raise RuntimeError(
                "per-kernel profiling is off; build with compile_module(..., "
                "profile=True)"
            )
        return self.profiler.report(n)


def compile_module(
    module: Module,
    *example_inputs,
    passes=None,
    copy_outputs: bool = True,
    validate: bool = False,
    max_plan_bytes: int | None = None,
    profile: bool = False,
    parallel: bool = False,
) -> CompiledModule:
    """Compile ``module`` for inference; optionally pre-trace example inputs.

    Returns a :class:`CompiledModule`; when ``example_inputs`` are given the
    first shape signature is traced eagerly (otherwise tracing happens on
    first call).
    """

    compiled = CompiledModule(
        module, passes=passes, copy_outputs=copy_outputs, validate=validate,
        max_plan_bytes=max_plan_bytes, profile=profile, parallel=parallel,
    )
    if example_inputs:
        compiled.graph_for(*example_inputs)
    return compiled


# ---------------------------------------------------------------------------
# Compiled-module cache (per-geometry caching in the serving layer)
# ---------------------------------------------------------------------------


class ModuleCache:
    """A small thread-safe LRU of :class:`CompiledModule` instances.

    The serving :class:`~repro.serving.server.Server` keys this like its LRU
    solution cache — one entry per (model, geometry-group) — so worker ranks
    spawned for successive batches reuse the same traced graphs instead of
    re-tracing per batch.
    """

    def __init__(self, maxsize: int = 8):
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[tuple, CompiledModule]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_create(self, key, factory) -> CompiledModule:
        """Return the cached module for ``key``, building it on a miss."""

        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry
            self.misses += 1
            entry = factory()
            self._entries[key] = entry
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            return entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def engine_stats(self) -> dict:
        """Aggregate engine counters over every cached compiled module.

        Used by :meth:`repro.serving.server.Server` stats reporting to
        surface plan-cache memory use and evictions alongside the serving
        counters.
        """

        with self._lock:
            totals = EngineStats()
            for module in self._entries.values():
                stats = module.stats
                totals.calls += stats.calls
                totals.traces += stats.traces
                totals.plan_builds += stats.plan_builds
                totals.plan_evictions += stats.plan_evictions
                totals.plan_bytes += stats.plan_bytes
                totals.plan_bytes_evicted += stats.plan_bytes_evicted
            report = totals.as_dict()
            report["modules"] = len(self._entries)
            report["module_cache_hits"] = self.hits
            report["module_cache_misses"] = self.misses
            return report

    def kernel_profile(self):
        """Merged :class:`~repro.obs.profile.KernelProfiler` over cached modules.

        Returns ``None`` when no cached module was compiled with
        ``profile=True``.
        """

        from ..obs.profile import KernelProfiler

        with self._lock:
            profilers = [
                module.profiler
                for module in self._entries.values()
                if module.profiler is not None
            ]
        if not profilers:
            return None
        merged = KernelProfiler()
        for profiler in profilers:
            merged.merge(profiler)
        return merged


def compile_solver(
    solver, cache: ModuleCache | None = None, cache_key=None,
    max_plan_bytes: int | None = None, profile: bool = False,
    parallel: bool = False,
):
    """Enable the inference engine on a neural subdomain solver.

    ``SDNetSubdomainSolver`` instances (including subclasses) get a
    :class:`CompiledModule` of their model attached *in place* — fetched
    from ``cache`` when one is given, keyed by ``(id(model), cache_key)`` —
    and are returned, so caller-held references keep accruing the solver's
    ``inference_calls``/``points_evaluated`` counters.  Solvers with nothing
    to compile — e.g. the exact finite-difference solver — pass through
    unchanged, which makes ``engine=True`` a no-op rather than an error for
    non-neural configurations.  Predictions are bitwise identical either
    way, so enabling the engine on a shared solver only changes its speed.
    """

    from ..mosaic.solvers import SDNetSubdomainSolver

    if not isinstance(solver, SDNetSubdomainSolver) or solver.engine is not None:
        return solver
    model = solver.model
    if cache is not None:
        compiled = cache.get_or_create(
            (id(model), cache_key),
            lambda: compile_module(
                model, max_plan_bytes=max_plan_bytes, profile=profile,
                parallel=parallel,
            ),
        )
    else:
        compiled = compile_module(
            model, max_plan_bytes=max_plan_bytes, profile=profile,
            parallel=parallel,
        )
    solver.engine = compiled
    return solver
