"""Compiled loss-and-gradient (jet) programs: the engine in the training loop.

PR 3's :class:`~repro.engine.runtime.CompiledModule` compiles *inference*
forward passes.  The training hot path is different: the physics loss
evaluates second directional derivatives of the network (the Taylor-mode
Laplacian) at thousands of collocation points, then differentiates the
result with respect to the parameters.  Eagerly that means building a tape
over the jet propagation and walking it backwards, paying per-op Python
dispatch, closure allocation and fresh array allocations twice per step.

The key observation is that the *entire* computation — the stacked
Taylor-jet forward of :func:`~repro.autodiff.taylor.taylor_seed_directions`
**and** the reverse sweep of :func:`repro.autodiff.grad` — is expressed in
the primitive operations of :mod:`repro.autodiff.ops`: every VJP is written
in terms of other primitives.  So a single :func:`~repro.engine.trace.trace_program`
call with gradient recording enabled records the forward *and* the
hand-derived backward into one static graph, whose outputs are the loss
value and every parameter gradient.  That graph then goes through the
training pass pipeline (:data:`~repro.engine.passes.TRAINING_PASSES`:
mutation-safe constant folding, Faà di Bruno jet fusion, VJP-chain fusion,
DCE) and executes through preallocated plans — bitwise identical to the
eager tape, with no tape.

:class:`CompiledValueAndGrad` manages the resulting programs across input
shapes: collocation batches vary per step, so plans are **bucketed** over
the batch dimension (:mod:`repro.engine.bucketing`) — one template per
power-of-two capacity, specialized by view to any smaller batch — with a
per-thread byte-budgeted :class:`~repro.engine.runtime.PlanCache` on top.
In-place parameter updates (every optimizer in :mod:`repro.optim`) flow
into the compiled program through aliasing constants, so no re-tracing
happens between training steps.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..autodiff import functional
from ..autodiff.tensor import DEFAULT_DTYPE, Tensor, enable_grad
from ..nn.module import Module
from .bucketing import BucketedPlan, BucketingError, bucket_capacity, build_template
from .graph import Graph
from .passes import TRAINING_PASSES, optimize
from .runtime import ExecutionPlan, PlanCache
from .trace import TraceError, trace_program

__all__ = ["JetStats", "CompiledValueAndGrad", "compile_value_and_grad"]


@dataclass
class JetStats:
    """Counters of one :class:`CompiledValueAndGrad` (diagnostics and tests)."""

    calls: int = 0
    #: eager traces taken (three per bucket template — two fit probes and a
    #: verification probe; capacity-2 buckets need only the two fit probes —
    #: plus one per exact-shape signature)
    traces: int = 0
    #: plans built (bucketed or exact; one per thread per cache key)
    plan_builds: int = 0
    #: bucket templates successfully unified
    bucket_templates: int = 0
    #: signatures that fell back to exact-shape plans
    bucket_fallbacks: int = 0
    #: per-batch-size specializations built inside bucketed plans
    specializations: int = 0
    plan_evictions: int = 0
    plan_bytes: int = 0
    plan_bytes_evicted: int = 0

    def as_dict(self) -> dict:
        return {
            "calls": self.calls, "traces": self.traces,
            "plan_builds": self.plan_builds,
            "bucket_templates": self.bucket_templates,
            "bucket_fallbacks": self.bucket_fallbacks,
            "specializations": self.specializations,
            "plan_evictions": self.plan_evictions,
            "plan_bytes": self.plan_bytes,
            "plan_bytes_evicted": self.plan_bytes_evicted,
        }


class CompiledValueAndGrad:
    """Compile ``fn`` plus its parameter gradients into one static program.

    Parameters
    ----------
    fn:
        ``fn(*tensors) -> Tensor`` returning a scalar loss, built from
        :mod:`repro.autodiff.ops` primitives (e.g. a closure over
        ``laplace_residual_loss``).  Value-dependent Python control flow is
        baked in at trace time, exactly as for :func:`~repro.engine.trace.trace`.
    module:
        The module owning the trainable parameters.  Gradients are returned
        for ``module.parameters()``, in that order; captured parameter
        constants alias the parameter storage so in-place optimizer updates
        flow into the program without re-tracing (call :meth:`retrace`
        after wholesale parameter *replacement*).
    grad_transform:
        Optional ``Tensor -> Tensor`` applied to the loss before the
        reverse sweep (e.g. PDE-loss weighting); the returned *value* is
        always the untransformed loss.
    passes:
        Pass pipeline; defaults to the mutation-safe
        :data:`~repro.engine.passes.TRAINING_PASSES`.
    bucketing:
        Reuse plans across batch sizes through power-of-two bucketed
        templates (axis 0 of every input is treated as the batch).  Shapes
        the template machinery cannot unify fall back to exact-shape plans
        automatically.
    max_plan_bytes:
        Per-thread plan-cache memory budget (see
        :class:`~repro.engine.runtime.PlanCache`).
    validate:
        Check each newly built plan bitwise against an eager evaluation the
        first time every (plan, batch-size) pair runs.
    profile:
        Opt into per-kernel profiling: every executed plan step is timed and
        attributed to its op in :attr:`profiler`
        (:class:`~repro.obs.profile.KernelProfiler`), together with
        plan-build/specialization/eviction events.  Results stay bitwise
        identical; see :meth:`kernel_report`.

    Calling the object returns ``(loss, grads)`` with ``loss`` a 0-d numpy
    array and ``grads`` a list of arrays aligned with
    ``module.parameters()`` — bitwise identical to the eager tape.
    """

    def __init__(
        self,
        fn,
        module: Module,
        grad_transform=None,
        passes=None,
        bucketing: bool = True,
        max_plan_bytes: int | None = None,
        validate: bool = False,
        copy_outputs: bool = True,
        profile: bool = False,
    ):
        self.fn = fn
        self.module = module
        self.grad_transform = grad_transform
        self.passes = TRAINING_PASSES if passes is None else passes
        self.bucketing = bool(bucketing)
        self.max_plan_bytes = max_plan_bytes
        self.validate = bool(validate)
        self.copy_outputs = bool(copy_outputs)
        self.profiler = None
        if profile:
            from ..obs.profile import KernelProfiler

            self.profiler = KernelProfiler()
        self.params = module.parameters()
        self.stats = JetStats()
        self._templates: dict = {}
        self._graphs: dict = {}
        self._lock = threading.Lock()
        self._generation = 0
        self._tls = threading.local()
        self._validated: set = set()

    # -- the traced program ------------------------------------------------------

    def _program(self, *inputs):
        value = self.fn(*inputs)
        if not isinstance(value, Tensor):
            raise TraceError(
                f"loss callable returned {type(value).__name__}; expected Tensor"
            )
        target = value if self.grad_transform is None else self.grad_transform(value)
        grads = functional.grad(target, self.params, create_graph=False)
        return (value, *grads)

    def _trace(self, arrays) -> Graph:
        graph = trace_program(self._program, arrays, params=self.module, grad=True)
        with self._lock:
            self.stats.traces += 1
        return optimize(graph, self.passes)

    # -- eager reference (validation and tests) ----------------------------------

    def eager(self, *inputs):
        """Run the identical program eagerly; returns ``(loss, grads)``."""

        tensors = [
            x if isinstance(x, Tensor) else Tensor(np.asarray(x, dtype=DEFAULT_DTYPE))
            for x in inputs
        ]
        with enable_grad():
            outputs = self._program(*tensors)
        return outputs[0].data, [g.data for g in outputs[1:]]

    # -- plan resolution ---------------------------------------------------------

    def _record_eviction(self, key, nbytes: int) -> None:
        with self._lock:
            self.stats.plan_evictions += 1
            self.stats.plan_bytes_evicted += nbytes
            self.stats.plan_bytes -= nbytes
        if self.profiler is not None:
            self.profiler.count("plan_eviction")

    def _plans(self) -> PlanCache:
        tls = self._tls
        if getattr(tls, "generation", None) != self._generation:
            # Retire this thread's stale-generation plans explicitly so the
            # memory accountant sees their buffers released.
            stale = getattr(tls, "plans", None)
            if stale is not None:
                stale.clear()
            tls.plans = PlanCache(self.max_plan_bytes, on_evict=self._record_eviction)
            tls.generation = self._generation
        return tls.plans

    def _probe_arrays(self, arrays, probe_batch: int):
        """Build probe inputs of a given batch size from real call arrays."""

        probes = []
        for array in arrays:
            batch = array.shape[0]
            if probe_batch <= batch:
                probes.append(array[:probe_batch])
            else:
                probes.append(
                    np.concatenate([array, array[: probe_batch - batch]], axis=0)
                )
        return probes

    def _template_for(self, key, capacity: int, arrays):
        with self._lock:
            if key in self._templates:
                return self._templates[key]
        small = capacity // 2
        template = None
        if small >= 1:
            try:
                graph_cap = self._trace(self._probe_arrays(arrays, capacity))
                graph_small = self._trace(self._probe_arrays(arrays, small))
                # Third probe: verifies every affine fit and disambiguates
                # fill-constant laws (two probes fit both candidate laws).
                # Capacity-2 buckets only ever serve their probe sizes, so
                # they need no verification probe.
                check = None
                if capacity - 1 > small:
                    check_batch = capacity - 1
                    check = (
                        self._trace(self._probe_arrays(arrays, check_batch)),
                        check_batch,
                    )
                template = build_template(
                    graph_cap, capacity, graph_small, small, check=check
                )
            except BucketingError:
                template = None
        with self._lock:
            if key not in self._templates:
                self._templates[key] = template
                if template is not None:
                    self.stats.bucket_templates += 1
                else:
                    self.stats.bucket_fallbacks += 1
            return self._templates[key]

    def _graph_for(self, signature, arrays) -> Graph:
        with self._lock:
            graph = self._graphs.get(signature)
        if graph is not None:
            return graph
        graph = self._trace(arrays)
        with self._lock:
            self._graphs.setdefault(signature, graph)
            return self._graphs[signature]

    def _check(self, tag, arrays, outputs) -> None:
        if not self.validate or tag in self._validated:
            return
        loss, grads = self.eager(*arrays)
        reference = [loss, *grads]
        for ours, theirs in zip(outputs, reference):
            if ours.shape != theirs.shape or ours.tobytes() != theirs.tobytes():
                raise TraceError(
                    "compiled loss program diverges from the eager tape; the "
                    "loss callable is outside the traceable subset (math "
                    "outside repro.autodiff.ops, or value-dependent control "
                    "flow)"
                )
        self._validated.add(tag)

    # -- execution ---------------------------------------------------------------

    def __call__(self, *inputs):
        arrays = [
            np.asarray(x.data if isinstance(x, Tensor) else x, dtype=DEFAULT_DTYPE)
            for x in inputs
        ]
        signature = tuple(a.shape for a in arrays)
        outputs = self._run(signature, arrays)
        if self.copy_outputs:
            outputs = [out.copy() for out in outputs]
        with self._lock:
            self.stats.calls += 1
        return outputs[0], outputs[1:]

    def _run(self, signature, arrays):
        plans = self._plans()
        batch = signature[0][0] if signature and len(signature[0]) else None
        if self.bucketing and batch is not None and batch >= 1:
            capacity = bucket_capacity(batch)
            key = ("bucket", capacity, tuple(s[1:] for s in signature))
            template = self._template_for(key, capacity, arrays)
            if template is not None:
                template_batch = template.batch_for(list(signature))
                if template_batch is not None:
                    plan = plans.get(key)
                    if plan is None:
                        plan = BucketedPlan(template, profiler=self.profiler)
                        plans.put(key, plan)
                        with self._lock:
                            self.stats.plan_builds += 1
                            self.stats.plan_bytes += plan.buffer_bytes
                        if self.profiler is not None:
                            self.profiler.count("plan_build")
                    new_spec = not plan.has_specialization(template_batch)
                    before_bytes = plan.buffer_bytes if new_spec else 0
                    outputs = plan.run(arrays, template_batch)
                    if new_spec:
                        with self._lock:
                            self.stats.specializations += 1
                            # fill constants materialized by the new
                            # specialization count toward plan memory
                            self.stats.plan_bytes += plan.buffer_bytes - before_bytes
                    self._check((key, template_batch), arrays, outputs)
                    return outputs
        # exact-shape path (bucketing off, batch 0, or template failure)
        key = ("exact", signature)
        plan = plans.get(key)
        if plan is None:
            plan = ExecutionPlan(
                self._graph_for(signature, arrays), profiler=self.profiler
            )
            plans.put(key, plan)
            with self._lock:
                self.stats.plan_builds += 1
                self.stats.plan_bytes += plan.buffer_bytes
            if self.profiler is not None:
                self.profiler.count("plan_build")
        outputs = plan.run(arrays)
        self._check(key, arrays, outputs)
        return outputs

    # -- management --------------------------------------------------------------

    def kernel_report(self, n: int = 10) -> str:
        """Top-kernels table of the attached profiler (requires ``profile=True``)."""

        if self.profiler is None:
            raise RuntimeError(
                "per-kernel profiling is off; build with "
                "compile_value_and_grad(..., profile=True)"
            )
        return self.profiler.report(n)

    def retrace(self) -> None:
        """Drop every template, graph and plan (after parameter replacement)."""

        with self._lock:
            # Re-snapshot the parameter list: wholesale replacement of
            # Parameter objects would otherwise leave gradients taken with
            # respect to the old, unreferenced tensors (all zeros).
            self.params = self.module.parameters()
            self._templates.clear()
            self._graphs.clear()
            self._validated.clear()
            self._generation += 1
            self.stats.plan_bytes = 0


def compile_value_and_grad(fn, module: Module, **options) -> CompiledValueAndGrad:
    """Convenience constructor for :class:`CompiledValueAndGrad`."""

    return CompiledValueAndGrad(fn, module, **options)
