"""Cross-shape execution plans: bucketed batch dimensions.

The baseline runtime (:class:`~repro.engine.runtime.ExecutionPlan`) is
specialized to one exact input-shape signature: every recorded attribute
(reshape targets, broadcast shapes, concat extents) and every preallocated
buffer bakes the traced batch size in.  Training breaks that model — the
collocation batch varies per step (full batches plus a ragged tail, varying
point budgets), and one trace + one plan *per exact shape* means unbounded
re-tracing and unbounded buffer memory.

This module makes plans polymorphic over the batch dimension instead:

1. A program is traced **twice** per bucket, at the bucket capacity ``C``
   and at a second probe size, and the two optimized graphs are unified
   into a :class:`ProgramTemplate`: structurally identical nodes whose
   shapes, integer attributes and slice bounds are fit as **affine
   functions of the batch size** (``dim = base + slope * b``), solved
   exactly from the two probes.  Constants that grow with the batch must be
   uniform along the batch axis — a capacity-sized constant whose prefix
   slice reproduces the small probe — which the direction-stacked Taylor
   seeds of :func:`~repro.autodiff.taylor.taylor_seed_directions` are
   constructed to satisfy.  Anything that cannot be unified raises
   :class:`BucketingError` and the caller falls back to exact-shape plans.
2. A :class:`BucketedPlan` allocates every buffer once at capacity and
   *specializes* to any batch size ``b <= C`` by rebuilding the step
   closures over **views** of the capacity buffers (sliced to the affine
   shapes at ``b``) and over sliced constants.  Specializations hold no
   array storage of their own, so a bucket serving many batch sizes costs
   one set of capacity buffers plus a few closures per size.

Because a specialized step executes the identical kernel on identically
shaped operands as an exact-shape plan would, bucketed execution stays
bitwise equal to eager mode.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..autodiff.tensor import DEFAULT_DTYPE
from ..obs import memory as obs_memory
from .graph import Graph, Node
from .kernels import build_step, step_bytes

__all__ = ["BucketingError", "ProgramTemplate", "BucketedPlan", "build_template", "bucket_capacity"]


class BucketingError(RuntimeError):
    """Raised when two probe graphs cannot be unified into one template."""


def bucket_capacity(batch: int) -> int:
    """The bucket a batch size belongs to: the next power of two."""

    if batch < 1:
        raise ValueError("bucket capacity requires a positive batch size")
    capacity = 1
    while capacity < batch:
        capacity <<= 1
    return capacity


# ---------------------------------------------------------------------------
# Affine templates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Affine:
    """An integer quantity that is affine in the batch size."""

    base: int
    slope: int

    def __call__(self, b: int) -> int:
        return self.base + self.slope * b


@dataclass(frozen=True)
class _SliceTemplate:
    start: object
    stop: object
    step: object


def _fit_int(va: int, vb: int, ba: int, bb: int) -> "int | _Affine":
    if va == vb:
        return int(va)
    num, den = va - vb, ba - bb
    if num % den:
        raise BucketingError(f"dimension pair ({va}, {vb}) is not affine in the batch")
    slope = num // den
    base = va - slope * ba
    if slope < 0 or base < 0:
        raise BucketingError(
            f"dimension pair ({va}, {vb}) has a negative affine fit "
            f"(base={base}, slope={slope})"
        )
    return _Affine(base, slope)


def _merge_attr(va, vb, ba: int, bb: int):
    """Unify one attribute value pair into a (possibly affine) template."""

    if va is None or vb is None:
        if va is None and vb is None:
            return None
        raise BucketingError("attribute present in only one probe")
    if isinstance(va, bool) or isinstance(vb, bool):
        if va is vb:
            return va
        raise BucketingError("boolean attribute differs between probes")
    if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
        if (
            isinstance(va, np.ndarray)
            and isinstance(vb, np.ndarray)
            and va.dtype == vb.dtype
            and np.array_equal(va, vb)
        ):
            return va
        raise BucketingError("array attribute differs between probes")
    if isinstance(va, (int, np.integer)) and isinstance(vb, (int, np.integer)):
        return _fit_int(int(va), int(vb), ba, bb)
    if isinstance(va, slice) and isinstance(vb, slice):
        return _SliceTemplate(
            _merge_attr(va.start, vb.start, ba, bb),
            _merge_attr(va.stop, vb.stop, ba, bb),
            _merge_attr(va.step, vb.step, ba, bb),
        )
    if isinstance(va, (tuple, list)) and isinstance(vb, (tuple, list)):
        if type(va) is not type(vb) or len(va) != len(vb):
            raise BucketingError("sequence attribute differs in kind or length")
        return type(va)(_merge_attr(x, y, ba, bb) for x, y in zip(va, vb))
    if isinstance(va, dict) and isinstance(vb, dict):
        if set(va) != set(vb):
            raise BucketingError("dict attribute keys differ between probes")
        return {k: _merge_attr(va[k], vb[k], ba, bb) for k in va}
    if va == vb:
        return va
    raise BucketingError(f"attribute pair ({va!r}, {vb!r}) cannot be unified")


def _materialize(template, b: int):
    """Instantiate an attribute template at a concrete batch size."""

    if isinstance(template, _Affine):
        return template(b)
    if isinstance(template, _SliceTemplate):
        return slice(
            _materialize(template.start, b),
            _materialize(template.stop, b),
            _materialize(template.step, b),
        )
    if isinstance(template, tuple):
        return tuple(_materialize(t, b) for t in template)
    if isinstance(template, list):
        return [_materialize(t, b) for t in template]
    if isinstance(template, dict):
        return {k: _materialize(t, b) for k, t in template.items()}
    return template


def _shape_at(shape_template: tuple, b: int) -> tuple:
    return tuple(d(b) if isinstance(d, _Affine) else d for d in shape_template)


# ---------------------------------------------------------------------------
# Constant templates
# ---------------------------------------------------------------------------
#
# Specs: ("static", array)              — batch-independent (may alias params)
#        ("slice", array, axis, dim)    — capacity array, prefix-sliced on axis
#        ("fill", shape_tmpl, law, dt)  — uniform array whose fill value (and
#                                         shape) follow a law of the batch
#
# The fill laws cover how batch-dependent scalars actually arise in traced
# programs: counts are affine in the batch (``b * q``), and mean-style
# cotangent seeds are their reciprocals (``1 / (b * q)``), which makes the
# reciprocal affine.  Both laws are verified bitwise against the two probes
# before being accepted.


def _scalar_laws(fa: float, fb: float, ba: int, bb: int, dtype):
    """Candidate fill-value laws fitting the two probes bitwise.

    Two probes determine a line (or a reciprocal line) exactly, so *both*
    laws usually fit — the caller must disambiguate against a third probe
    (:func:`verify_template`); only the constant law is unambiguous.
    """

    if fa == fb:
        return [("const", fa, 0.0)]
    laws = []
    slope = (fa - fb) / (ba - bb)
    base = fa - slope * ba
    if (
        np.asarray(base + slope * ba, dtype=dtype) == np.asarray(fa, dtype=dtype)
        and np.asarray(base + slope * bb, dtype=dtype) == np.asarray(fb, dtype=dtype)
    ):
        laws.append(("affine", base, slope))
    if fa != 0.0 and fb != 0.0:
        ra, rb = 1.0 / fa, 1.0 / fb
        slope = (ra - rb) / (ba - bb)
        base = ra - slope * ba
        if (
            np.asarray(1.0 / (base + slope * ba), dtype=dtype) == np.asarray(fa, dtype=dtype)
            and np.asarray(1.0 / (base + slope * bb), dtype=dtype) == np.asarray(fb, dtype=dtype)
        ):
            laws.append(("recip", base, slope))
    return laws


def _law_value(law, b: int) -> float:
    kind, base, slope = law
    if kind == "const":
        return base
    if kind == "affine":
        return base + slope * b
    return 1.0 / (base + slope * b)


def _uniform_fill(array: np.ndarray):
    """The single fill value of a uniform array, or ``None``.

    Uniformity is checked bytewise (``-0.0`` and ``0.0`` compare equal but
    are different fills).
    """

    if array.size == 0:
        return None
    first = array.reshape(-1)[0]
    filled = np.full(array.shape, first, dtype=array.dtype)
    return float(first) if filled.tobytes() == array.tobytes() else None


def _merge_constant(cap_node: Node, small_node: Node, shape_tmpl, ba: int, bb: int):
    va, vb = cap_node.value, small_node.value
    if va is None or vb is None:
        raise BucketingError("constant node without a captured value")
    if va.dtype != vb.dtype:
        raise BucketingError("constant dtype differs between probes")
    if va.shape == vb.shape and (va is vb or np.array_equal(va, vb)):
        return ("static", va)
    if va.ndim != vb.ndim:
        raise BucketingError("constant rank differs between probes")
    # Uniform fills (mean divisors, cotangent seeds, zero pads) follow a
    # scalar law of the batch regardless of whether their shape scales.
    fa = float(va) if va.ndim == 0 else _uniform_fill(va)
    fb = float(vb) if vb.ndim == 0 else _uniform_fill(vb)
    if fa is not None and fb is not None:
        laws = _scalar_laws(fa, fb, ba, bb, va.dtype)
        if laws:
            return ("fill*", shape_tmpl, laws, va.dtype)
    differing = [axis for axis in range(va.ndim) if va.shape[axis] != vb.shape[axis]]
    if len(differing) != 1:
        raise BucketingError("constant differs along more than one axis")
    axis = differing[0]
    dim = shape_tmpl[axis]
    if not isinstance(dim, _Affine):
        raise BucketingError("constant extent is not affine in the batch")
    index = tuple(
        slice(0, vb.shape[axis]) if ax == axis else slice(None)
        for ax in range(va.ndim)
    )
    if not np.array_equal(va[index], vb):
        raise BucketingError(
            "constant is not uniform along its batch axis (prefix slice of the "
            "capacity value does not reproduce the smaller probe)"
        )
    return ("slice", va, axis, dim)


def _constant_at(spec, b: int) -> np.ndarray:
    kind = spec[0]
    if kind == "static":
        return spec[1]
    if kind == "slice":
        _, value, axis, dim = spec
        extent = dim(b)
        index = tuple(
            slice(0, extent) if ax == axis else slice(None)
            for ax in range(value.ndim)
        )
        return value[index]
    if kind == "fill*":  # pragma: no cover - finalized before execution
        raise BucketingError("ambiguous fill constant was never disambiguated")
    _, shape_tmpl, law, dtype = spec
    shape = _shape_at(shape_tmpl, b)
    value = _law_value(law, b)
    if not shape:
        return np.asarray(value, dtype=dtype)
    return np.full(shape, np.asarray(value, dtype=dtype), dtype=dtype)


# ---------------------------------------------------------------------------
# Program templates
# ---------------------------------------------------------------------------


@dataclass
class _NodeTemplate:
    op: str
    inputs: tuple
    attrs_template: dict
    shape_template: tuple
    dtype: object
    const_spec: tuple | None = None


class ProgramTemplate:
    """Two probe graphs unified into one batch-polymorphic program."""

    def __init__(self, capacity: int, nodes: dict, order: list,
                 inputs: list, outputs: list):
        self.capacity = capacity
        self.nodes: dict[int, _NodeTemplate] = nodes
        self.order: list[int] = order          # execution order of node ids
        self.inputs: list[int] = inputs
        self.outputs: list[int] = outputs
        #: (input position, axis, affine) triples usable to infer the batch
        self.batch_dims: list[tuple] = []
        for position, node_id in enumerate(inputs):
            for axis, dim in enumerate(nodes[node_id].shape_template):
                if isinstance(dim, _Affine) and dim.slope > 0:
                    self.batch_dims.append((position, axis, dim))

    def batch_for(self, shapes: "list[tuple]") -> int | None:
        """Infer the batch size from call shapes; ``None`` when they don't fit."""

        if len(shapes) != len(self.inputs):
            return None
        if not self.batch_dims:
            return None
        position, axis, dim = self.batch_dims[0]
        if axis >= len(shapes[position]):
            return None
        extent = shapes[position][axis] - dim.base
        if extent < 0 or extent % dim.slope:
            return None
        b = extent // dim.slope
        if b > self.capacity:
            return None
        for node_id, shape in zip(self.inputs, shapes):
            if _shape_at(self.nodes[node_id].shape_template, b) != tuple(shape):
                return None
        return b


def _attrs_equal(a, b) -> bool:
    """Deep equality of attribute values (arrays compared elementwise)."""

    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
            and a.dtype == b.dtype and np.array_equal(a, b)
        )
    if isinstance(a, (tuple, list)) and isinstance(b, (tuple, list)):
        return type(a) is type(b) and len(a) == len(b) and all(
            _attrs_equal(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, slice) and isinstance(b, slice):
        return (
            _attrs_equal(a.start, b.start)
            and _attrs_equal(a.stop, b.stop)
            and _attrs_equal(a.step, b.step)
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(_attrs_equal(a[k], b[k]) for k in a)
    return a == b


def _finalize_constant(tmpl: _NodeTemplate, check_node: Node | None, b_check: int | None):
    """Resolve ambiguous fill laws and verify the spec against probe three.

    A fill law fitted on two probes is underdetermined (any two points lie
    on both an affine and a reciprocal-affine curve); the third probe picks
    the law that actually governs the program.  Without a third probe
    (capacity-2 buckets, which only ever serve their probe sizes) the first
    candidate is kept.
    """

    spec = tmpl.const_spec
    if spec[0] == "fill*":
        _, shape_tmpl, laws, dtype = spec
        candidates = [("fill", shape_tmpl, law, dtype) for law in laws]
    else:
        candidates = [spec]
    if check_node is None:
        tmpl.const_spec = candidates[0]
        return
    expected = check_node.value
    for candidate in candidates:
        value = _constant_at(candidate, b_check)
        if (
            value.shape == expected.shape
            and value.dtype == expected.dtype
            and value.tobytes() == expected.tobytes()
        ):
            tmpl.const_spec = candidate
            return
    raise BucketingError(
        "no constant law reproduces the verification probe bitwise"
    )


def build_template(
    graph_cap: Graph, cap_batch: int, graph_small: Graph, small_batch: int,
    check: "tuple[Graph, int] | None" = None,
) -> ProgramTemplate:
    """Unify two optimized probe graphs into a :class:`ProgramTemplate`.

    ``check`` is a third probe ``(graph, batch)`` used to *verify* every
    affine fit and to disambiguate fill-constant laws: two probes determine
    the fits, the third confirms them.  Callers should always pass one when
    the bucket serves batch sizes other than the two probes.

    Raises :class:`BucketingError` when the graphs differ structurally, any
    shape/attribute/constant cannot be expressed in the template language,
    or the verification probe is not reproduced bitwise.
    """

    if cap_batch == small_batch:
        raise BucketingError("probe batch sizes must differ")
    graph_check, b_check = check if check is not None else (None, None)
    nodes_a, nodes_b = graph_cap.nodes(), graph_small.nodes()
    nodes_c = graph_check.nodes() if graph_check is not None else None
    if len(nodes_a) != len(nodes_b) or (
        nodes_c is not None and len(nodes_c) != len(nodes_a)
    ):
        raise BucketingError("probe graphs differ in node count")
    if graph_cap.inputs != graph_small.inputs or graph_cap.outputs != graph_small.outputs:
        raise BucketingError("probe graphs differ in inputs/outputs")
    if graph_check is not None and (
        graph_check.inputs != graph_cap.inputs
        or graph_check.outputs != graph_cap.outputs
    ):
        raise BucketingError("verification probe differs in inputs/outputs")

    templates: dict[int, _NodeTemplate] = {}
    order: list[int] = []
    for position, (a, b) in enumerate(zip(nodes_a, nodes_b)):
        c = nodes_c[position] if nodes_c is not None else None
        if a.id != b.id or a.op != b.op or a.inputs != b.inputs:
            raise BucketingError(
                f"probe graphs diverge at node {a.id} ({a.op} vs {b.op})"
            )
        if c is not None and (c.id != a.id or c.op != a.op or c.inputs != a.inputs):
            raise BucketingError(
                f"verification probe diverges at node {a.id} ({a.op} vs {c.op})"
            )
        if len(a.shape) != len(b.shape):
            raise BucketingError(f"node {a.id} rank differs between probes")
        shape_tmpl = tuple(
            _fit_int(da, db, cap_batch, small_batch)
            for da, db in zip(a.shape, b.shape)
        )
        if c is not None and _shape_at(shape_tmpl, b_check) != c.shape:
            raise BucketingError(
                f"node {a.id} shape is not affine in the batch "
                "(verification probe mismatch)"
            )
        const_spec = None
        if a.is_constant:
            const_spec = _merge_constant(a, b, shape_tmpl, cap_batch, small_batch)
            attrs_tmpl = {}
        else:
            attrs_tmpl = _merge_attr(a.attrs, b.attrs, cap_batch, small_batch)
            if c is not None and not _attrs_equal(
                _materialize(attrs_tmpl, b_check), c.attrs
            ):
                raise BucketingError(
                    f"node {a.id} attributes are not affine in the batch "
                    "(verification probe mismatch)"
                )
        tmpl = _NodeTemplate(
            op=a.op, inputs=a.inputs, attrs_template=attrs_tmpl,
            shape_template=shape_tmpl, dtype=a.dtype, const_spec=const_spec,
        )
        if const_spec is not None:
            _finalize_constant(tmpl, c, b_check)
        templates[a.id] = tmpl
        order.append(a.id)
    return ProgramTemplate(
        capacity=cap_batch, nodes=templates, order=order,
        inputs=list(graph_cap.inputs), outputs=list(graph_cap.outputs),
    )


# ---------------------------------------------------------------------------
# Bucketed plans
# ---------------------------------------------------------------------------


class _Specialization:
    """One batch size of a bucketed plan: step closures over shared buffers.

    ``profiler`` (a :class:`~repro.obs.profile.KernelProfiler`) opts the
    specialization into per-kernel timing, mirroring
    :meth:`~repro.engine.runtime.ExecutionPlan.run`: identical kernels on
    identical views either way, so outputs stay bitwise equal.
    """

    def __init__(self, slots: list, steps: list, input_slots: list,
                 output_slots: list, step_info: list | None = None,
                 profiler=None):
        self._slots = slots
        self._steps = steps
        self._input_slots = input_slots
        self._output_slots = output_slots
        self._step_info = step_info if step_info is not None else []
        self._profiler = profiler

    def run(self, arrays: "list[np.ndarray]") -> "list[np.ndarray]":
        slots = self._slots
        for slot, array in zip(self._input_slots, arrays):
            slots[slot] = array
        profiler = self._profiler
        if profiler is None:
            for step in self._steps:
                step(slots)
        else:
            clock = time.perf_counter
            record = profiler.record
            for step, (op, nbytes) in zip(self._steps, self._step_info):
                tic = clock()
                step(slots)
                record(op, clock() - tic, nbytes)
        return [slots[slot] for slot in self._output_slots]


class BucketedPlan:
    """A :class:`ProgramTemplate` bound to capacity buffers.

    Buffers are allocated once, at the bucket capacity; every batch size in
    the bucket executes through views of those buffers.  Like
    :class:`~repro.engine.runtime.ExecutionPlan`, a bucketed plan owns its
    buffers and is therefore **not thread-safe** — callers build one per
    thread.  The contract is enforced: the plan binds to the first thread
    that runs it and any other thread's :meth:`run` raises
    :class:`RuntimeError` instead of silently corrupting shared buffers.
    """

    def __init__(self, template: ProgramTemplate, profiler=None):
        self.template = template
        self._profiler = profiler
        self._owner_thread: int | None = None
        # node id -> buffers allocated for that node at capacity, in the
        # order the node's kernel requested them (main output + scratch).
        self._node_buffers: dict[int, list[np.ndarray]] = {}
        # bytes of materialized fill constants, which each specialization
        # allocates fresh (slice/static constants are views and cost nothing)
        self._constant_bytes = 0
        self._specs: dict[int, _Specialization] = {}
        self._specs[template.capacity] = self._build(template.capacity)

    @property
    def buffer_bytes(self) -> int:
        return self._constant_bytes + sum(
            int(buffer.nbytes)
            for buffers in self._node_buffers.values()
            for buffer in buffers
        )

    @property
    def specialization_count(self) -> int:
        return len(self._specs)

    def release_accounting(self) -> None:
        """Return this plan's bytes to the memory accountant (plan dropped).

        Read at release time so lazily-built specializations (which grow
        ``buffer_bytes`` after cache insertion) stay balanced.
        """

        obs_memory.sub(obs_memory.ENGINE_PLAN_BUFFERS, self.buffer_bytes)

    def has_specialization(self, b: int) -> bool:
        return b in self._specs

    def _build(self, b: int) -> _Specialization:
        template = self.template
        at_capacity = b == template.capacity
        slot_of = {node_id: pos for pos, node_id in enumerate(template.order)}
        slots: list = [None] * len(template.order)
        steps = []
        step_info: list = []
        for node_id in template.order:
            tmpl = template.nodes[node_id]
            position = slot_of[node_id]
            if tmpl.op == "placeholder":
                continue
            if tmpl.const_spec is not None:
                constant = _constant_at(tmpl.const_spec, b)
                if tmpl.const_spec[0] == "fill":
                    self._constant_bytes += int(constant.nbytes)
                    obs_memory.add(obs_memory.ENGINE_PLAN_BUFFERS, constant.nbytes)
                slots[position] = constant
                continue
            shape_b = _shape_at(tmpl.shape_template, b)
            node = Node(
                id=node_id, op=tmpl.op, inputs=tmpl.inputs,
                attrs=_materialize(tmpl.attrs_template, b),
                shape=shape_b, dtype=tmpl.dtype,
            )
            if at_capacity:
                buffers = self._node_buffers.setdefault(node_id, [])

                def alloc(shape, dtype, buffers=buffers):
                    buffer = np.empty(
                        shape, dtype=dtype if dtype is not None else DEFAULT_DTYPE
                    )
                    buffers.append(buffer)
                    obs_memory.add(obs_memory.ENGINE_PLAN_BUFFERS, buffer.nbytes)
                    return buffer

            else:
                counter = iter(self._node_buffers.get(node_id, ()))

                def alloc(shape, dtype, counter=counter):
                    capacity_buffer = next(counter)
                    if tuple(shape) == capacity_buffer.shape:
                        return capacity_buffer
                    return capacity_buffer[tuple(slice(0, s) for s in shape)]

            src = [slot_of[i] for i in tmpl.inputs]
            steps.append(build_step(node, src, position, alloc))
            step_info.append((node.op, step_bytes(node)))
        if self._profiler is not None:
            self._profiler.count("bucket_specialization")
        return _Specialization(
            slots, steps,
            [slot_of[i] for i in template.inputs],
            [slot_of[i] for i in template.outputs],
            step_info=step_info, profiler=self._profiler,
        )

    def run(self, arrays: "list[np.ndarray]", b: int) -> "list[np.ndarray]":
        """Execute at batch size ``b``; arrays may alias plan buffers."""

        ident = threading.get_ident()
        owner = self._owner_thread
        if owner is None:
            self._owner_thread = ident
        elif owner != ident:
            raise RuntimeError(
                f"BucketedPlan is bound to thread {owner} and was run from "
                f"thread {ident}; bucketed plans own capacity buffers shared "
                "by every specialization and are not thread-safe — build one "
                "plan per thread (the jet runtime does this automatically)"
            )
        spec = self._specs.get(b)
        if spec is None:
            if not 0 <= b <= self.template.capacity:
                raise BucketingError(
                    f"batch {b} outside bucket capacity {self.template.capacity}"
                )
            spec = self._build(b)
            self._specs[b] = spec
        return spec.run(arrays)
