"""repro.engine — a trace-and-fuse inference compiler for model hot paths.

Every Mosaic Flow solve executes thousands of gradient-free SDNet forward
passes through the tape-building :mod:`repro.autodiff` layer, paying per-op
Python dispatch, graph bookkeeping and fresh allocations it never needs.
This package separates a *traced, optimized execution graph* from the eager
training path, the way production inference stacks do:

1. :mod:`.trace` records one symbolic forward pass of any
   :class:`~repro.nn.module.Module` into a static operator graph
   (:mod:`.graph`),
2. :mod:`.passes` runs compiler passes over it — dead-code elimination,
   constant folding of frozen weights, lowering of one-axis gathers, and
   fusion of elementwise chains (``affine -> activation``) into single
   vectorized numpy kernels (:mod:`.kernels`),
3. :mod:`.runtime` executes the result through shape-specialized plans with
   preallocated buffers, so steady-state inference is allocation-free.

The resulting :class:`CompiledModule` exposes the same ``__call__`` contract
as the source module with **bitwise-identical outputs** (fusion removes
dispatch, never reorders floating-point math), and is threaded through every
layer that does repeated inference via ``engine=`` configuration:
:class:`~repro.mosaic.predictor.MosaicFlowPredictor`,
:class:`~repro.serving.fused.FusedBatchRunner`,
:class:`~repro.serving.server.Server` (with per-geometry
:class:`ModuleCache` reuse) and
:class:`~repro.mosaic.distributed.DistributedMosaicFlowPredictor` workers.

The engine also covers the *training* hot path: :mod:`.jet` traces the
Taylor-mode physics loss **and** its parameter reverse sweep into one
static program (every VJP is itself built from primitives, so the backward
records like any forward), optimizes it with the mutation-safe
:data:`~repro.engine.passes.TRAINING_PASSES` pipeline (Faà di Bruno jet
fusion, view-only folding of trainable parameters), and executes it through
**bucketed batch-dimension plans** (:mod:`.bucketing`) with byte-budgeted
per-thread plan caches — loss values and parameter gradients stay bitwise
equal to the eager tape.  :class:`~repro.pde.losses.PinnLoss` and
:class:`~repro.training.trainer.TrainingConfig` expose it as ``engine=``.
"""

from .bucketing import BucketedPlan, BucketingError, bucket_capacity, build_template
from .graph import Graph, GraphError, Node
from .parallel import ParallelExecutionPlan, schedule_waves
from .jet import CompiledValueAndGrad, JetStats, compile_value_and_grad
from .kernels import KernelError, build_step, evaluate_node, step_bytes
from .passes import (
    DEFAULT_PASSES,
    FUSION_RULES,
    TRAINING_PASSES,
    FusionRule,
    eliminate_dead_code,
    fold_constants,
    fold_mutable_constants,
    fuse_elementwise,
    lower_gathers,
    optimize,
    register_fusion_rule,
)
from .runtime import (
    CompiledModule,
    ExecutionPlan,
    ModuleCache,
    PlanCache,
    compile_module,
    compile_solver,
)
from .trace import TraceError, trace, trace_program

__all__ = [
    "BucketedPlan",
    "BucketingError",
    "bucket_capacity",
    "build_template",
    "Graph",
    "GraphError",
    "Node",
    "CompiledValueAndGrad",
    "JetStats",
    "compile_value_and_grad",
    "KernelError",
    "build_step",
    "evaluate_node",
    "step_bytes",
    "DEFAULT_PASSES",
    "FUSION_RULES",
    "TRAINING_PASSES",
    "FusionRule",
    "eliminate_dead_code",
    "fold_constants",
    "fold_mutable_constants",
    "fuse_elementwise",
    "lower_gathers",
    "optimize",
    "register_fusion_rule",
    "CompiledModule",
    "ExecutionPlan",
    "ParallelExecutionPlan",
    "schedule_waves",
    "ModuleCache",
    "PlanCache",
    "compile_module",
    "compile_solver",
    "TraceError",
    "trace",
    "trace_program",
]
