"""repro.engine — a trace-and-fuse inference compiler for model hot paths.

Every Mosaic Flow solve executes thousands of gradient-free SDNet forward
passes through the tape-building :mod:`repro.autodiff` layer, paying per-op
Python dispatch, graph bookkeeping and fresh allocations it never needs.
This package separates a *traced, optimized execution graph* from the eager
training path, the way production inference stacks do:

1. :mod:`.trace` records one symbolic forward pass of any
   :class:`~repro.nn.module.Module` into a static operator graph
   (:mod:`.graph`),
2. :mod:`.passes` runs compiler passes over it — dead-code elimination,
   constant folding of frozen weights, lowering of one-axis gathers, and
   fusion of elementwise chains (``affine -> activation``) into single
   vectorized numpy kernels (:mod:`.kernels`),
3. :mod:`.runtime` executes the result through shape-specialized plans with
   preallocated buffers, so steady-state inference is allocation-free.

The resulting :class:`CompiledModule` exposes the same ``__call__`` contract
as the source module with **bitwise-identical outputs** (fusion removes
dispatch, never reorders floating-point math), and is threaded through every
layer that does repeated inference via ``engine=`` configuration:
:class:`~repro.mosaic.predictor.MosaicFlowPredictor`,
:class:`~repro.serving.fused.FusedBatchRunner`,
:class:`~repro.serving.server.Server` (with per-geometry
:class:`ModuleCache` reuse) and
:class:`~repro.mosaic.distributed.DistributedMosaicFlowPredictor` workers.
"""

from .graph import Graph, GraphError, Node
from .kernels import KernelError, build_step, evaluate_node
from .passes import (
    DEFAULT_PASSES,
    FUSION_RULES,
    FusionRule,
    eliminate_dead_code,
    fold_constants,
    fuse_elementwise,
    lower_gathers,
    optimize,
    register_fusion_rule,
)
from .runtime import (
    CompiledModule,
    ExecutionPlan,
    ModuleCache,
    compile_module,
    compile_solver,
)
from .trace import TraceError, trace

__all__ = [
    "Graph",
    "GraphError",
    "Node",
    "KernelError",
    "build_step",
    "evaluate_node",
    "DEFAULT_PASSES",
    "FUSION_RULES",
    "FusionRule",
    "eliminate_dead_code",
    "fold_constants",
    "fuse_elementwise",
    "lower_gathers",
    "optimize",
    "register_fusion_rule",
    "CompiledModule",
    "ExecutionPlan",
    "ModuleCache",
    "compile_module",
    "compile_solver",
    "TraceError",
    "trace",
]
