"""repro.serving — a batched inference service for Mosaic Flow solves.

Turns many concurrent boundary-value-problem queries into the large fused
solver batches the device-level execution model exploits (Figures 8/9 of the
paper): requests are validated and canonicalized (:mod:`.api`), answered from
an LRU solution cache when possible (:mod:`.cache`), dynamically batched per
geometry (:mod:`.batcher`, sized by the perfmodel-backed :mod:`.estimator`),
and executed as fused batched runs (:mod:`.fused`) sharded across simulated
ranks (:mod:`.workers`) — all behind a synchronous submit/drain front-end
with latency/cache/batching statistics (:mod:`.server`, :mod:`.stats`).
"""

from .api import RequestValidationError, SolveRequest, SolveResult
from .batcher import Batch, BatchPolicy, DynamicBatcher
from .cache import CachedSolution, SolutionCache
from .estimator import ServingEstimator
from .fused import FusedBatchRunner, FusedOutcome
from .server import Server, default_solver_factory
from .stats import ServingStats
from .workers import WorkerPool

__all__ = [
    "RequestValidationError",
    "SolveRequest",
    "SolveResult",
    "Batch",
    "BatchPolicy",
    "DynamicBatcher",
    "CachedSolution",
    "SolutionCache",
    "ServingEstimator",
    "FusedBatchRunner",
    "FusedOutcome",
    "Server",
    "default_solver_factory",
    "ServingStats",
    "WorkerPool",
]
