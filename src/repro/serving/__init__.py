"""repro.serving — a batched inference service for Mosaic Flow solves.

Turns many concurrent boundary-value-problem queries into the large fused
solver batches the device-level execution model exploits (Figures 8/9 of the
paper): requests are validated and canonicalized (:mod:`.api`), claimed in an
idempotent request store so duplicates and retries never recompute
(:mod:`.store`), answered from an LRU solution cache when possible
(:mod:`.cache`), dynamically batched per geometry (:mod:`.batcher`, sized by
the perfmodel-backed :mod:`.estimator`), and executed as fused batched runs
(:mod:`.fused`) sharded across simulated ranks (:mod:`.workers`).

The front-end (:mod:`.server`) is an async pipeline: non-blocking
``submit_async`` returning :mod:`.futures`, a background dispatcher plus a
solve-worker thread pool, capped-backoff retries, request deadlines and
per-tenant admission control — with the classic synchronous ``submit`` /
``drain`` API as thin wrappers over the same path.  Every robustness path is
deterministically testable through the flag-guarded fault hooks of
:mod:`.faults`, and :mod:`.stats` reports latency, cache, batching and
retry/timeout/rejection counters.

The durability/supervision layer makes the pipeline survive crashes: the
store journals every transition write-ahead (:mod:`.journal`) so a restarted
server replays completed keys bitwise-identically, a heartbeat supervisor
with per-backend circuit breakers (:mod:`.supervisor`) requeues the work of
crashed or hung workers exactly-once and fast-fails requests to failing
backends, and memory-budget-driven admission sheds lowest-priority tenants
first as live bytes approach the budget.
"""

from .api import RequestValidationError, SolveRequest, SolveResult
from .batcher import Batch, BatchPolicy, DynamicBatcher
from .cache import CachedSolution, SolutionCache
from .estimator import ServingEstimator
from .faults import (
    BATCH_ASSEMBLY,
    CRASH,
    DEATH,
    DELAY,
    DROP,
    DUPLICATE,
    JOURNAL_WRITE,
    STORE_DELIVER,
    TORN,
    WORKER_DEATH,
    WORKER_HEARTBEAT,
    WORKER_SOLVE,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    InjectedFault,
    WorkerDeath,
)
from .fused import FusedBatchRunner, FusedOutcome, FusedState
from .futures import (
    CircuitOpenError,
    DeadlineExceededError,
    MemoryPressureError,
    QuotaExceededError,
    RetryExhaustedError,
    ServerClosedError,
    SolveError,
    SolveFuture,
)
from .journal import JournalCorruptError, RecoveryReport, RequestJournal
from .megabatch import MegaBatchExecutor, MegaSession, solver_fusion_key
from .server import Server, default_solver_factory
from .stats import ServingStats
from .store import AdmissionController, RequestStore, TenantQuota
from .supervisor import (
    BreakerBoard,
    BreakerPolicy,
    CircuitBreaker,
    WorkerSupervisor,
)
from .workers import WorkerPool

__all__ = [
    "RequestValidationError",
    "SolveRequest",
    "SolveResult",
    "Batch",
    "BatchPolicy",
    "DynamicBatcher",
    "CachedSolution",
    "SolutionCache",
    "ServingEstimator",
    "FusedBatchRunner",
    "FusedOutcome",
    "FusedState",
    # cross-request mega-batching
    "MegaBatchExecutor",
    "MegaSession",
    "solver_fusion_key",
    "Server",
    "default_solver_factory",
    "ServingStats",
    "WorkerPool",
    # async front-end
    "SolveFuture",
    "SolveError",
    "RetryExhaustedError",
    "DeadlineExceededError",
    "QuotaExceededError",
    "MemoryPressureError",
    "CircuitOpenError",
    "ServerClosedError",
    # idempotent store + admission control
    "RequestStore",
    "TenantQuota",
    "AdmissionController",
    # durability + supervision
    "RequestJournal",
    "RecoveryReport",
    "JournalCorruptError",
    "WorkerSupervisor",
    "CircuitBreaker",
    "BreakerBoard",
    "BreakerPolicy",
    # fault injection
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "InjectedFault",
    "WorkerDeath",
    "WORKER_SOLVE",
    "BATCH_ASSEMBLY",
    "STORE_DELIVER",
    "WORKER_DEATH",
    "WORKER_HEARTBEAT",
    "JOURNAL_WRITE",
    "CRASH",
    "DELAY",
    "DUPLICATE",
    "DEATH",
    "DROP",
    "TORN",
]
