"""Worker pool: shard fused batches across simulated ranks.

One fused batch is embarrassingly parallel across requests, so the pool
splits a batch of ``B`` requests into ``min(world_size, B)`` contiguous
shards and runs one :class:`~repro.serving.fused.FusedBatchRunner` per rank
on the :mod:`repro.distributed` backend (threads with MPI semantics; a world
of one short-circuits to :class:`~repro.distributed.SelfCommunicator`).  Each
rank builds its own solver through ``solver_factory`` so per-solver counters
stay independent — exactly how per-GPU model replicas would be held in a real
deployment.  An allreduce merges the per-rank fused-call counters so the
server's stats see pool-wide totals.
"""

from __future__ import annotations

import threading

import numpy as np

from ..distributed.comm import Communicator, ReduceOp
from ..distributed.simulated import run_spmd
from ..mosaic.geometry import MosaicGeometry
from ..mosaic.solvers import SubdomainSolver
from ..obs.trace import span
from .fused import FusedBatchRunner, FusedOutcome

__all__ = ["WorkerPool"]


class WorkerPool:
    """Fixed-size pool of fused-batch workers over the simulated cluster.

    Parameters
    ----------
    geometry:
        Shared geometry of every batch this pool serves.
    solver_factory:
        Callable ``solver_factory(geometry) -> SubdomainSolver`` building one
        solver per rank per batch.
    world_size:
        Number of ranks to shard fused batches across.
    init_mode, check_interval:
        Forwarded to the per-rank :class:`FusedBatchRunner`.
    timeout:
        Per-operation timeout of the simulated communicator.
    faults:
        Optional :class:`~repro.serving.faults.FaultInjector`.  Every rank
        fires the ``worker.solve`` site just before running its shard, so a
        scheduled crash surfaces as a mid-batch worker failure
        (:class:`~repro.distributed.simulated.SpmdFailure`) and a scheduled
        delay models a straggling solve — both deterministic, keyed by the
        per-rank call index.
    """

    def __init__(
        self,
        geometry: MosaicGeometry,
        solver_factory,
        world_size: int = 1,
        init_mode: str = "mean",
        check_interval: int = 1,
        timeout: float = 300.0,
        faults=None,
    ):
        if world_size < 1:
            raise ValueError("world_size must be at least 1")
        self.geometry = geometry
        self.solver_factory = solver_factory
        self.world_size = int(world_size)
        self.init_mode = init_mode
        self.check_interval = int(check_interval)
        self.timeout = float(timeout)
        self.faults = faults
        #: pool-wide fused-call counters, accumulated over all solve() calls
        self.predict_calls = 0
        self.subdomains_solved = 0
        # The async server may run several batches of one group concurrently;
        # counter accumulation must not lose increments across those threads.
        self._counter_lock = threading.Lock()

    def solve(
        self,
        boundary_loops: np.ndarray,
        tols: np.ndarray | float = 1e-6,
        max_iterations: np.ndarray | int = 400,
    ) -> list[FusedOutcome]:
        """Solve a fused batch, sharded across the pool's ranks, in order."""

        loops = np.asarray(boundary_loops, dtype=float)
        num_requests = loops.shape[0]
        if num_requests == 0:
            return []
        tols = np.broadcast_to(np.asarray(tols, dtype=float), (num_requests,)).copy()
        budgets = np.broadcast_to(
            np.asarray(max_iterations, dtype=int), (num_requests,)
        ).copy()
        world = min(self.world_size, num_requests)
        shards = np.array_split(np.arange(num_requests), world)

        def rank_program(comm: Communicator) -> tuple[np.ndarray, list[FusedOutcome], np.ndarray]:
            mine = shards[comm.rank]
            # Each rank runs on its own thread, so this span becomes a root
            # of that thread's trace (children: the fused run/assembly spans).
            with span("serving.rank", rank=comm.rank, requests=int(mine.size)):
                if self.faults is not None:
                    # Worker-call fault boundary: a crash here aborts the rank
                    # mid-batch; a delay makes this rank's solve a straggler.
                    from .faults import WORKER_SOLVE

                    self.faults.fire(
                        WORKER_SOLVE, rank=comm.rank, requests=int(mine.size)
                    )
                runner = FusedBatchRunner(
                    self.geometry,
                    self.solver_factory(self.geometry),
                    init_mode=self.init_mode,
                    check_interval=self.check_interval,
                )
                outcomes = (
                    runner.run(loops[mine], tols[mine], budgets[mine])
                    if mine.size else []
                )
                totals = comm.allreduce(
                    np.array(
                        [runner.predict_calls, runner.subdomains_solved], dtype=float
                    ),
                    op=ReduceOp.SUM,
                )
            return mine, outcomes, totals

        per_rank = run_spmd(world, rank_program, timeout=self.timeout)
        merged: list[FusedOutcome | None] = [None] * num_requests
        for mine, outcomes, totals in per_rank:
            for index, outcome in zip(mine, outcomes):
                merged[index] = outcome
        with self._counter_lock:
            self.predict_calls += int(per_rank[0][2][0])
            self.subdomains_solved += int(per_rank[0][2][1])
        return merged  # type: ignore[return-value]
