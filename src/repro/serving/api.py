"""Request/response API of the Mosaic Flow serving layer.

A :class:`SolveRequest` is one boundary value problem posed to the service:
the interface-lattice geometry of the target domain, the Dirichlet data
along its global boundary loop, and the solve parameters (tolerance,
iteration budget, lattice initialization).  Construction goes through
:meth:`SolveRequest.create`, which validates and *canonicalizes* the BVP —
the boundary loop becomes a contiguous float64 vector of the exact length the
geometry prescribes — so that every component downstream (batcher, cache,
fused runner) can rely on a normal form and hash it cheaply.

Requests that share a :meth:`SolveRequest.group_key` are fusable: they can be
stacked into one batched :class:`~repro.mosaic.MosaicFlowPredictor`-style run
because they agree on everything that shapes the iteration (geometry,
initialization, convergence-check cadence).  Per-request tolerance and
iteration budgets do *not* enter the group key — the fused runner tracks
convergence per request.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..mosaic.geometry import MosaicGeometry

__all__ = ["RequestValidationError", "SolveRequest", "SolveResult"]


def _geometry_types() -> tuple:
    """Geometry types the serving layer accepts.

    Both expose the shared interface the fused runner iterates over.  The
    composite type is imported lazily so the request API does not eagerly
    pull in :mod:`repro.domains` (and its masked-FD scipy dependencies).
    """

    from ..domains.geometry import CompositeMosaicGeometry

    return (MosaicGeometry, CompositeMosaicGeometry)

_INIT_MODES = ("zero", "mean", "linear")

_id_counter = itertools.count()
_id_lock = threading.Lock()


def _next_request_id() -> str:
    with _id_lock:
        return f"req-{next(_id_counter)}"


class RequestValidationError(ValueError):
    """Raised when a solve request fails validation."""


@dataclass(frozen=True, eq=False)
class SolveRequest:
    """One canonicalized boundary value problem posed to the serving layer.

    Do not instantiate directly — use :meth:`create` (or
    :meth:`from_function`), which validates and canonicalizes the inputs.

    Attributes
    ----------
    request_id:
        Unique identifier assigned at creation (or caller-provided).
    geometry:
        Interface-lattice geometry of the target domain.
    boundary_loop:
        Canonical Dirichlet data: contiguous float64 vector of length
        ``geometry.global_boundary_size`` (the re-entrant boundary loop for
        composite geometries).
    tol:
        Relative-change convergence threshold of the lattice iteration.
    max_iterations:
        Iteration budget of the lattice iteration.
    init_mode:
        Lattice initialization mode (``"zero"``, ``"mean"`` or ``"linear"``).
    check_interval:
        Convergence-check cadence in iterations.
    deadline_seconds:
        Optional completion deadline, measured from submission under the
        server's clock.  An expired request fails fast with
        :class:`~repro.serving.futures.DeadlineExceededError` instead of
        occupying solver capacity; a solve finishing past the deadline
        rejects the waiter the same way.  Not part of the group, cache or
        store keys — the same BVP with different deadlines is one solve.
    tenant:
        Admission-control tenant the request is accounted against (quotas
        are per tenant).  Not part of the group, cache or store keys.
    """

    request_id: str
    geometry: MosaicGeometry
    boundary_loop: np.ndarray
    tol: float
    max_iterations: int
    init_mode: str
    check_interval: int
    deadline_seconds: float | None = None
    tenant: str = "default"

    @classmethod
    def create(
        cls,
        geometry: MosaicGeometry,
        boundary_loop: np.ndarray,
        tol: float = 1e-6,
        max_iterations: int = 400,
        init_mode: str = "mean",
        check_interval: int = 1,
        request_id: str | None = None,
        deadline_seconds: float | None = None,
        tenant: str = "default",
    ) -> "SolveRequest":
        """Validate and canonicalize a BVP into a :class:`SolveRequest`."""

        if not isinstance(geometry, _geometry_types()):
            raise RequestValidationError(
                f"geometry must be a MosaicGeometry or CompositeMosaicGeometry, "
                f"got {type(geometry).__name__}"
            )
        # Private copy: a queued request must not alias caller memory the
        # caller may mutate before the batch executes.
        loop = np.array(boundary_loop, dtype=float, copy=True, order="C")
        expected = geometry.global_boundary_size
        if loop.ndim != 1 or loop.shape[0] != expected:
            raise RequestValidationError(
                f"boundary loop must be a vector of length {expected} for this "
                f"geometry, got shape {np.shape(boundary_loop)}"
            )
        if not np.all(np.isfinite(loop)):
            raise RequestValidationError("boundary loop contains non-finite values")
        if not (np.isfinite(tol) and tol >= 0.0):
            raise RequestValidationError(f"tol must be finite and >= 0, got {tol}")
        if int(max_iterations) < 1:
            raise RequestValidationError("max_iterations must be at least 1")
        if init_mode not in _INIT_MODES:
            raise RequestValidationError(
                f"init_mode must be one of {_INIT_MODES}, got {init_mode!r}"
            )
        if init_mode == "linear" and not geometry.is_rectangular:
            raise RequestValidationError(
                "init_mode 'linear' is only defined on rectangular domains"
            )
        if int(check_interval) < 1:
            raise RequestValidationError("check_interval must be at least 1")
        if deadline_seconds is not None and not (
            np.isfinite(deadline_seconds) and deadline_seconds > 0
        ):
            raise RequestValidationError(
                f"deadline_seconds must be finite and positive, got {deadline_seconds}"
            )
        if not isinstance(tenant, str) or not tenant:
            raise RequestValidationError("tenant must be a non-empty string")
        loop.flags.writeable = False
        return cls(
            request_id=request_id if request_id is not None else _next_request_id(),
            geometry=geometry,
            boundary_loop=loop,
            tol=float(tol),
            max_iterations=int(max_iterations),
            init_mode=init_mode,
            check_interval=int(check_interval),
            deadline_seconds=(
                float(deadline_seconds) if deadline_seconds is not None else None
            ),
            tenant=tenant,
        )

    @classmethod
    def from_function(
        cls,
        geometry: MosaicGeometry,
        fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
        **kwargs,
    ) -> "SolveRequest":
        """Build a request by sampling ``fn(x, y)`` along the global boundary.

        For composite geometries the function is sampled along the re-entrant
        composite boundary loop.
        """

        loop = geometry.boundary_from_function(fn)
        return cls.create(geometry, loop, **kwargs)

    @property
    def group_key(self) -> tuple:
        """Key under which requests can be fused into one batched run."""

        return (self.geometry, self.init_mode, self.check_interval)


@dataclass
class SolveResult:
    """Outcome of one served solve request.

    ``batch_size`` is the number of requests fused into the solver run that
    produced this solution (0 for cache hits, which ran no solver at all);
    ``latency_seconds`` measures submit-to-completion time under the server's
    clock.
    """

    request_id: str
    solution: np.ndarray
    iterations: int
    converged: bool
    cache_hit: bool = False
    batch_size: int = 0
    latency_seconds: float = 0.0
    deltas: list = field(default_factory=list)
