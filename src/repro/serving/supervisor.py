"""Worker supervision and circuit breaking for the serving pipeline.

Two independent pieces of the robustness layer live here:

:class:`WorkerSupervisor` — heartbeat-based supervision of the solve
workers.  Every batch group a worker picks up registers a *flight*
(:meth:`begin`), the worker heartbeats at stage boundaries (batch prepared,
each solve attempt, solve finished) and ends the flight when the group
resolves.  :meth:`check` flags flights whose last heartbeat is older than
the timeout — covering both a hung solve and a live worker whose heartbeats
are being lost — and hands their in-flight requests back to the server for
requeueing.  Deaths (:class:`~repro.serving.faults.WorkerDeath` escaping a
batch) and hangs both schedule a *restart* with capped exponential backoff:
the dispatcher holds off taking new work until the gate passes, modelling a
worker process coming back up.  The restart budget (``max_restarts``) bounds
crash loops: once exhausted the supervisor reports itself dead and the
server fails requests instead of requeueing forever.

Requeue safety is inherited from the idempotent
:class:`~repro.serving.store.RequestStore`: a requeued request whose
original worker turns out to still be alive produces a *duplicate delivery*
(counted, waiters untouched) rather than a double resolution, so the effect
of every request stays exactly-once no matter how the race resolves.

:class:`CircuitBreaker` / :class:`BreakerBoard` — per-``solver_fusion_key``
circuit breakers converting repeated backend failures into fast typed
rejections (:class:`~repro.serving.futures.CircuitOpenError`) instead of
retry storms.  The classic three-state machine:

* **closed** — requests flow; ``failure_threshold`` *consecutive* solve
  failures trip the breaker;
* **open** — submissions for that fusion key are rejected at the front door
  until ``reset_timeout_seconds`` passes;
* **half-open** — up to ``half_open_probes`` requests are let through; one
  success closes the breaker, one failure re-opens it.

Both classes take an injectable ``clock`` so every transition is
deterministic under the fake clocks the serving tests use.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "WorkerFlight",
    "WorkerSupervisor",
    "BreakerPolicy",
    "CircuitBreaker",
    "BreakerBoard",
]

#: circuit-breaker states
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


# ---------------------------------------------------------------------------
# Worker supervision
# ---------------------------------------------------------------------------


@dataclass
class WorkerFlight:
    """One batch group currently executing on one worker."""

    worker: str
    requests: list
    started_at: float
    last_heartbeat: float


class WorkerSupervisor:
    """Heartbeat supervision of the solve workers, with capped-backoff restarts.

    Parameters
    ----------
    clock:
        Monotonic time source (injectable for deterministic tests).
    heartbeat_timeout_seconds:
        A flight whose last heartbeat is older than this is declared hung.
    restart_backoff_seconds, restart_backoff_cap:
        Capped exponential backoff between worker restarts:
        ``min(restart_backoff_seconds * 2**(n-1), restart_backoff_cap)``
        for a worker's ``n``-th restart.  The dispatcher consults
        :meth:`restart_gate_remaining` and holds new work until it passes.
    max_restarts:
        Total restart budget across all workers; once spent the supervisor
        is ``exhausted`` and the server fails work instead of requeueing
        (a crash-loop brake).
    """

    def __init__(
        self,
        clock=time.monotonic,
        heartbeat_timeout_seconds: float = 30.0,
        restart_backoff_seconds: float = 0.05,
        restart_backoff_cap: float = 5.0,
        max_restarts: int = 16,
    ):
        if heartbeat_timeout_seconds <= 0:
            raise ValueError("heartbeat_timeout_seconds must be positive")
        if restart_backoff_seconds < 0 or restart_backoff_cap < 0:
            raise ValueError("restart backoff must be non-negative")
        if max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        self.clock = clock
        self.heartbeat_timeout_seconds = float(heartbeat_timeout_seconds)
        self.restart_backoff_seconds = float(restart_backoff_seconds)
        self.restart_backoff_cap = float(restart_backoff_cap)
        self.max_restarts = int(max_restarts)
        self._lock = threading.Lock()
        self._flights: dict[str, WorkerFlight] = {}
        self._restarts_by_worker: dict[str, int] = {}
        self._gate_until = 0.0
        # -- counters --
        self.deaths = 0    #: workers that died (WorkerDeath escaped a batch)
        self.hangs = 0     #: flights flagged by heartbeat timeout
        self.restarts = 0  #: restarts scheduled (deaths + hangs)

    # -- flight lifecycle ---------------------------------------------------------

    def begin(self, worker: str, requests: list, now: float | None = None) -> None:
        """Register a flight: ``worker`` starts executing ``requests``."""

        now = self.clock() if now is None else now
        with self._lock:
            self._flights[worker] = WorkerFlight(
                worker=worker, requests=list(requests),
                started_at=now, last_heartbeat=now,
            )

    def heartbeat(self, worker: str, now: float | None = None) -> None:
        """Refresh a flight's liveness (no-op for unknown/ended flights)."""

        now = self.clock() if now is None else now
        with self._lock:
            flight = self._flights.get(worker)
            if flight is not None:
                flight.last_heartbeat = now

    def end(self, worker: str) -> None:
        """The flight resolved (successfully or not); stop watching it."""

        with self._lock:
            self._flights.pop(worker, None)

    def check(self, now: float | None = None) -> list[WorkerFlight]:
        """Pop and return every flight whose heartbeat has gone stale.

        Each returned flight counts as a hang and schedules a restart; the
        caller (the server) requeues its requests.  A popped flight's
        original worker may still be alive and finish later — the store's
        idempotent upsert absorbs that as a duplicate delivery.
        """

        now = self.clock() if now is None else now
        stale: list[WorkerFlight] = []
        with self._lock:
            for worker, flight in list(self._flights.items()):
                if now - flight.last_heartbeat > self.heartbeat_timeout_seconds:
                    stale.append(self._flights.pop(worker))
            for flight in stale:
                self.hangs += 1
                self._schedule_restart_locked(flight.worker, now)
        return stale

    # -- restarts -----------------------------------------------------------------

    def record_death(self, worker: str, now: float | None = None) -> float:
        """Count one worker death and schedule its restart; returns backoff."""

        now = self.clock() if now is None else now
        with self._lock:
            self.deaths += 1
            self._flights.pop(worker, None)
            return self._schedule_restart_locked(worker, now)

    def _schedule_restart_locked(self, worker: str, now: float) -> float:
        self.restarts += 1
        n = self._restarts_by_worker.get(worker, 0) + 1
        self._restarts_by_worker[worker] = n
        backoff = min(
            self.restart_backoff_seconds * (2 ** (n - 1)),
            self.restart_backoff_cap,
        )
        self._gate_until = max(self._gate_until, now + backoff)
        return backoff

    def restart_gate_remaining(self, now: float | None = None) -> float:
        """Seconds until the dispatcher may hand out new work (0 when open)."""

        now = self.clock() if now is None else now
        with self._lock:
            return max(0.0, self._gate_until - now)

    @property
    def exhausted(self) -> bool:
        """The restart budget is spent; stop requeueing, start failing."""

        with self._lock:
            return self.restarts > self.max_restarts

    # -- introspection ------------------------------------------------------------

    def active_flights(self) -> list[WorkerFlight]:
        with self._lock:
            return list(self._flights.values())

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "active_flights": len(self._flights),
                "deaths": self.deaths,
                "hangs": self.hangs,
                "restarts": self.restarts,
                "max_restarts": self.max_restarts,
                "exhausted": self.restarts > self.max_restarts,
                "restarts_by_worker": dict(self._restarts_by_worker),
                "restart_gate_remaining_seconds": max(
                    0.0, self._gate_until - self.clock()
                ),
            }


# ---------------------------------------------------------------------------
# Circuit breakers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BreakerPolicy:
    """Trip/reset policy shared by every breaker on a board."""

    failure_threshold: int = 5        #: consecutive failures that trip CLOSED->OPEN
    reset_timeout_seconds: float = 5.0  #: OPEN cool-down before probing
    half_open_probes: int = 1         #: concurrent probes allowed while HALF_OPEN

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.reset_timeout_seconds < 0:
            raise ValueError("reset_timeout_seconds must be non-negative")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be at least 1")


class CircuitBreaker:
    """One closed/open/half-open breaker over a failure-prone backend."""

    def __init__(self, policy: BreakerPolicy | None = None, clock=time.monotonic):
        self.policy = policy if policy is not None else BreakerPolicy()
        self.clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes = 0
        # -- counters --
        self.rejections = 0  #: allow() calls refused while open
        self.opens = 0       #: CLOSED/HALF_OPEN -> OPEN transitions
        self.closes = 0      #: HALF_OPEN -> CLOSED transitions

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked(self.clock())
            return self._state

    def allow(self) -> bool:
        """Whether a new request for this backend may proceed right now."""

        with self._lock:
            now = self.clock()
            self._maybe_half_open_locked(now)
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and self._probes < self.policy.half_open_probes:
                self._probes += 1
                return True
            self.rejections += 1
            return False

    def record_success(self) -> None:
        """A solve for this backend succeeded (closes a half-open breaker)."""

        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._probes = 0
                self.closes += 1

    def record_failure(self) -> None:
        """A solve attempt failed; may trip the breaker open."""

        with self._lock:
            now = self.clock()
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                # The probe failed: back to open, fresh cool-down.
                self._state = OPEN
                self._opened_at = now
                self._probes = 0
                self.opens += 1
            elif (
                self._state == CLOSED
                and self._consecutive_failures >= self.policy.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = now
                self.opens += 1

    def _maybe_half_open_locked(self, now: float) -> None:
        if (
            self._state == OPEN
            and now - self._opened_at >= self.policy.reset_timeout_seconds
        ):
            self._state = HALF_OPEN
            self._probes = 0

    def snapshot(self) -> dict:
        with self._lock:
            self._maybe_half_open_locked(self.clock())
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "rejections": self.rejections,
                "opens": self.opens,
                "closes": self.closes,
            }


class BreakerBoard:
    """Lazily-created :class:`CircuitBreaker` per backend key.

    The server keys breakers by a group's mega-fusion compatibility key
    (falling back to the geometry group key when a group never fuses), so
    one failing backend — one solver configuration — trips exactly the
    requests that would have hit it, and unrelated geometries keep serving.
    """

    def __init__(self, policy: BreakerPolicy | None = None, clock=time.monotonic):
        self.policy = policy if policy is not None else BreakerPolicy()
        self.clock = clock
        self._lock = threading.Lock()
        self._breakers: dict = {}

    def get(self, key) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = self._breakers[key] = CircuitBreaker(
                    self.policy, clock=self.clock
                )
            return breaker

    def __len__(self) -> int:
        with self._lock:
            return len(self._breakers)

    def snapshot(self) -> dict:
        """Health view: per-key breaker snapshots plus state tallies."""

        with self._lock:
            breakers = dict(self._breakers)
        per_key = {repr(key): b.snapshot() for key, b in breakers.items()}
        tally = {CLOSED: 0, OPEN: 0, HALF_OPEN: 0}
        for snap in per_key.values():
            tally[snap["state"]] += 1
        return {"keys": per_key, "states": tally}
