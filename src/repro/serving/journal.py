"""Append-only request journal: the write-ahead log behind ``RequestStore``.

A process restart used to lose the entire request store — every settled
result and every in-flight claim.  The journal makes the store durable with
the classic WAL discipline:

* **record before mutate** — the store appends a ``claim`` record before
  installing an in-flight entry, a ``complete`` record before settling a key
  DONE, and a ``fail`` record before settling it FAILED, so the on-disk
  prefix is always a valid history of the in-memory state;
* **checksummed frames** — each record is ``[u32 length][u32 crc32][pickled
  payload]`` after a magic header, so a torn tail (the process died
  mid-write) is detected byte-precisely and truncated on the next open
  instead of poisoning replay;
* **batched fsync** — appends buffer and fsync every ``fsync_every``
  records (``sync()`` forces one; the unsynced count is exposed as ``lag``
  for health checks), trading a bounded recovery gap for not paying an
  fsync per request;
* **compaction** — :meth:`checkpoint` atomically rewrites the file as one
  ``complete`` record per currently-settled result (temp file + fsync +
  ``os.replace``), dropping the claim/fail churn of history.

Record payloads are pickled ``(kind, key, data)`` tuples.  Store keys are
value-stable across processes — geometries are frozen dataclasses and
boundary loops enter the key as raw bytes — so a recovered store replays
completed keys **bitwise-identically**: the unpickled
:class:`~repro.serving.cache.CachedSolution` holds the exact float64 bytes
that were served before the crash.

Crash semantics under fault injection: a ``torn`` fault at the
``JOURNAL_WRITE`` site flushes half a frame to disk and then marks the
journal failed — from then on appends are dropped (counted in
``dropped_after_failure``) exactly as if the process had died at that write,
so a live test server keeps serving from memory while the on-disk journal
ends at the tear, which is what the next recovery must cope with.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path

from .faults import JOURNAL_WRITE, TORN, InjectedFault

__all__ = ["RequestJournal", "JournalCorruptError", "RecoveryReport"]

#: file magic: "repro journal", format version 1
MAGIC = b"RJNL1\n"

#: frame header preceding every record payload
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)

#: pinned pickle protocol so journal bytes do not depend on the interpreter
_PICKLE_PROTOCOL = 4


class JournalCorruptError(RuntimeError):
    """The file exists but is not a journal (bad magic) — never auto-erased."""


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`RequestStore.recover` reconstructed from a journal.

    ``orphaned`` keys were claimed but neither completed nor failed before
    the crash (or their completion sat in the torn/unsynced tail): they are
    *not* installed, so the next submission of that key claims it again and
    the solve runs exactly once more — the exactly-once reclaim guarantee.
    Per key the accounting always balances:
    ``completed + failed + len(orphaned)`` equals the number of keys whose
    last journaled transition survived on disk.
    """

    records: int            #: journal records replayed
    completed: int          #: keys restored as settled DONE (bitwise results)
    failed: int             #: keys whose last record was a failure (reclaimable)
    orphaned: tuple         #: keys left in-flight by the crash (reclaimable)
    truncated_bytes: int    #: torn-tail bytes the journal dropped on open


def _scan(path: Path) -> tuple[list[tuple], int, int]:
    """Parse ``path``; returns ``(records, valid_end_offset, file_size)``.

    Stops at the first frame that is short, fails its checksum, or does not
    unpickle — everything after ``valid_end_offset`` is torn tail.
    """

    raw = path.read_bytes()
    size = len(raw)
    if size == 0:
        return [], 0, 0
    if not raw.startswith(MAGIC):
        raise JournalCorruptError(
            f"{path} does not start with the journal magic {MAGIC!r}; "
            "refusing to truncate a file that is not a request journal"
        )
    records: list[tuple] = []
    offset = len(MAGIC)
    while offset + _FRAME.size <= size:
        length, crc = _FRAME.unpack_from(raw, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > size:
            break
        payload = raw[start:end]
        if zlib.crc32(payload) != crc:
            break
        try:
            record = pickle.loads(payload)
        except Exception:
            break
        records.append(record)
        offset = end
    return records, offset, size


class RequestJournal:
    """Append-only checksummed journal of request-store transitions.

    Parameters
    ----------
    path:
        Journal file.  Created (with magic header) if absent; an existing
        journal is scanned and any torn tail is truncated in place before
        appending resumes (``truncated_bytes`` records how much was cut).
    fsync_every:
        Batched-durability knob: fsync after this many appended records.
        ``1`` makes every record durable before the store mutates (and
        before the caller's future can observe the transition); the default
        trades a ``lag``-bounded recovery gap for throughput.
    faults:
        Optional :class:`~repro.serving.faults.FaultInjector`; the
        ``JOURNAL_WRITE`` site fires before every append.
    """

    #: record kinds (the first element of every pickled payload tuple)
    CLAIM = "claim"
    COMPLETE = "complete"
    FAIL = "fail"

    def __init__(self, path, fsync_every: int = 16, faults=None):
        if fsync_every < 1:
            raise ValueError("fsync_every must be at least 1")
        self.path = Path(path)
        self.fsync_every = int(fsync_every)
        self.faults = faults
        self._lock = threading.RLock()
        self._dirty = 0
        self._failed = False
        # -- counters (exposed via stats()) --
        self.appended = 0            #: records appended this process
        self.syncs = 0               #: fsync batches issued
        self.torn_writes = 0         #: injected torn writes
        self.dropped_after_failure = 0  #: appends dropped after a torn write
        self.checkpoints = 0         #: compacting rewrites
        self.truncated_bytes = 0     #: torn-tail bytes cut on open
        self.records_on_open = 0     #: valid records found on open

        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists() and self.path.stat().st_size > 0:
            records, valid_end, size = _scan(self.path)
            self.records_on_open = len(records)
            if valid_end < size:
                self.truncated_bytes = size - valid_end
                with open(self.path, "r+b") as handle:
                    handle.truncate(valid_end)
                    handle.flush()
                    os.fsync(handle.fileno())
        else:
            with open(self.path, "wb") as handle:
                handle.write(MAGIC)
                handle.flush()
                os.fsync(handle.fileno())
        self._fh = open(self.path, "ab")

    # -- appends ------------------------------------------------------------------

    def append_claim(self, key: tuple) -> None:
        """Record that ``key`` became the in-flight claim of some submission."""

        self._append(self.CLAIM, key, None)

    def append_complete(self, key: tuple, result) -> None:
        """Record ``key`` settling DONE with its full ``CachedSolution``."""

        self._append(self.COMPLETE, key, result)

    def append_fail(self, key: tuple, error: str) -> None:
        """Record ``key`` settling FAILED (reclaimable on recovery)."""

        self._append(self.FAIL, key, str(error))

    def _append(self, kind: str, key: tuple, data) -> None:
        payload = pickle.dumps((kind, key, data), protocol=_PICKLE_PROTOCOL)
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        with self._lock:
            if self._failed:
                # A torn write "killed" this journal's process: behave as the
                # crashed process would — no further records reach the disk.
                self.dropped_after_failure += 1
                return
            if self.faults is not None:
                spec = self.faults.fire(JOURNAL_WRITE, kind=kind)
                if spec is not None and spec.kind == TORN:
                    self._fh.write(frame[: max(1, len(frame) // 2)])
                    self._fh.flush()
                    os.fsync(self._fh.fileno())
                    self._failed = True
                    self.torn_writes += 1
                    raise InjectedFault(
                        f"injected torn journal write ({kind} record "
                        f"#{self.appended})"
                    )
            self._fh.write(frame)
            self.appended += 1
            self._dirty += 1
            if self._dirty >= self.fsync_every:
                self._sync_locked()

    # -- durability ---------------------------------------------------------------

    def sync(self) -> None:
        """Force-fsync any buffered records (drops ``lag`` to zero)."""

        with self._lock:
            if self._dirty:
                self._sync_locked()

    def _sync_locked(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._dirty = 0
        self.syncs += 1

    @property
    def lag(self) -> int:
        """Appended records not yet fsynced — the bounded recovery gap."""

        with self._lock:
            return self._dirty

    @property
    def failed(self) -> bool:
        """Whether a torn write permanently failed this journal handle."""

        with self._lock:
            return self._failed

    # -- replay / compaction ------------------------------------------------------

    def replay(self) -> list[tuple]:
        """Every valid ``(kind, key, data)`` record currently on disk.

        Flushes the OS-level buffer first so a same-process reader sees all
        appended records (fsync is about durability, not visibility); on a
        torn journal the replay naturally ends at the tear.
        """

        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
            records, _, _ = _scan(self.path)
            return records

    def checkpoint(self, entries) -> int:
        """Compact: atomically rewrite as one COMPLETE record per entry.

        ``entries`` is an iterable of ``(key, result)``; the rewrite goes to
        a temp file, is fsynced, and replaces the journal with
        :func:`os.replace`, so a crash during compaction leaves either the
        old or the new journal — never a mix.  Clears the failed flag: the
        rewritten file is whole again.  Returns the number of records
        written.
        """

        with self._lock:
            tmp = self.path.with_name(self.path.name + ".tmp")
            written = 0
            with open(tmp, "wb") as handle:
                handle.write(MAGIC)
                for key, result in entries:
                    payload = pickle.dumps(
                        (self.COMPLETE, key, result), protocol=_PICKLE_PROTOCOL
                    )
                    handle.write(
                        _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
                    )
                    written += 1
                handle.flush()
                os.fsync(handle.fileno())
            self._fh.close()
            os.replace(tmp, self.path)
            self._fh = open(self.path, "ab")
            self._dirty = 0
            self._failed = False
            self.checkpoints += 1
            return written

    def close(self) -> None:
        """Sync and close the append handle (idempotent)."""

        with self._lock:
            if self._fh.closed:
                return
            if self._dirty and not self._failed:
                self._sync_locked()
            self._fh.close()

    def stats(self) -> dict:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
            return {
                "path": str(self.path),
                "appended": self.appended,
                "syncs": self.syncs,
                "lag": self._dirty,
                "records_on_open": self.records_on_open,
                "truncated_bytes_on_open": self.truncated_bytes,
                "checkpoints": self.checkpoints,
                "torn_writes": self.torn_writes,
                "dropped_after_failure": self.dropped_after_failure,
                "size_bytes": self.path.stat().st_size if self.path.exists() else 0,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestJournal({str(self.path)!r}, appended={self.appended}, "
            f"lag={self.lag})"
        )
