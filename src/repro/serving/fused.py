"""Fused execution of many same-geometry BVPs in one lattice iteration.

This is the serving-layer generalization of the device-level batching in
:class:`~repro.mosaic.MosaicFlowPredictor`: where the single-BVP predictor
stacks the non-overlapping subdomains of one iteration phase into one solver
call, the fused runner additionally stacks that phase across *all* requests
of a batch — a batch of ``B`` requests with ``S`` subdomains per phase makes
one solver call over ``B * S`` boundary loops.  Requests are independent
problems, so fusing them changes only the shape of the solver call, never the
numbers fed to (or read from) the solver.

Per-request semantics are kept *identical* to running
``MosaicFlowPredictor.run(loop, max_iterations, tol)`` on each request alone:
all requests of a batch start at iteration 1 together, each request performs
exactly the same phase sequence, its convergence is checked on the same
cadence with its own tolerance, and once it converges (or exhausts its own
iteration budget) its field is frozen and it simply stops contributing rows
to the fused calls.  The final dense assembly is fused the same way.

Generator core
--------------
The runner's solver traffic is factored into two *generators* —
:meth:`~FusedBatchRunner.iterate_calls` and
:meth:`~FusedBatchRunner.assembly_calls` — that yield ``(boundaries, points)``
solver calls and receive the predictions back through ``send()``.  Driving
both generators sequentially against ``self.solver`` (what :meth:`run` does)
reproduces the classic fused run exactly.  Driving several runners' generators
*in lockstep* and concatenating their pending rows into one solver call is
cross-request mega-batching (:mod:`repro.serving.megabatch`): each runner
still sees exactly the rows and predictions of its sequential run, so results
are bitwise identical.  The generators deliberately hold no tracing spans
open across yields — interleaved generators on one thread would otherwise
corrupt the tracer's per-thread span stack — spans belong to the drivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mosaic.assembly import overlap_average
from ..mosaic.geometry import PHASE_OFFSETS, MosaicGeometry
from ..mosaic.predictor import initialize_lattice_field
from ..mosaic.solvers import SubdomainSolver
from ..obs.trace import span

__all__ = ["FusedOutcome", "FusedBatchRunner", "FusedState", "drive"]


@dataclass
class FusedOutcome:
    """Per-request outcome of a fused batch run."""

    solution: np.ndarray
    lattice_field: np.ndarray
    iterations: int
    converged: bool
    deltas: list = field(default_factory=list)


@dataclass
class FusedState:
    """Mutable per-batch state threaded through the runner's generators.

    Built by :meth:`FusedBatchRunner.begin`; consumed by
    :meth:`~FusedBatchRunner.iterate_calls`,
    :meth:`~FusedBatchRunner.assembly_calls` and
    :meth:`~FusedBatchRunner.outcomes`.  One state per batch per attempt —
    a partially-driven state is not restartable.
    """

    loops: np.ndarray
    tols: np.ndarray
    budgets: np.ndarray
    fields: np.ndarray
    previous: np.ndarray
    active: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    deltas: list
    num_requests: int
    solutions: list | None = None


def drive(generator, solver) -> None:
    """Run one call generator to exhaustion against ``solver``.

    The sequential driver: every yielded ``(boundaries, points)`` call is
    answered immediately by ``solver.predict``.  This is the oracle execution
    order that mega-batching must (and does) reproduce per runner.
    """

    try:
        boundaries, points = next(generator)
        while True:
            boundaries, points = generator.send(solver.predict(boundaries, points))
    except StopIteration:
        pass


class FusedBatchRunner:
    """Run a batch of same-geometry BVPs through fused solver calls.

    Parameters
    ----------
    geometry:
        Shared interface-lattice geometry of every request in the batch
        (rectangular :class:`MosaicGeometry` or composite
        :class:`~repro.domains.geometry.CompositeMosaicGeometry`).
    solver:
        Subdomain solver; fused calls receive ``(B * S, 4N)`` boundary
        stacks.
    init_mode, check_interval:
        Shared lattice initialization and convergence-check cadence (these
        are part of the batcher's group key).
    assembly_batch:
        Anchor chunk size of the dense assembly, mirroring
        :func:`~repro.mosaic.assembly.accumulate_dense_predictions`.
    engine:
        Run neural subdomain solves through the :mod:`repro.engine`
        inference compiler (see
        :class:`~repro.mosaic.predictor.MosaicFlowPredictor`); fused
        results stay bitwise identical.
    """

    def __init__(
        self,
        geometry: MosaicGeometry,
        solver: SubdomainSolver,
        init_mode: str = "mean",
        check_interval: int = 1,
        assembly_batch: int = 256,
        engine: bool = False,
    ):
        expected = geometry.subdomain_grid().boundary_size
        if solver.boundary_size != expected:
            raise ValueError(
                f"solver boundary size {solver.boundary_size} does not match the "
                f"geometry's subdomain boundary size {expected}"
            )
        if check_interval < 1:
            raise ValueError("check_interval must be at least 1")
        if engine:
            from ..engine import compile_solver

            solver = compile_solver(solver)
        self.geometry = geometry
        self.solver = solver
        self.init_mode = init_mode
        self.check_interval = int(check_interval)
        self.assembly_batch = int(assembly_batch)
        self._brow, self._bcol = geometry.boundary_loop_local_indices()
        self._crow, self._ccol = geometry.center_line_local_indices()
        self._center_coords = geometry.center_line_local_coordinates()
        self._lattice_mask = geometry.lattice_mask()
        # (rows, cols) matrices per phase: (subdomains_in_phase, points).
        self._phase_reads: list[tuple[np.ndarray, np.ndarray]] = []
        self._phase_writes: list[tuple[np.ndarray, np.ndarray]] = []
        for phase in range(len(PHASE_OFFSETS)):
            anchors = geometry.anchors_for_phase(phase)
            if anchors:
                arr = np.asarray(anchors, dtype=int)
                r0 = arr[:, 0] * geometry.half
                c0 = arr[:, 1] * geometry.half
                self._phase_reads.append(
                    (r0[:, None] + self._brow[None, :], c0[:, None] + self._bcol[None, :])
                )
                self._phase_writes.append(
                    (r0[:, None] + self._crow[None, :], c0[:, None] + self._ccol[None, :])
                )
            else:
                empty = np.empty((0, 0), dtype=int)
                self._phase_reads.append((empty, empty))
                self._phase_writes.append((empty, empty))
        # Phases with no anchors (composite domains, thin lattices) leave the
        # fields unchanged; their zero delta must not count as convergence —
        # mirrored from MosaicFlowPredictor to keep per-request parity.
        self._phase_has_anchors = [rows.size > 0 for rows, _ in self._phase_reads]
        #: number of fused solver calls issued (iteration + assembly)
        self.predict_calls = 0
        #: total subdomain solves carried by those calls
        self.subdomains_solved = 0

    # -- state construction ------------------------------------------------------

    def begin(
        self,
        boundary_loops: np.ndarray,
        tols: np.ndarray | float = 1e-6,
        max_iterations: np.ndarray | int = 400,
    ) -> FusedState:
        """Validate inputs and initialize the per-batch iteration state."""

        geometry = self.geometry
        loops = np.asarray(boundary_loops, dtype=float)
        if loops.ndim != 2 or loops.shape[1] != geometry.global_boundary_size:
            raise ValueError(
                f"boundary_loops must have shape (B, {geometry.global_boundary_size}), "
                f"got {loops.shape}"
            )
        num_requests = loops.shape[0]
        tols = np.broadcast_to(np.asarray(tols, dtype=float), (num_requests,)).copy()
        budgets = np.broadcast_to(
            np.asarray(max_iterations, dtype=int), (num_requests,)
        ).copy()
        if np.any(budgets < 1):
            raise ValueError("max_iterations must be at least 1")

        fields = np.stack(
            [
                initialize_lattice_field(geometry, loops[i], self.init_mode)
                for i in range(num_requests)
            ]
        )
        return FusedState(
            loops=loops,
            tols=tols,
            budgets=budgets,
            fields=fields,
            previous=fields[:, self._lattice_mask].copy(),
            active=np.ones(num_requests, dtype=bool),
            iterations=np.zeros(num_requests, dtype=int),
            converged=np.zeros(num_requests, dtype=bool),
            deltas=[[] for _ in range(num_requests)],
            num_requests=num_requests,
        )

    # -- iteration ---------------------------------------------------------------

    def run(
        self,
        boundary_loops: np.ndarray,
        tols: np.ndarray | float = 1e-6,
        max_iterations: np.ndarray | int = 400,
    ) -> list[FusedOutcome]:
        """Solve every request of the batch; returns per-request outcomes.

        ``tols`` and ``max_iterations`` may be scalars (shared) or per-request
        vectors — per-request values do not break fusion.
        """

        state = self.begin(boundary_loops, tols, max_iterations)
        with span("fused.iterate", requests=state.num_requests) as iterate_span:
            drive(self.iterate_calls(state), self.solver)
            iterate_span.set_attr("iterations", int(state.iterations.max(initial=0)))
        with span("fused.assembly", requests=state.num_requests):
            drive(self.assembly_calls(state), self.solver)
        return self.outcomes(state)

    def iterate_calls(self, state: FusedState):
        """Generator of the lattice-iteration solver calls of one batch.

        Yields ``(boundaries, points)`` for each fused call and expects the
        ``(rows, q)`` prediction array back through ``send()``.  Iterations
        whose phase has no anchors issue no call.
        """

        fields, tols, budgets = state.fields, state.tols, state.budgets
        previous, active = state.previous, state.active
        iterations, converged = state.iterations, state.converged
        deltas, mask = state.deltas, self._lattice_mask
        for iteration in range(1, int(budgets.max()) + 1):
            if not active.any():
                break
            phase = (iteration - 1) % len(PHASE_OFFSETS)
            idx = np.nonzero(active)[0]
            read_r, read_c = self._phase_reads[phase]
            if read_r.size:
                stacked = fields[idx[:, None, None], read_r[None], read_c[None]]
                batch, subs, loop_len = stacked.shape
                predictions = yield (
                    stacked.reshape(batch * subs, loop_len), self._center_coords
                )
                predictions = predictions.reshape(batch, subs, -1)
                self.predict_calls += 1
                self.subdomains_solved += batch * subs
                write_r, write_c = self._phase_writes[phase]
                fields[idx[:, None, None], write_r[None], write_c[None]] = predictions
            iterations[idx] = iteration

            if iteration % self.check_interval == 0:
                current = fields[idx][:, mask]
                diff = np.linalg.norm(current - previous[idx], axis=1)
                denom = np.linalg.norm(previous[idx], axis=1)
                denom = np.where(denom > 0, denom, 1.0)
                step_deltas = diff / denom
                previous[idx] = current
                for pos, i in enumerate(idx):
                    deltas[i].append(float(step_deltas[pos]))
                window_active = any(
                    self._phase_has_anchors[(it - 1) % len(PHASE_OFFSETS)]
                    for it in range(iteration - self.check_interval + 1, iteration + 1)
                )
                if iteration >= len(PHASE_OFFSETS) and window_active:
                    newly = idx[step_deltas < tols[idx]]
                    converged[newly] = True
                    active[newly] = False
            active &= iterations < budgets

    def outcomes(self, state: FusedState) -> list[FusedOutcome]:
        """Package a fully-driven state into per-request outcomes."""

        if state.solutions is None:
            raise RuntimeError(
                "assembly_calls has not been driven to completion for this state"
            )
        return [
            FusedOutcome(
                solution=state.solutions[i],
                lattice_field=state.fields[i],
                iterations=int(state.iterations[i]),
                converged=bool(state.converged[i]),
                deltas=state.deltas[i],
            )
            for i in range(state.num_requests)
        ]

    # -- fused dense assembly ----------------------------------------------------

    def assembly_calls(self, state: FusedState):
        """Generator of the dense-assembly solver calls of one batch.

        Mirrors :func:`~repro.mosaic.assembly.accumulate_dense_predictions`
        per request (same anchor order, same chunking, same accumulation), so
        results match ``assemble_solution`` for each request individually.
        Fills ``state.solutions`` on completion.
        """

        geometry = self.geometry
        fields, loops = state.fields, state.loops
        num_requests = state.num_requests
        accumulator = np.zeros_like(fields)
        # The contribution counts depend only on the geometry (how many
        # subdomains cover each grid point), so one count field serves every
        # request of the batch.
        counts = np.zeros(fields.shape[1:])
        batch_index = np.arange(num_requests)[:, None, None]

        irow, icol = geometry.interior_local_indices()
        interior_coords = geometry.interior_local_coordinates()
        anchor_array = np.asarray(geometry.anchors(), dtype=int)
        windows_r = anchor_array[:, 0] * geometry.half
        windows_c = anchor_array[:, 1] * geometry.half

        for start in range(0, len(anchor_array), self.assembly_batch):
            stop = min(start + self.assembly_batch, len(anchor_array))
            r0 = windows_r[start:stop]
            c0 = windows_c[start:stop]
            rows_b = r0[:, None] + self._brow[None, :]
            cols_b = c0[:, None] + self._bcol[None, :]
            rows_i = r0[:, None] + irow[None, :]
            cols_i = c0[:, None] + icol[None, :]
            stacked = fields[:, rows_b, cols_b]
            batch, subs, loop_len = stacked.shape
            predictions = yield (
                stacked.reshape(batch * subs, loop_len), interior_coords
            )
            predictions = predictions.reshape(batch, subs, -1)
            self.predict_calls += 1
            self.subdomains_solved += batch * subs
            np.add.at(accumulator, (batch_index, rows_i[None], cols_i[None]), predictions)
            np.add.at(accumulator, (batch_index, rows_b[None], cols_b[None]), stacked)
            np.add.at(counts, (rows_i, cols_i), 1.0)
            np.add.at(counts, (rows_b, cols_b), 1.0)

        state.solutions = [
            geometry.insert_global_boundary(
                loops[i], overlap_average(accumulator[i], counts)
            )
            for i in range(num_requests)
        ]
