"""LRU solution cache keyed by quantized boundary data.

Production traffic on a PDE service is heavily repetitive: the same or
nearly-the-same boundary conditions are posed again and again (parameter
sweeps, retries, dashboards refreshing a figure).  The cache exploits the
well-posedness of the Dirichlet problem — by the maximum principle the
solution is 1-Lipschitz in the sup-norm of the boundary data — so two
requests whose boundary loops agree after rounding to ``decimals`` digits
have solutions within ``0.5 * 10**-decimals`` of each other, and the cached
solution can be returned for both.  With the default ``decimals=9`` the
substitution error (< 5e-10) is far below the service's accuracy guarantee.

Keys also include the solve parameters (geometry, tolerance, iteration
budget, initialization, check cadence): a looser tolerance must not serve a
request that asked for a tighter one.  The cache is scoped to one server and
therefore one subdomain solver; entries from different solvers never mix.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..obs import memory as obs_memory
from .api import SolveRequest

__all__ = ["CachedSolution", "SolutionCache"]


@dataclass
class CachedSolution:
    """Stored outcome of one solved request.

    Entries are stored and returned by reference — treat them as immutable.
    The server copies the solution array into each :class:`SolveResult` it
    hands out; direct cache users must do the same before mutating.
    """

    solution: np.ndarray
    iterations: int
    converged: bool
    deltas: list = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        """Approximate retained bytes (solution array plus delta floats)."""

        return int(self.solution.nbytes) + 8 * len(self.deltas)


class SolutionCache:
    """Bounded LRU cache of solved BVPs.

    Parameters
    ----------
    capacity:
        Maximum number of cached solutions; the least recently used entry is
        evicted when full.
    decimals:
        Boundary values are rounded to this many decimal digits before
        hashing, so near-duplicate requests share an entry.
    """

    def __init__(self, capacity: int = 256, decimals: int = 9):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if decimals < 0:
            raise ValueError("decimals must be non-negative")
        self.capacity = int(capacity)
        self.decimals = int(decimals)
        self._entries: OrderedDict[tuple, CachedSolution] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def key_for(self, request: SolveRequest) -> tuple:
        """Quantized cache key of a canonicalized request."""

        quantized = np.round(request.boundary_loop, self.decimals)
        # Normalize -0.0 to 0.0 so the byte-level hash is sign-insensitive.
        quantized = quantized + 0.0
        return (
            request.geometry,
            request.init_mode,
            request.check_interval,
            request.tol,
            request.max_iterations,
            quantized.tobytes(),
        )

    def get(self, request: SolveRequest) -> CachedSolution | None:
        """Look up a request; counts a hit/miss and refreshes LRU order."""

        key = self.key_for(request)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, request: SolveRequest, entry: CachedSolution) -> None:
        """Insert (or refresh) the solved outcome for a request."""

        key = self.key_for(request)
        previous = self._entries.get(key)
        if previous is not None:
            self._entries.move_to_end(key)
            if previous is not entry:
                obs_memory.sub(obs_memory.SOLUTION_CACHE, previous.nbytes)
                obs_memory.add(obs_memory.SOLUTION_CACHE, entry.nbytes)
        else:
            obs_memory.add(obs_memory.SOLUTION_CACHE, entry.nbytes)
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            obs_memory.sub(obs_memory.SOLUTION_CACHE, evicted.nbytes)
            self.evictions += 1

    def clear(self) -> None:
        for entry in self._entries.values():
            obs_memory.sub(obs_memory.SOLUTION_CACHE, entry.nbytes)
        self._entries.clear()

    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
