"""Dynamic batching of solve requests.

The throughput of the Mosaic Flow predictor comes from stacking many
same-shape subdomain solves into single fused solver calls (Figure 8 of the
paper).  The batcher turns a stream of independent :class:`SolveRequest`\\ s
into such fused batches: requests are queued per
:meth:`~repro.serving.api.SolveRequest.group_key` (same geometry, same
initialization, same check cadence) and a queue is released either when it
reaches ``max_batch_size`` or when its oldest request has waited
``max_wait_seconds`` — the classic size-or-deadline policy of inference
servers.

The batcher is synchronous and clock-injectable: callers drive it by
enqueuing and polling, and tests can substitute a fake clock for
deterministic deadline behaviour.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .api import SolveRequest

__all__ = ["BatchPolicy", "Batch", "DynamicBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """Size-or-deadline release policy of the dynamic batcher.

    Attributes
    ----------
    max_batch_size:
        A group queue is released as soon as it holds this many requests.
    max_wait_seconds:
        A group queue is released (at the next poll) once its oldest request
        has waited this long, even if the batch is not full.  ``0`` releases
        on every poll — i.e. no coalescing across polls.
    """

    max_batch_size: int = 64
    max_wait_seconds: float = 0.01

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if self.max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be non-negative")


@dataclass
class Batch:
    """A group of fusable requests released by the batcher.

    ``reason`` records *why* the batch was released: ``"size"`` (the queue
    reached ``max_batch_size``), ``"deadline"`` (its oldest request waited
    out ``max_wait_seconds``), ``"flush"`` (an explicit drain), or
    ``"co_release"`` (pulled early to ride a compatible mega-batch).
    """

    group_key: tuple
    requests: list[SolveRequest]
    enqueued_at: list[float] = field(default_factory=list)
    reason: str = "size"

    def __len__(self) -> int:
        return len(self.requests)


class DynamicBatcher:
    """Coalesce queued requests into fused batches per geometry group."""

    def __init__(self, policy: BatchPolicy | None = None, clock=time.monotonic):
        self.policy = policy or BatchPolicy()
        self.clock = clock
        self._queues: dict[tuple, list[tuple[SolveRequest, float]]] = {}

    @property
    def queue_depth(self) -> int:
        """Total number of requests currently waiting."""

        return sum(len(q) for q in self._queues.values())

    @property
    def num_groups(self) -> int:
        return len(self._queues)

    def enqueue(self, request: SolveRequest) -> list[Batch]:
        """Queue a request; return any batches released by size or deadline."""

        queue = self._queues.setdefault(request.group_key, [])
        queue.append((request, self.clock()))
        return self.poll()

    def next_deadline(self) -> float | None:
        """Clock time at which the oldest queued request's wait expires.

        ``None`` when nothing is queued.  The async dispatcher sleeps until
        the earliest deadline across its batchers instead of busy-polling.
        """

        oldest = None
        for queue in self._queues.values():
            if queue:
                stamp = queue[0][1]
                oldest = stamp if oldest is None else min(oldest, stamp)
        if oldest is None:
            return None
        return oldest + self.policy.max_wait_seconds

    def poll(self) -> list[Batch]:
        """Release every group that is full or whose deadline has passed."""

        now = self.clock()
        released: list[Batch] = []
        for key in list(self._queues):
            queue = self._queues[key]
            while len(queue) >= self.policy.max_batch_size:
                chunk, self._queues[key] = (
                    queue[: self.policy.max_batch_size],
                    queue[self.policy.max_batch_size:],
                )
                queue = self._queues[key]
                released.append(self._make_batch(key, chunk, "size"))
            if queue and now - queue[0][1] >= self.policy.max_wait_seconds:
                released.append(self._make_batch(key, queue, "deadline"))
                self._queues[key] = []
            if not self._queues[key]:
                del self._queues[key]
        return released

    def flush(self) -> list[Batch]:
        """Release every queued request regardless of size or deadline."""

        released = [
            self._make_batch(key, queue, "flush")
            for key, queue in self._queues.items()
            if queue
        ]
        self._queues.clear()
        return released

    def take_all(self) -> list[Batch]:
        """Release every queued request to ride a compatible mega-batch.

        Identical to :meth:`flush` except for the recorded release reason;
        the server calls this on batchers whose queued requests can fuse
        with a batch that was just released by size or deadline, so partial
        queues do not sit out a mega run they could have joined.
        """

        released = [
            self._make_batch(key, queue, "co_release")
            for key, queue in self._queues.items()
            if queue
        ]
        self._queues.clear()
        return released

    @staticmethod
    def _make_batch(
        key: tuple, entries: list[tuple[SolveRequest, float]], reason: str
    ) -> Batch:
        return Batch(
            group_key=key,
            requests=[request for request, _ in entries],
            enqueued_at=[stamp for _, stamp in entries],
            reason=reason,
        )
