"""Perfmodel-backed throughput/latency estimates for the batcher.

Instead of hardcoding a batch size, the server can size its batches from the
GPU cost model of :mod:`repro.perfmodel`: the FLOP count of one fused solver
call gives the call's latency on a target platform (Section 3.2 / Figure 8),
and the activation footprint per subdomain gives the memory-feasible maximum
batch — the limit that determines the largest usable batch in Figure 5.

All quantities are *model* estimates (the reproduction runs on CPU); they are
used for policy decisions, not for reporting measured performance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mosaic.geometry import PHASE_OFFSETS, MosaicGeometry
from ..perfmodel.gpu import GPU_SPECS, GPUSpec, inference_time, model_inference_flops

__all__ = ["ServingEstimator"]


@dataclass(frozen=True)
class ServingEstimator:
    """Throughput/latency model of fused subdomain inference on one platform.

    Parameters
    ----------
    gpu:
        Target platform (one of Table 2, or a custom :class:`GPUSpec`).
    hidden, trunk_layers:
        Architecture of the subdomain network being served.
    architecture:
        ``"split"`` (SDNet) or ``"concat"`` (baseline).
    efficiency:
        Fraction of peak FLOP rate achieved by fused batches (paper: ~0.5).
    launch_overhead_seconds:
        Fixed per-call cost (kernel launch, framework dispatch); this is what
        makes small batches throughput-inefficient.
    memory_fraction:
        Fraction of device memory available for activations.
    """

    gpu: GPUSpec
    hidden: int = 256
    trunk_layers: int = 6
    architecture: str = "split"
    efficiency: float = 0.5
    launch_overhead_seconds: float = 20e-6
    memory_fraction: float = 0.8

    @classmethod
    def for_platform(cls, name: str, **kwargs) -> "ServingEstimator":
        """Build an estimator for one of the paper's platforms by name."""

        return cls(gpu=GPU_SPECS[name], **kwargs)

    # -- per-subdomain costs ------------------------------------------------------

    def flops_per_subdomain(self, boundary_size: int, q_points: int) -> float:
        return model_inference_flops(
            boundary_size, self.hidden, self.trunk_layers, q_points, self.architecture
        )

    def bytes_per_subdomain(self, boundary_size: int, q_points: int) -> float:
        """Activation footprint of one subdomain inside a fused call (fp32)."""

        activations = (
            boundary_size            # boundary loop input
            + self.hidden            # boundary embedding
            + q_points * self.hidden  # trunk activations per query point
            + q_points               # output
        )
        return 4.0 * activations

    # -- fused-call estimates -----------------------------------------------------

    def max_subdomains_per_call(self, boundary_size: int, q_points: int) -> int:
        """Memory-feasible number of subdomains in one fused call (Figure 5)."""

        budget = self.gpu.memory_bytes * self.memory_fraction
        return max(1, int(budget // self.bytes_per_subdomain(boundary_size, q_points)))

    def call_latency(self, num_subdomains: int, boundary_size: int, q_points: int) -> float:
        """Estimated latency of one fused call over ``num_subdomains``."""

        if num_subdomains < 1:
            raise ValueError("num_subdomains must be at least 1")
        flops = num_subdomains * self.flops_per_subdomain(boundary_size, q_points)
        return self.launch_overhead_seconds + inference_time(flops, self.gpu, self.efficiency)

    def throughput(self, num_subdomains: int, boundary_size: int, q_points: int) -> float:
        """Subdomains per second of one fused call (rises with batch size)."""

        return num_subdomains / self.call_latency(num_subdomains, boundary_size, q_points)

    # -- policy -------------------------------------------------------------------

    def recommend_mega_rows(
        self,
        boundary_size: int,
        q_points: int,
        latency_budget_seconds: float | None = None,
    ) -> int:
        """Largest fused-call row count for cross-request mega-batching.

        Mega-batches concatenate the pending rows of many request batches
        into one solver call, so the cap is per *call* (subdomain rows), not
        per request: the memory-feasible maximum
        (:meth:`max_subdomains_per_call`), halved while
        :meth:`call_latency` exceeds the optional latency budget.  The
        serving layer asks once per distinct query-point count (center-line
        rows and interior rows have very different footprints).
        """

        rows = self.max_subdomains_per_call(boundary_size, q_points)
        if latency_budget_seconds is not None:
            while rows > 1 and (
                self.call_latency(rows, boundary_size, q_points)
                > latency_budget_seconds
            ):
                rows //= 2
        return max(1, rows)

    def recommend_batch_size(
        self,
        geometry: MosaicGeometry,
        latency_budget_seconds: float | None = None,
        max_requests: int | None = None,
        assembly_batch: int = 256,
    ) -> int:
        """Largest request batch that fits memory (and a latency budget).

        A fused run over a batch of ``B`` requests issues two kinds of solver
        calls: iteration calls over the biggest placement phase
        (``ceil(anchor_rows/2) * ceil(anchor_cols/2)`` subdomains per
        request, center-line query points) and dense-assembly calls (up to
        ``assembly_batch`` anchors per request per call — the fused runner's
        chunk size — with the much larger interior query set).  Both are
        checked against device memory and, optionally,
        ``latency_budget_seconds``; the recommendation is the largest ``B``
        satisfying the binding constraint.
        """

        boundary_size = geometry.subdomain_grid().boundary_size
        largest_phase = max(
            len(geometry.anchors_for_phase(phase))
            for phase in range(len(PHASE_OFFSETS))
        )
        calls = [
            # (subdomains per request, query points per subdomain)
            (max(1, largest_phase), len(geometry.center_line_local_indices()[0])),
            (
                max(1, min(geometry.num_subdomains, int(assembly_batch))),
                len(geometry.interior_local_indices()[0]),
            ),
        ]
        batch = max(
            1,
            min(
                self.max_subdomains_per_call(boundary_size, q) // per_request
                for per_request, q in calls
            ),
        )
        if latency_budget_seconds is not None:
            while batch > 1 and any(
                self.call_latency(batch * per_request, boundary_size, q)
                > latency_budget_seconds
                for per_request, q in calls
            ):
                batch //= 2
        if max_requests is not None:
            batch = min(batch, max(1, int(max_requests)))
        return batch
