"""Synchronous batched-inference server for Mosaic Flow solves.

``Server`` is the front door of the serving subsystem: callers
:meth:`~Server.submit` canonicalized :class:`~repro.serving.api.SolveRequest`
objects and :meth:`~Server.drain` completed
:class:`~repro.serving.api.SolveResult` objects.  Between the two sit the
pieces the rest of this package provides:

* an LRU :class:`~repro.serving.cache.SolutionCache` answers repeated and
  near-duplicate requests without any solve,
* a per-geometry :class:`~repro.serving.batcher.DynamicBatcher` coalesces
  queued requests into fused batches (size-or-deadline policy, with the
  batch size optionally chosen by the perfmodel-backed
  :class:`~repro.serving.estimator.ServingEstimator`),
* a :class:`~repro.serving.workers.WorkerPool` shards each fused batch
  across simulated ranks, each running the request-level batched iteration
  of :class:`~repro.serving.fused.FusedBatchRunner`.

The server is synchronous: batches execute inside ``submit``/``drain`` calls
once released by the batcher.  Results are collected with ``drain()`` (which
also flushes every queue) or looked up individually with ``result()``.
"""

from __future__ import annotations

import time

import numpy as np

from ..mosaic.geometry import MosaicGeometry
from ..mosaic.solvers import FDSubdomainSolver
from ..obs.trace import span
from .api import SolveRequest, SolveResult
from .batcher import Batch, BatchPolicy, DynamicBatcher
from .cache import CachedSolution, SolutionCache
from .estimator import ServingEstimator
from .stats import ServingStats
from .workers import WorkerPool

__all__ = ["Server", "default_solver_factory"]


def default_solver_factory(geometry: MosaicGeometry) -> FDSubdomainSolver:
    """Exact finite-difference subdomain solver for ``geometry``."""

    return FDSubdomainSolver(geometry.subdomain_grid(), method="direct")


class Server:
    """Batched, cached, sharded Mosaic Flow solve service.

    Parameters
    ----------
    solver_factory:
        ``solver_factory(geometry) -> SubdomainSolver``; defaults to the
        exact finite-difference solver.  Use a closure over a trained SDNet
        for the paper's neural configuration.
    policy:
        Batching policy shared by every geometry group.  When ``estimator``
        is given, each group's ``max_batch_size`` is additionally capped by
        the estimator's memory/latency recommendation for that geometry.
    cache:
        A :class:`SolutionCache`, or ``None`` to disable caching (every
        request is solved).
    estimator:
        Optional :class:`ServingEstimator` used to pick per-geometry batch
        sizes from the GPU cost model.
    latency_budget_seconds:
        Latency budget handed to the estimator's recommendation.
    world_size:
        Ranks of the worker pool each fused batch is sharded across.
    clock:
        Monotonic time source (injectable for deterministic tests).
    engine:
        Run neural subdomain solves through the :mod:`repro.engine`
        inference compiler.  Each solver built by ``solver_factory`` is
        replaced with an engine-backed clone whose
        :class:`~repro.engine.runtime.CompiledModule` comes from a
        per-geometry LRU (:class:`~repro.engine.runtime.ModuleCache`, keyed
        like the solution cache by the request's geometry group), so worker
        ranks of successive batches reuse the same traced graphs.  Served
        results are bitwise identical with the engine on or off.
    engine_cache_size:
        Capacity of the per-geometry compiled-module LRU.
    engine_max_plan_bytes:
        Per-thread execution-plan memory budget handed to every compiled
        module (:class:`~repro.engine.runtime.PlanCache`): once a worker
        thread's preallocated plan buffers exceed the budget, its least
        recently used plans are evicted.  Eviction counters and current
        plan bytes are surfaced by ``Server.stats()`` under ``"engine"``.
    engine_profile:
        Opt compiled modules into per-kernel profiling
        (:class:`~repro.obs.profile.KernelProfiler`): every executed plan
        step is timed and attributed to its op, surfaced by
        ``Server.stats()`` under ``"kernels"`` and by
        :meth:`kernel_report`.  Served results stay bitwise identical.

    Observability
    -------------
    The request lifecycle emits hierarchical spans when tracing is on
    (:func:`repro.obs.enable_tracing`): ``serving.submit`` (with a
    ``serving.cache_lookup`` child) and, per executed batch,
    ``serving.batch`` with ``serving.batch_assembly`` →
    ``serving.fused_solve`` → ``serving.postprocess`` children.  All serving
    metrics live in ``self.stats.registry``
    (:class:`~repro.obs.metrics.MetricsRegistry`), including the
    ``serving.queue_wait_seconds`` histogram fed from each batch's enqueue
    timestamps.
    """

    def __init__(
        self,
        solver_factory=default_solver_factory,
        policy: BatchPolicy | None = None,
        cache: SolutionCache | None = None,
        estimator: ServingEstimator | None = None,
        latency_budget_seconds: float | None = None,
        world_size: int = 1,
        clock=time.monotonic,
        engine: bool = False,
        engine_cache_size: int = 8,
        engine_max_plan_bytes: int | None = None,
        engine_profile: bool = False,
    ):
        self.solver_factory = solver_factory
        self.policy = policy or BatchPolicy()
        self.cache = cache
        self.estimator = estimator
        self.latency_budget_seconds = latency_budget_seconds
        self.world_size = int(world_size)
        self.clock = clock
        self.engine = bool(engine)
        self.engine_max_plan_bytes = engine_max_plan_bytes
        self.engine_profile = bool(engine_profile)
        self.engine_modules = None
        engine_stats_provider = None
        kernel_profile_provider = None
        if self.engine:
            from ..engine import ModuleCache

            self.engine_modules = ModuleCache(engine_cache_size)
            engine_stats_provider = self.engine_modules.engine_stats
            if self.engine_profile:
                kernel_profile_provider = self.engine_modules.kernel_profile
        self.stats = ServingStats(
            engine_stats_provider=engine_stats_provider,
            kernel_profile_provider=kernel_profile_provider,
        )
        self._batchers: dict[tuple, DynamicBatcher] = {}
        self._pools: dict[tuple, WorkerPool] = {}
        self._submit_times: dict[str, float] = {}
        self._completed: dict[str, SolveResult] = {}

    # -- front-end ----------------------------------------------------------------

    def submit(self, request: SolveRequest) -> str:
        """Queue one request; returns its id.  May execute released batches."""

        if not isinstance(request, SolveRequest):
            raise TypeError("submit() takes a SolveRequest; build one with SolveRequest.create")
        if request.request_id in self._submit_times or request.request_id in self._completed:
            raise ValueError(f"duplicate request id {request.request_id!r}")
        with span("serving.submit", request_id=request.request_id):
            now = self.clock()
            self.stats.record_submit()
            self._submit_times[request.request_id] = now

            if self.cache is not None:
                with span("serving.cache_lookup") as lookup:
                    entry = self.cache.get(request)
                    lookup.set_attr("hit", entry is not None)
                if entry is not None:
                    self.stats.record_cache_hit()
                    self._complete(
                        request.request_id, entry, cache_hit=True, batch_size=0
                    )
                    return request.request_id

            ready = self._batcher_for(request).enqueue(request)
            self._run_batches(ready)
            self._run_batches(self.poll())
        return request.request_id

    def poll(self) -> list[Batch]:
        """Collect deadline-expired batches from every group (without running)."""

        released: list[Batch] = []
        for batcher in self._batchers.values():
            released.extend(batcher.poll())
        return released

    def drain(self) -> dict[str, SolveResult]:
        """Flush and execute every queued request; return completed results.

        Returns every result completed since the previous ``drain`` (including
        cache hits and batches released during ``submit``), keyed by request
        id, and clears the completed set.
        """

        for batcher in self._batchers.values():
            self._run_batches(batcher.flush())
        completed, self._completed = self._completed, {}
        return completed

    def result(self, request_id: str) -> SolveResult | None:
        """Completed result for a request id, or ``None`` if still pending."""

        return self._completed.get(request_id)

    @property
    def pending(self) -> int:
        """Requests queued but not yet executed."""

        return sum(batcher.queue_depth for batcher in self._batchers.values())

    # -- internals ----------------------------------------------------------------

    def _batcher_for(self, request: SolveRequest) -> DynamicBatcher:
        # One batcher per group (rather than one batcher for all groups)
        # because the estimator makes max_batch_size a per-geometry policy.
        key = request.group_key
        batcher = self._batchers.get(key)
        if batcher is None:
            max_batch = self.policy.max_batch_size
            if self.estimator is not None:
                max_batch = self.estimator.recommend_batch_size(
                    request.geometry,
                    latency_budget_seconds=self.latency_budget_seconds,
                    max_requests=max_batch,
                )
            policy = BatchPolicy(
                max_batch_size=max_batch,
                max_wait_seconds=self.policy.max_wait_seconds,
            )
            batcher = DynamicBatcher(policy, clock=self.clock)
            self._batchers[key] = batcher
        return batcher

    def _pool_for(self, request: SolveRequest) -> WorkerPool:
        key = request.group_key
        pool = self._pools.get(key)
        if pool is None:
            pool = WorkerPool(
                request.geometry,
                self._engine_solver_factory(request.geometry),
                world_size=self.world_size,
                init_mode=request.init_mode,
                check_interval=request.check_interval,
            )
            self._pools[key] = pool
        return pool

    def _engine_solver_factory(self, geometry):
        """Solver factory handed to worker pools (engine-wrapped when enabled).

        With ``engine=True`` every per-rank solver is cloned onto a compiled
        module fetched from the per-geometry :class:`ModuleCache`, so ranks
        and successive batches of one geometry group share a single traced
        graph while keeping their own execution buffers (plans are
        per-thread).
        """

        if not self.engine:
            return self.solver_factory
        base = self.solver_factory
        modules = self.engine_modules

        max_plan_bytes = self.engine_max_plan_bytes
        profile = self.engine_profile

        def factory(geom):
            from ..engine import compile_solver

            return compile_solver(
                base(geom), cache=modules, cache_key=geometry,
                max_plan_bytes=max_plan_bytes, profile=profile,
            )

        return factory

    def kernel_report(self, n: int = 10) -> str:
        """Top-kernels table over every compiled module (``engine_profile=True``)."""

        if self.engine_modules is None or not self.engine_profile:
            raise RuntimeError(
                "per-kernel profiling is off; build the server with "
                "engine=True, engine_profile=True"
            )
        profiler = self.engine_modules.kernel_profile()
        if profiler is None:
            return "=== top kernels ===\n(no compiled module has executed yet)"
        return profiler.report(n)

    def _run_batches(self, batches: list[Batch]) -> None:
        for batch in batches:
            self._execute(batch)

    def _execute(self, batch: Batch) -> None:
        requests = batch.requests
        with span("serving.batch", size=len(requests)) as batch_span:
            now = self.clock()
            for enqueued in batch.enqueued_at:
                self.stats.record_queue_wait(now - enqueued)

            with span("serving.batch_assembly"):
                # Deduplicate within the batch on the cache key, so identical
                # (or near-identical) concurrent requests are solved once.
                if self.cache is not None:
                    unique: dict[tuple, int] = {}
                    assignment = []
                    for request in requests:
                        key = self.cache.key_for(request)
                        if key not in unique:
                            unique[key] = len(unique)
                        else:
                            self.stats.record_dedup_hit()
                        assignment.append(unique[key])
                    solve_requests = [None] * len(unique)
                    for request, slot in zip(requests, assignment):
                        if solve_requests[slot] is None:
                            solve_requests[slot] = request
                else:
                    solve_requests = list(requests)
                    assignment = list(range(len(requests)))

                pool = self._pool_for(requests[0])
                loops = np.stack([r.boundary_loop for r in solve_requests])
                tols = np.array([r.tol for r in solve_requests])
                budgets = np.array([r.max_iterations for r in solve_requests])

            with span("serving.fused_solve", unique=len(solve_requests)):
                outcomes = pool.solve(loops, tols, budgets)
            self.stats.record_fused_run(len(solve_requests))
            batch_span.set_attr("unique", len(solve_requests))

            with span("serving.postprocess"):
                if self.cache is not None:
                    for request, outcome in zip(solve_requests, outcomes):
                        self.cache.put(
                            request,
                            CachedSolution(
                                solution=outcome.solution,
                                iterations=outcome.iterations,
                                converged=outcome.converged,
                                deltas=outcome.deltas,
                            ),
                        )

                for request, slot in zip(requests, assignment):
                    outcome = outcomes[slot]
                    entry = CachedSolution(
                        solution=outcome.solution,
                        iterations=outcome.iterations,
                        converged=outcome.converged,
                        deltas=outcome.deltas,
                    )
                    self._complete(
                        request.request_id, entry, cache_hit=False,
                        batch_size=len(solve_requests),
                    )

    def _complete(
        self, request_id: str, entry: CachedSolution, cache_hit: bool, batch_size: int
    ) -> None:
        latency = self.clock() - self._submit_times.pop(request_id)
        self.stats.record_latency(latency)
        self._completed[request_id] = SolveResult(
            request_id=request_id,
            solution=entry.solution.copy(),
            iterations=entry.iterations,
            converged=entry.converged,
            cache_hit=cache_hit,
            batch_size=batch_size,
            latency_seconds=latency,
            deltas=list(entry.deltas),
        )
