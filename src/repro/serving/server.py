"""Async serving front-end for Mosaic Flow solves.

``Server`` is the front door of the serving subsystem.  Since the async
rebuild it is a request *pipeline*:

* :meth:`~Server.submit_async` is non-blocking: it validates the request,
  runs per-tenant admission control, claims the request's canonical key in
  the idempotent :class:`~repro.serving.store.RequestStore` (duplicate
  submissions attach to the in-flight solve, completed keys replay their
  stored result), consults the LRU
  :class:`~repro.serving.cache.SolutionCache`, enqueues cache misses into
  the per-geometry :class:`~repro.serving.batcher.DynamicBatcher`, and
  returns a :class:`~repro.serving.futures.SolveFuture` immediately;
* a background **dispatcher thread** (``async_workers >= 1`` +
  :meth:`~Server.start`) collects size/deadline-released batches and hands
  them to a **thread pool of solve workers**; each batch executes through
  the existing :class:`~repro.serving.workers.WorkerPool` (per-rank solver
  isolation) and :class:`~repro.serving.fused.FusedBatchRunner`;
* batch execution is fault-tolerant: failed solves are retried with capped
  exponential backoff (``max_retries``/``retry_backoff_seconds``), requests
  whose deadline has passed fail fast with
  :class:`~repro.serving.futures.DeadlineExceededError`, retry exhaustion
  surfaces :class:`~repro.serving.futures.RetryExhaustedError`, and
  per-tenant quotas shed load with
  :class:`~repro.serving.futures.QuotaExceededError` instead of queueing
  unboundedly;
* every robustness path is deterministically testable through the
  flag-guarded :class:`~repro.serving.faults.FaultInjector` hooks at the
  worker-call, batch-assembly and store boundaries — plus the process-level
  sites (worker death, heartbeat loss, torn journal write);
* with a ``journal`` the request store is **durable** (write-ahead
  claim/complete/fail records; a restarted server replays completed keys
  bitwise-identically and re-runs interrupted claims exactly once), with a
  ``supervisor`` crashed/hung workers are detected and their in-flight
  requests requeued exactly-once, and per-backend **circuit breakers**
  convert repeated solver failures into fast
  :class:`~repro.serving.futures.CircuitOpenError` rejections;
* under memory pressure (a budgeted :mod:`repro.obs.memory` accountant)
  admission sheds lowest-priority tenants first, and
  :meth:`~Server.drain_and_close` shuts down gracefully: refuse intake,
  finish in-flight work, compact the journal.

The synchronous API is a thin wrapper over the same pipeline: without a
dispatcher, :meth:`~Server.submit` is ``submit_async`` plus an inline
:meth:`~Server.pump` of whatever batches were released, and
:meth:`~Server.drain` flushes, executes (inline or by waiting on the worker
pool) and returns the completed results — so the sync path and the async
path run the identical batching, dedup, solve and postprocess code and are
bitwise-identical for the same request set.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..mosaic.geometry import MosaicGeometry
from ..mosaic.solvers import FDSubdomainSolver
from ..obs import memory as obs_memory
from ..obs.flight import FlightRecord, FlightRecorder
from ..obs.slo import SLOTracker
from ..obs.trace import get_tracer, span
from .api import SolveRequest, SolveResult
from .batcher import Batch, BatchPolicy, DynamicBatcher
from .cache import CachedSolution, SolutionCache
from .estimator import ServingEstimator
from .faults import (
    BATCH_ASSEMBLY,
    DROP,
    DUPLICATE,
    STORE_DELIVER,
    WORKER_DEATH,
    WORKER_HEARTBEAT,
    WORKER_SOLVE,
    FaultInjector,
    WorkerDeath,
)
from .fused import FusedBatchRunner
from .futures import (
    CircuitOpenError,
    DeadlineExceededError,
    MemoryPressureError,
    QuotaExceededError,
    RetryExhaustedError,
    ServerClosedError,
    SolveFuture,
)
from .journal import RequestJournal
from .megabatch import MegaBatchExecutor, MegaSession, solver_fusion_key
from .stats import ServingStats
from .store import AdmissionController, RequestStore, TenantQuota, Waiter
from .supervisor import BreakerBoard, WorkerSupervisor
from .workers import WorkerPool

__all__ = ["Server", "default_solver_factory"]

_UNSET = object()


@dataclass
class _PreparedBatch:
    """One batch after expiry filtering and in-batch dedup, ready to solve."""

    batch: Batch
    live: list
    solve_requests: list
    assignment: list
    loops: np.ndarray
    tols: np.ndarray
    budgets: np.ndarray
    occupancy: int = 1

    @property
    def geometry(self):
        return self.batch.group_key[0]

    @property
    def init_mode(self) -> str:
        return self.batch.group_key[1]

    @property
    def check_interval(self) -> int:
        return self.batch.group_key[2]


def default_solver_factory(geometry: MosaicGeometry) -> FDSubdomainSolver:
    """Exact finite-difference subdomain solver for ``geometry``."""

    return FDSubdomainSolver(geometry.subdomain_grid(), method="direct")


class Server:
    """Batched, cached, idempotent, fault-tolerant Mosaic Flow solve service.

    Parameters
    ----------
    solver_factory:
        ``solver_factory(geometry) -> SubdomainSolver``; defaults to the
        exact finite-difference solver.  Use a closure over a trained SDNet
        for the paper's neural configuration.
    policy:
        Batching policy shared by every geometry group.  When ``estimator``
        is given, each group's ``max_batch_size`` is additionally capped by
        the estimator's memory/latency recommendation for that geometry.
    cache:
        A :class:`SolutionCache`, or ``None`` to disable near-duplicate
        caching (exact idempotency through the request store remains).
    estimator:
        Optional :class:`ServingEstimator` used to pick per-geometry batch
        sizes from the GPU cost model, and to turn latency-budget tenant
        quotas into pending-count limits.
    latency_budget_seconds:
        Latency budget handed to the estimator's recommendation.
    world_size:
        Ranks of the worker pool each fused batch is sharded across.
    clock:
        Monotonic time source (injectable for deterministic tests).
    engine, engine_cache_size, engine_max_plan_bytes, engine_profile:
        Inference-compiler knobs (see :mod:`repro.engine`): run neural
        subdomain solves through per-geometry compiled modules with a
        byte-budgeted plan cache and optional per-kernel profiling.  Served
        results are bitwise identical with the engine on or off.
    store:
        The idempotent :class:`RequestStore`; a default one (exact keys,
        2048 settled entries) is created when omitted.  Duplicate
        submissions of one canonical BVP perform exactly one solve and
        every future resolves with bitwise-identical arrays.
    faults:
        Optional :class:`FaultInjector` enabling the deterministic fault
        hooks (worker-call, batch-assembly, store-delivery).  ``None`` (the
        default) leaves every hook a no-op.
    quotas:
        Per-tenant admission control: ``{tenant: TenantQuota}``, or one
        :class:`TenantQuota` applied to every tenant.  Requests over quota
        are rejected at submit with :class:`QuotaExceededError` (counted in
        ``stats.rejections``) instead of queueing unboundedly.
    max_retries:
        Failed fused solves are retried up to this many times before the
        batch's requests fail with :class:`RetryExhaustedError`.
    retry_backoff_seconds, retry_backoff_cap:
        Capped exponential backoff between retries:
        ``min(retry_backoff_seconds * 2**(attempt-1), retry_backoff_cap)``.
    sleep:
        How backoff passes time.  The default (``None``) waits on the
        server's closing event, so :meth:`close` interrupts an in-progress
        retry backoff instead of sleeping it out.  Tests pass a fake
        clock's ``advance`` so retry scenarios run without real sleeping.
    async_workers:
        Size of the solve-worker thread pool.  ``0`` (default) keeps the
        server fully synchronous — batches run inline on the submitting /
        draining thread, exactly like the pre-async server.  ``>= 1``
        enables :meth:`start`, which spawns the background dispatcher and
        the pool; ``submit_async`` then never executes solves on the
        caller's thread.
    mega_batch:
        Cross-request anchor-level mega-batching (default on).  When
        several batches are ready at once and their geometry groups are
        fusion-compatible — same subdomain grid, equivalent solver
        (:func:`~repro.serving.megabatch.solver_fusion_key`) — their
        per-iteration anchor rows are concatenated into single solver calls
        sized by the perfmodel
        (:meth:`~repro.serving.estimator.ServingEstimator.recommend_mega_rows`)
        and results are scattered back per request, bitwise-identical to the
        per-batch path.  Compatible groups with queued requests are
        co-released to ride a mega run instead of waiting out their own
        deadline.  ``False`` restores strict per-group execution.
    engine_parallel:
        Execute independent regions of compiled engine plans on a shared
        thread pool (:class:`repro.engine.ParallelExecutionPlan`); only
        meaningful with ``engine=True``.  Results stay bitwise identical.
    flight:
        Optional :class:`~repro.obs.flight.FlightRecorder` enabling
        tail-sampling flight records: requests that finish slow (rolling
        p99), were retried, failed, missed their deadline or straggled past
        it retain their full span tree plus attribution (tenant, fusion
        key, mega-batch occupancy, cache/store provenance).  ``None`` (the
        default) disables retention; the per-request cost is then a single
        attribute check.
    slo:
        The :class:`~repro.obs.slo.SLOTracker` fed by every request
        completion/failure and surfaced by :meth:`health`.  A default
        tracker (availability + 1s-latency objectives, 1m/10m/1h burn-rate
        windows) on this server's clock is created when omitted.
    journal:
        Durability: a journal path (``str``/``Path``) or a ready
        :class:`~repro.serving.journal.RequestJournal`.  The store recovers
        from it at construction (``self.recovery`` holds the
        :class:`~repro.serving.journal.RecoveryReport`) and write-ahead
        journals every claim/complete/fail from then on, so a restarted
        server replays completed keys bitwise-identically and re-runs
        interrupted claims exactly once.  ``None`` (default) keeps the
        store in-memory only.
    supervisor:
        Worker supervision: ``True`` for a default
        :class:`~repro.serving.supervisor.WorkerSupervisor` on this
        server's clock, or a configured instance.  Supervised solve workers
        register flights and heartbeat at solve attempts;
        :meth:`check_workers` requeues the in-flight requests of hung
        workers (no heartbeat within the timeout), worker deaths
        (:class:`~repro.serving.faults.WorkerDeath` escaping a batch)
        requeue immediately, and both schedule capped-exponential-backoff
        restarts until the budget is spent — after which work fails instead
        of looping.  The restart gate is the *modeled* worker-process
        restart delay: it is surfaced in :meth:`health` and the supervisor
        snapshot, not used to block this process's (simulated-worker)
        dispatch.  ``None`` (default) disables supervision; requeue-on-death
        still works.
    breakers:
        Per-backend circuit breakers (default on): ``True`` for a default
        :class:`~repro.serving.supervisor.BreakerBoard`, an instance for
        custom policy, ``False``/``None`` to disable.  Breakers are keyed
        by the request group's mega-fusion compatibility key (its
        ``solver_fusion_key``; the geometry group key for never-fusing
        groups): consecutive solve failures trip that backend open and
        further submissions fail fast with :class:`CircuitOpenError` until
        a half-open probe succeeds.

    Observability
    -------------
    The request lifecycle emits hierarchical spans when tracing is on
    (:func:`repro.obs.enable_tracing`): ``serving.submit`` (with
    ``serving.claim`` and ``serving.cache_lookup`` children and a
    ``serving.enqueue`` child for queued requests) and, per executed batch,
    ``serving.batch`` with ``serving.batch_assembly`` →
    ``serving.fused_solve`` (one per attempt, with ``serving.retry`` spans
    between failed attempts) → ``serving.postprocess`` children.  Counters
    for retries, rejections, timeouts, failures and store replays live in
    ``self.stats.registry`` next to the latency/queue-wait histograms.
    An empty :meth:`drain` emits no spans and records no metrics.
    """

    def __init__(
        self,
        solver_factory=default_solver_factory,
        policy: BatchPolicy | None = None,
        cache: SolutionCache | None = None,
        estimator: ServingEstimator | None = None,
        latency_budget_seconds: float | None = None,
        world_size: int = 1,
        clock=time.monotonic,
        engine: bool = False,
        engine_cache_size: int = 8,
        engine_max_plan_bytes: int | None = None,
        engine_profile: bool = False,
        store: RequestStore | None = None,
        faults: FaultInjector | None = None,
        quotas: dict | TenantQuota | None = None,
        max_retries: int = 2,
        retry_backoff_seconds: float = 0.001,
        retry_backoff_cap: float = 0.1,
        sleep=None,
        async_workers: int = 0,
        poll_interval_seconds: float = 0.01,
        mega_batch: bool = True,
        engine_parallel: bool = False,
        flight: FlightRecorder | None = None,
        slo: SLOTracker | None = None,
        journal=None,
        supervisor: WorkerSupervisor | bool | None = None,
        breakers: BreakerBoard | bool | None = True,
    ):
        self.solver_factory = solver_factory
        self.policy = policy or BatchPolicy()
        self.cache = cache
        self.estimator = estimator
        self.latency_budget_seconds = latency_budget_seconds
        self.world_size = int(world_size)
        self.clock = clock
        self.engine = bool(engine)
        self.engine_max_plan_bytes = engine_max_plan_bytes
        self.engine_profile = bool(engine_profile)
        self.engine_modules = None
        engine_stats_provider = None
        kernel_profile_provider = None
        if self.engine:
            from ..engine import ModuleCache

            self.engine_modules = ModuleCache(engine_cache_size)
            engine_stats_provider = self.engine_modules.engine_stats
            if self.engine_profile:
                kernel_profile_provider = self.engine_modules.kernel_profile
        self.stats = ServingStats(
            engine_stats_provider=engine_stats_provider,
            kernel_profile_provider=kernel_profile_provider,
        )
        self.store = store if store is not None else RequestStore()
        self.faults = faults
        #: recovery report when a journal was replayed at construction
        self.recovery = None
        if journal is not None:
            if not isinstance(journal, RequestJournal):
                journal = RequestJournal(journal, faults=faults)
            self.recovery = self.store.recover(journal)
        # Admission always runs (memory-pressure shedding applies with or
        # without quotas); tenants without a quota admit at priority 0.
        if quotas is None:
            self.admission = AdmissionController(estimator=estimator)
        elif isinstance(quotas, TenantQuota):
            self.admission = AdmissionController(default=quotas, estimator=estimator)
        else:
            self.admission = AdmissionController(quotas=quotas, estimator=estimator)
        if supervisor is True:
            supervisor = WorkerSupervisor(clock=clock)
        # `is False` (not truthiness): an idle BreakerBoard is len() == 0.
        self.supervisor = None if supervisor is False else supervisor
        if breakers is True:
            breakers = BreakerBoard(clock=clock)
        self.breakers = None if breakers is False else breakers
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.max_retries = int(max_retries)
        self.retry_backoff_seconds = float(retry_backoff_seconds)
        self.retry_backoff_cap = float(retry_backoff_cap)
        self._sleep = sleep
        if async_workers < 0:
            raise ValueError("async_workers must be non-negative")
        self.async_workers = int(async_workers)
        self.poll_interval_seconds = float(poll_interval_seconds)

        self.mega_batch = bool(mega_batch)
        self.engine_parallel = bool(engine_parallel)
        self.flight = flight
        self.slo = slo if slo is not None else SLOTracker(clock=clock)

        self._lock = threading.RLock()
        self._work_done = threading.Condition(self._lock)
        self._batchers: dict[tuple, DynamicBatcher] = {}
        self._pools: dict[tuple, WorkerPool] = {}
        # group_key -> mega compatibility key (None: never cross-fuses), and
        # compat key -> the shared solver answering that key's mega runs.
        self._compat_keys: dict[tuple, tuple | None] = {}
        self._mega_solvers: dict[tuple, object] = {}
        self._completed: dict[str, SolveResult] = {}
        self._futures: dict[str, SolveFuture] = {}
        self._inflight_ids: set[str] = set()
        self._ready: deque[Batch] = deque()
        self._inflight_requests = 0
        self._started = False
        self._stop_event = threading.Event()
        self._wake = threading.Event()
        self._dispatch_thread: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None
        # Persistent (never recreated) so an in-progress retry backoff can
        # observe close() no matter when start()/close() cycles happen.
        self._closing = threading.Event()
        self._draining = False
        self._requeued_ids: set[str] = set()

    # -- async lifecycle -----------------------------------------------------------

    def start(self) -> "Server":
        """Spawn the background dispatcher and the solve-worker pool.

        Requires ``async_workers >= 1``.  Idempotent; returns ``self`` so
        ``Server(...).start()`` composes, and the server works as a context
        manager (:meth:`close` on exit).
        """

        with self._lock:
            if self._started:
                return self
            if self.async_workers < 1:
                raise ValueError(
                    "start() needs async_workers >= 1; a sync server runs "
                    "batches inline in submit()/drain()"
                )
            self._stop_event = threading.Event()
            self._wake = threading.Event()
            self._closing.clear()
            self._draining = False
            self._executor = ThreadPoolExecutor(
                max_workers=self.async_workers, thread_name_prefix="serving-solve"
            )
            self._dispatch_thread = threading.Thread(
                target=self._dispatch_loop, name="serving-dispatcher", daemon=True
            )
            self._started = True
            self._dispatch_thread.start()
        return self

    def close(self) -> None:
        """Stop the dispatcher and worker pool after finishing in-flight work.

        Sets the closing event first, so a solve worker mid-way through a
        retry backoff wakes immediately instead of sleeping the backoff out.
        """

        self._closing.set()
        with self._lock:
            if not self._started:
                return
            thread, executor = self._dispatch_thread, self._executor
            self._stop_event.set()
            self._wake.set()
        thread.join(timeout=30.0)
        executor.shutdown(wait=True)
        with self._lock:
            self._started = False
            self._dispatch_thread = None
            self._executor = None

    def drain_and_close(self) -> dict[str, SolveResult]:
        """Graceful shutdown: stop intake, finish in-flight, checkpoint.

        New submissions raise :class:`ServerClosedError` from the moment
        this is called; queued and in-flight requests are drained to
        completion; the dispatcher/worker pool is stopped; and, when the
        store carries a journal, it is compacted to a claim-free snapshot of
        the settled results (so the next process recovers without orphans).
        Returns what :meth:`drain` collected.
        """

        self._draining = True
        try:
            results = self.drain()
        finally:
            if self.running:
                self.close()
            self.store.checkpoint_journal()
        return results

    def __enter__(self) -> "Server":
        if self.async_workers >= 1:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def running(self) -> bool:
        """Whether the background dispatcher is active."""

        with self._lock:
            return self._started

    # -- front-end ----------------------------------------------------------------

    def submit_async(self, request: SolveRequest) -> SolveFuture:
        """Queue one request without blocking; returns its future.

        Validation errors (wrong type, duplicate request id) raise
        synchronously.  Everything else — quota rejection, deadline expiry,
        retry exhaustion, or the solved result — resolves the returned
        :class:`SolveFuture`.
        """

        if not isinstance(request, SolveRequest):
            raise TypeError("submit() takes a SolveRequest; build one with SolveRequest.create")
        if self._draining:
            raise ServerClosedError(
                f"server is draining; request {request.request_id!r} refused"
            )
        with self._lock:
            if request.request_id in self._inflight_ids or request.request_id in self._completed:
                raise ValueError(f"duplicate request id {request.request_id!r}")
        future = SolveFuture(request.request_id)
        with span("serving.submit", request_id=request.request_id):
            now = self.clock()
            self.stats.record_submit()
            waiter = Waiter(request=request, future=future, submitted_at=now)

            # Breaker gate before admission: a rejection here has not taken
            # an admission slot, so there is nothing to release.
            breaker = self._breaker_for(request.group_key)
            if breaker is not None and not breaker.allow():
                self.stats.record_breaker_rejection()
                self.slo.record(False)
                future._set_exception(
                    CircuitOpenError(
                        f"circuit breaker for this request's solver backend is "
                        f"{breaker.state}; request {request.request_id!r} "
                        f"rejected fast"
                    )
                )
                return future

            shed = self.admission.decide(request)
            if shed is not None:
                self.slo.record(False)
                if shed == "memory":
                    self.stats.record_memory_shed()
                    error = MemoryPressureError(
                        f"live bytes are over tenant {request.tenant!r}'s "
                        f"priority-{self.admission.priority_for(request.tenant)} "
                        f"share of the memory budget; request "
                        f"{request.request_id!r} was shed"
                    )
                else:
                    self.stats.record_rejection()
                    error = QuotaExceededError(
                        f"tenant {request.tenant!r} is over its admission quota; "
                        f"request {request.request_id!r} was shed"
                    )
                future._set_exception(error)
                return future

            with self._lock:
                self._inflight_ids.add(request.request_id)
                self._futures[request.request_id] = future
            # Admitted: the anchor-row payload is now retained until the
            # waiter resolves (released in _finish_waiter/_reject_waiter).
            obs_memory.add(
                obs_memory.REQUEST_PAYLOADS, int(request.boundary_loop.nbytes)
            )

            with span("serving.claim") as claim_span:
                claim = self.store.claim(request, waiter)
                claim_span.set_attr("owner", claim.owner)
                claim_span.set_attr("replay", claim.replay)
            if claim.replay:
                # Idempotent replay: the canonical key was solved before;
                # resolve from the stored result, bitwise-identical.
                self.stats.record_store_hit()
                self._finish_waiter(
                    waiter, claim.entry.result, cache_hit=True, batch_size=0,
                    store_hit=True,
                )
                return future
            if not claim.owner:
                # Duplicate of an in-flight solve: the waiter is attached to
                # the owner's entry and resolves when that solve completes.
                self.stats.record_dedup_hit()
                return future

            if self.cache is not None:
                with span("serving.cache_lookup") as lookup:
                    entry = self.cache.get(request)
                    lookup.set_attr("hit", entry is not None)
                if entry is not None:
                    self.stats.record_cache_hit()
                    for hit_waiter in self.store.fulfill(request, entry):
                        self._finish_waiter(hit_waiter, entry, cache_hit=True, batch_size=0)
                    return future

            with span("serving.enqueue"):
                with self._lock:
                    batcher = self._batcher_for(request)
                    released = batcher.enqueue(request)
                    for other in self._batchers.values():
                        if other is not batcher:
                            released.extend(other.poll())
                    self._ready.extend(released)
            if self._started:
                self._wake.set()
        return future

    def submit(self, request: SolveRequest) -> str:
        """Queue one request; returns its id (thin sync wrapper).

        Without a running dispatcher this executes any released batches
        inline, exactly like the pre-async server; with one, execution
        happens on the worker pool and :meth:`drain` (or the future from
        :meth:`future`) collects the outcome.  A quota rejection raises
        :class:`QuotaExceededError` (a breaker rejection
        :class:`CircuitOpenError`) here, since there is no future to
        carry it.
        """

        fut = self.submit_async(request)
        if not self._started:
            self.pump()
        if fut.done():
            error = fut.exception()
            if isinstance(error, (QuotaExceededError, CircuitOpenError)):
                raise error
        return request.request_id

    def poll(self) -> list[Batch]:
        """Collect deadline-expired batches from every group (without running).

        The returned batches are also scheduled on the pipeline (``_ready``),
        so callers only inspect them — :meth:`pump`, the dispatcher or
        :meth:`drain` executes them.
        """

        with self._lock:
            released: list[Batch] = []
            for batcher in self._batchers.values():
                released.extend(batcher.poll())
            self._ready.extend(released)
            return released

    def pump(self) -> None:
        """Execute released batches on the calling thread (sync-mode driver)."""

        while True:
            with self._lock:
                groups = self._mega_groups(self._take_ready())
            if not groups:
                return
            for batches, compat_key in groups:
                self._run_group(batches, compat_key)

    def drain(self) -> dict[str, SolveResult]:
        """Flush and execute every queued request; return completed results.

        Returns every result completed since the previous ``drain``
        (including cache hits, store replays and batches executed during
        ``submit``), keyed by request id, and clears the completed set.
        Requests that *failed* (deadline, retry exhaustion, quota) are not
        in the dict — their typed error lives on their future.

        A drain with nothing queued or in flight returns immediately
        without touching the batchers and without emitting any spans or
        metrics.
        """

        with self._lock:
            idle = (
                not self._ready
                and self._inflight_requests == 0
                and all(b.queue_depth == 0 for b in self._batchers.values())
            )
            if idle:
                return self._collect_completed()
        with span("serving.drain"):
            with self._lock:
                for batcher in self._batchers.values():
                    self._ready.extend(batcher.flush())
            if self._started:
                self._wake.set()
                self._wait_idle()
            else:
                self.pump()
            with self._lock:
                return self._collect_completed()

    def result(self, request_id: str) -> SolveResult | None:
        """Completed result for a request id, or ``None`` if still pending."""

        with self._lock:
            return self._completed.get(request_id)

    def future(self, request_id: str) -> SolveFuture | None:
        """The future of a request submitted since the last :meth:`drain`."""

        with self._lock:
            return self._futures.get(request_id)

    @property
    def pending(self) -> int:
        """Requests queued or executing but not yet completed."""

        with self._lock:
            return (
                sum(batcher.queue_depth for batcher in self._batchers.values())
                + sum(len(batch) for batch in self._ready)
                + self._inflight_requests
            )

    # -- dispatcher / execution ----------------------------------------------------

    def _collect_completed(self) -> dict[str, SolveResult]:
        # Caller holds self._lock.
        completed, self._completed = self._completed, {}
        for request_id in list(self._futures):
            if request_id not in self._inflight_ids:
                del self._futures[request_id]
        self._requeued_ids.intersection_update(self._inflight_ids)
        return completed

    def _take_ready(self) -> list[Batch]:
        # Caller holds self._lock.  Deadline-expired batches ride along, and
        # the in-flight request count moves atomically with the hand-off so
        # `pending` and `_wait_idle` never observe a gap.
        for batcher in self._batchers.values():
            self._ready.extend(batcher.poll())
        if self.mega_batch and self._ready:
            self._co_release_locked()
        batches = list(self._ready)
        self._ready.clear()
        self._inflight_requests += sum(len(batch) for batch in batches)
        return batches

    def _co_release_locked(self) -> None:
        # Caller holds self._lock.  Queued requests whose group can fuse with
        # a batch that was just released ride its mega run instead of sitting
        # out their own size/deadline trigger.
        ready_keys = {self._compat_key(batch.group_key) for batch in self._ready}
        ready_keys.discard(None)
        if not ready_keys:
            return
        for group_key, batcher in self._batchers.items():
            if batcher.queue_depth == 0:
                continue
            if self._compat_key(group_key) in ready_keys:
                self._ready.extend(batcher.take_all())

    def _mega_groups(
        self, batches: list[Batch]
    ) -> list[tuple[list[Batch], tuple | None]]:
        """Partition ready batches into fusion groups (order-preserving).

        Each returned ``(batches, compat_key)`` either runs classically (a
        single batch, or ``compat_key is None``) or as one mega run.
        """

        if not self.mega_batch or len(batches) <= 1:
            return [([batch], None) for batch in batches]
        with self._lock:
            keys = [self._compat_key(batch.group_key) for batch in batches]
        groups: list[tuple[list[Batch], tuple | None]] = []
        by_key: dict[tuple, list[Batch]] = {}
        for batch, key in zip(batches, keys):
            if key is None:
                groups.append(([batch], None))
                continue
            bucket = by_key.get(key)
            if bucket is None:
                bucket = by_key[key] = [batch]
                groups.append((bucket, key))
            else:
                bucket.append(batch)
        return groups

    def _compat_key(self, group_key: tuple) -> tuple | None:
        # Caller holds self._lock.  Mega compatibility of a geometry group:
        # the subdomain grid parameters plus the solver fusion key — two
        # groups with equal keys issue solver calls with identical query
        # coordinates and an equivalent solver, so their rows concatenate.
        cached = self._compat_keys.get(group_key, _UNSET)
        if cached is not _UNSET:
            return cached
        geometry = group_key[0]
        key = None
        try:
            solver = self._engine_solver_factory(geometry)(geometry)
            fusion = solver_fusion_key(solver)
        except Exception:
            solver, fusion = None, None
        if fusion is not None:
            grid = geometry.subdomain_grid()
            key = (grid.nx, grid.ny, tuple(grid.extent), fusion)
            self._mega_solvers.setdefault(key, solver)
        self._compat_keys[group_key] = key
        return key

    def _dispatch_loop(self) -> None:
        while not self._stop_event.is_set():
            self.check_workers()
            with self._lock:
                groups = self._mega_groups(self._take_ready())
            if groups:
                for batches, compat_key in groups:
                    self._executor.submit(self._run_group, batches, compat_key)
                continue
            timeout = self.poll_interval_seconds
            with self._lock:
                deadlines = [
                    batcher.next_deadline() for batcher in self._batchers.values()
                ]
            deadlines = [d for d in deadlines if d is not None]
            if deadlines:
                timeout = min(timeout, max(0.0, min(deadlines) - self.clock()))
            self._wake.wait(timeout=timeout)
            self._wake.clear()
        # Final sweep so close() never strands released batches.
        with self._lock:
            groups = self._mega_groups(self._take_ready())
        for batches, compat_key in groups:
            self._executor.submit(self._run_group, batches, compat_key)

    def _run_group(self, batches: list[Batch], compat_key: tuple | None) -> None:
        worker = self._supervise_begin(batches)
        try:
            if self.faults is not None:
                # Worker-death site, entry edge: the worker picked the group
                # up and dies before any solve ran.
                self.faults.fire(WORKER_DEATH)
            if compat_key is None or len(batches) == 1:
                for batch in batches:
                    self._execute(batch)
            else:
                self._execute_mega(batches, compat_key)
        except WorkerDeath as death:
            self._handle_worker_death(worker, batches, death)
        except Exception as exc:
            # _execute* handle solver failures themselves; anything escaping
            # here (assembly faults, bugs) must still resolve the waiters.
            error = RetryExhaustedError(f"batch execution failed: {exc!r}", attempts=1)
            error.__cause__ = exc
            self.stats.record_failure()
            for batch in batches:
                self._fail_requests(batch.requests, error)
        finally:
            self._supervise_end(worker)
            with self._lock:
                self._inflight_requests -= sum(len(batch) for batch in batches)
                self._work_done.notify_all()

    # -- supervision ---------------------------------------------------------------

    def _supervise_begin(self, batches: list[Batch]) -> str:
        worker = threading.current_thread().name
        if self.supervisor is not None:
            requests = [r for batch in batches for r in batch.requests]
            self.supervisor.begin(worker, requests, self.clock())
        return worker

    def _supervise_end(self, worker: str) -> None:
        if self.supervisor is not None:
            self.supervisor.end(worker)

    def _heartbeat(self) -> None:
        """One supervision heartbeat from the current solve worker.

        Fired at the start of every fused-solve attempt.  The
        ``WORKER_HEARTBEAT`` fault site sits between the worker and the
        supervisor: a ``drop`` fault suppresses delivery, so a perfectly
        live worker looks hung — exactly the partition the supervisor's
        timeout must tolerate (requeue + idempotent store, never a double
        resolution).
        """

        if self.supervisor is None:
            return
        if self.faults is not None:
            spec = self.faults.fire(WORKER_HEARTBEAT)
            if spec is not None and spec.kind == DROP:
                return
        self.supervisor.heartbeat(threading.current_thread().name, self.clock())

    def check_workers(self) -> int:
        """Requeue the in-flight requests of every hung worker; returns count.

        Called by the dispatcher every loop; deterministic tests call it
        directly after advancing their fake clock.  A flight with no
        heartbeat inside the supervisor's timeout is popped and its requests
        requeued (or failed once the restart budget is exhausted).  If the
        "hung" worker was merely partitioned and later completes, the
        store's idempotent upsert absorbs the extra delivery.
        """

        if self.supervisor is None:
            return 0
        stale = self.supervisor.check(self.clock())
        for flight in stale:
            if self.supervisor.exhausted:
                error = RetryExhaustedError(
                    f"worker {flight.worker!r} sent no heartbeat for "
                    f"{self.supervisor.heartbeat_timeout_seconds}s and the "
                    f"supervisor's restart budget is spent",
                    attempts=1,
                )
                self.stats.record_failure()
                self._fail_requests(flight.requests, error)
            else:
                self._requeue(flight.requests)
        return len(stale)

    def _handle_worker_death(self, worker, batches, death: WorkerDeath) -> None:
        requests = [r for batch in batches for r in batch.requests]
        if self.supervisor is not None:
            self.supervisor.record_death(worker, self.clock())
            if self.supervisor.exhausted:
                error = RetryExhaustedError(
                    f"worker died and the supervisor's restart budget is "
                    f"spent: {death!r}",
                    attempts=1,
                )
                error.__cause__ = death
                self.stats.record_failure()
                self._fail_requests(requests, error)
                return
        self._requeue(requests)

    def _requeue(self, requests: list) -> None:
        """Exactly-once requeue of a dead/hung worker's in-flight requests.

        Only requests whose waiters are still unresolved go back through the
        batchers (a death after postprocess has nothing left to requeue);
        their batchers are flushed immediately so requeued work re-dispatches
        without waiting out a fresh batching deadline.
        """

        with self._lock:
            live = [r for r in requests if r.request_id in self._inflight_ids]
            if not live:
                return
            self.stats.record_requeue(len(live))
            touched = set()
            for request in live:
                self._requeued_ids.add(request.request_id)
                batcher = self._batcher_for(request)
                self._ready.extend(batcher.enqueue(request))
                touched.add(request.group_key)
            for key in touched:
                self._ready.extend(self._batchers[key].take_all())
            if self._started:
                self._wake.set()

    def _wait_idle(self, timeout: float | None = None) -> bool:
        def idle() -> bool:
            return (
                not self._ready
                and self._inflight_requests == 0
                and all(b.queue_depth == 0 for b in self._batchers.values())
            )

        with self._lock:
            return self._work_done.wait_for(idle, timeout=timeout)

    # -- internals ----------------------------------------------------------------

    def _batcher_for(self, request: SolveRequest) -> DynamicBatcher:
        # Caller holds self._lock.  One batcher per group (rather than one
        # batcher for all groups) because the estimator makes max_batch_size
        # a per-geometry policy.
        key = request.group_key
        batcher = self._batchers.get(key)
        if batcher is None:
            max_batch = self.policy.max_batch_size
            if self.estimator is not None:
                max_batch = self.estimator.recommend_batch_size(
                    request.geometry,
                    latency_budget_seconds=self.latency_budget_seconds,
                    max_requests=max_batch,
                )
            policy = BatchPolicy(
                max_batch_size=max_batch,
                max_wait_seconds=self.policy.max_wait_seconds,
            )
            batcher = DynamicBatcher(policy, clock=self.clock)
            self._batchers[key] = batcher
        return batcher

    def _pool_for(self, request: SolveRequest) -> WorkerPool:
        key = request.group_key
        with self._lock:
            pool = self._pools.get(key)
            if pool is None:
                pool = WorkerPool(
                    request.geometry,
                    self._engine_solver_factory(request.geometry),
                    world_size=self.world_size,
                    init_mode=request.init_mode,
                    check_interval=request.check_interval,
                    faults=self.faults,
                )
                self._pools[key] = pool
        return pool

    def _engine_solver_factory(self, geometry):
        """Solver factory handed to worker pools (engine-wrapped when enabled).

        With ``engine=True`` every per-rank solver is cloned onto a compiled
        module fetched from the per-geometry :class:`ModuleCache`, so ranks
        and successive batches of one geometry group share a single traced
        graph while keeping their own execution buffers (plans are
        per-thread).
        """

        if not self.engine:
            return self.solver_factory
        base = self.solver_factory
        modules = self.engine_modules

        max_plan_bytes = self.engine_max_plan_bytes
        profile = self.engine_profile
        parallel = self.engine_parallel

        def factory(geom):
            from ..engine import compile_solver

            return compile_solver(
                base(geom), cache=modules, cache_key=geometry,
                max_plan_bytes=max_plan_bytes, profile=profile,
                parallel=parallel,
            )

        return factory

    def kernel_report(self, n: int = 10) -> str:
        """Top-kernels table over every compiled module (``engine_profile=True``)."""

        if self.engine_modules is None or not self.engine_profile:
            raise RuntimeError(
                "per-kernel profiling is off; build the server with "
                "engine=True, engine_profile=True"
            )
        profiler = self.engine_modules.kernel_profile()
        if profiler is None:
            return "=== top kernels ===\n(no compiled module has executed yet)"
        return profiler.report(n)

    def _execute(self, batch: Batch) -> None:
        with span("serving.batch", size=len(batch)) as batch_span:
            prepared = self._prepare(batch, batch_span)
            if prepared is None:
                return
            pool = self._pool_for(prepared.live[0])
            outcomes = self._solve_with_retries(pool, prepared, batch_span)
            if outcomes is None:
                return  # waiters already resolved (failed or expired)
            if self.faults is not None:
                # Worker-death site, mid-batch edge: results computed but not
                # yet delivered — the requeued re-solve must land bitwise on
                # the same outcome and deliver exactly once.
                self.faults.fire(WORKER_DEATH)
            self.stats.record_fused_run(len(prepared.solve_requests))
            batch_span.set_attr("unique", len(prepared.solve_requests))
            with span("serving.postprocess"):
                self._postprocess(prepared, outcomes)

    def _prepare(self, batch: Batch, batch_span) -> _PreparedBatch | None:
        """Expiry-filter and dedup one batch; ``None`` when nothing is live.

        Queue waits are recorded for live requests only — an expired request
        never reaches the solver, and counting its wait would skew the
        distribution the batcher is tuned against.
        """

        now = self.clock()
        # Deadline fail-fast: a request all of whose waiters have expired is
        # failed here instead of occupying solver capacity.
        live: list[SolveRequest] = []
        for request, enqueued in zip(batch.requests, batch.enqueued_at):
            expired = self.store.expire(request, now)
            if expired is None:
                live.append(request)
                self.stats.record_queue_wait(now - enqueued)
                continue
            for waiter in expired:
                self._reject_waiter(
                    waiter,
                    DeadlineExceededError(
                        f"request {waiter.request.request_id!r} missed its "
                        f"{waiter.request.deadline_seconds}s deadline "
                        f"before dispatch"
                    ),
                )
        if not live:
            batch_span.set_attr("expired", len(batch.requests))
            return None

        with span("serving.batch_assembly"):
            if self.faults is not None:
                self.faults.fire(BATCH_ASSEMBLY, size=len(live))
            solve_requests, assignment = self._dedup(live)
            loops = np.stack([r.boundary_loop for r in solve_requests])
            tols = np.array([r.tol for r in solve_requests])
            budgets = np.array([r.max_iterations for r in solve_requests])
        return _PreparedBatch(
            batch=batch, live=live, solve_requests=solve_requests,
            assignment=assignment, loops=loops, tols=tols, budgets=budgets,
        )

    def _dedup(self, live: list, record: bool = True) -> tuple[list, list]:
        """In-batch dedup on the cache key: identical BVPs are solved once.

        ``record=False`` recomputes the mapping without re-counting dedup
        hits (used when the live set shrinks during retry backoff).
        """

        if self.cache is None:
            return list(live), list(range(len(live)))
        unique: dict[tuple, int] = {}
        assignment = []
        for request in live:
            key = self.cache.key_for(request)
            if key not in unique:
                unique[key] = len(unique)
            elif record:
                self.stats.record_dedup_hit()
            assignment.append(unique[key])
        solve_requests = [None] * len(unique)
        for request, slot in zip(live, assignment):
            if solve_requests[slot] is None:
                solve_requests[slot] = request
        return solve_requests, assignment

    def _refresh_expired(self, prepared: _PreparedBatch) -> bool:
        """Re-run deadline fail-fast between retry attempts (post-backoff).

        Backoff can outlast a waiter's deadline; without this re-check the
        next attempt would solve for — and only then reject — requests that
        were already dead when the attempt started.  Expired waiters are
        rejected immediately; the solve arrays are rebuilt over the
        survivors.  Returns ``False`` when nothing is left to solve.
        """

        now = self.clock()
        live: list[SolveRequest] = []
        dropped = False
        for request in prepared.live:
            expired = self.store.expire(request, now)
            if expired is None:
                live.append(request)
                continue
            dropped = True
            for waiter in expired:
                self._reject_waiter(
                    waiter,
                    DeadlineExceededError(
                        f"request {waiter.request.request_id!r} missed its "
                        f"{waiter.request.deadline_seconds}s deadline "
                        f"during retry backoff"
                    ),
                )
        if not dropped:
            return True
        prepared.live = live
        if not live:
            return False
        solve_requests, assignment = self._dedup(live, record=False)
        prepared.solve_requests = solve_requests
        prepared.assignment = assignment
        prepared.loops = np.stack([r.boundary_loop for r in solve_requests])
        prepared.tols = np.array([r.tol for r in solve_requests])
        prepared.budgets = np.array([r.max_iterations for r in solve_requests])
        return True

    def _solve_with_retries(self, pool, prepared: _PreparedBatch, batch_span):
        """Run the fused solve with capped exponential backoff retries.

        Returns the outcomes, or ``None`` when the batch resolved without
        one — retries exhausted (every waiter failed with
        :class:`RetryExhaustedError`), or every remaining waiter expired
        during backoff.  Deadline fail-fast re-runs after every backoff
        sleep, so an attempt never solves for already-expired requests.
        """

        breaker = self._breaker_for(prepared.batch.group_key)
        attempts = 0
        while True:
            self._heartbeat()
            try:
                with span(
                    "serving.fused_solve",
                    unique=len(prepared.solve_requests),
                    attempt=attempts,
                ):
                    outcomes = pool.solve(
                        prepared.loops, prepared.tols, prepared.budgets
                    )
                if breaker is not None:
                    breaker.record_success()
                return outcomes
            except Exception as exc:
                if breaker is not None:
                    breaker.record_failure()
                attempts += 1
                for request in prepared.live:
                    self.store.record_attempt(request)
                if attempts > self.max_retries:
                    self.stats.record_failure()
                    batch_span.set_attr("failed", type(exc).__name__)
                    error = RetryExhaustedError(
                        f"fused solve failed after {attempts} attempt(s); "
                        f"last error: {exc!r}",
                        attempts=attempts,
                    )
                    error.__cause__ = exc
                    self._fail_requests(prepared.live, error)
                    return None
                self.stats.record_retry()
                backoff = min(
                    self.retry_backoff_seconds * (2 ** (attempts - 1)),
                    self.retry_backoff_cap,
                )
                with span(
                    "serving.retry",
                    attempt=attempts,
                    backoff_seconds=backoff,
                    error=type(exc).__name__,
                ):
                    self._backoff_wait(backoff)
                if not self._refresh_expired(prepared):
                    batch_span.set_attr("expired_in_backoff", True)
                    return None

    def _postprocess(self, prepared: _PreparedBatch, outcomes) -> None:
        batch_size = len(prepared.solve_requests)
        for request, slot in zip(prepared.live, prepared.assignment):
            outcome = outcomes[slot]
            entry = CachedSolution(
                solution=outcome.solution,
                iterations=outcome.iterations,
                converged=outcome.converged,
                deltas=outcome.deltas,
            )
            if self.cache is not None:
                self.cache.put(request, entry)
            deliveries = 1
            if self.faults is not None:
                spec = self.faults.fire(STORE_DELIVER, request_id=request.request_id)
                if spec is not None and spec.kind == DUPLICATE:
                    deliveries = 2  # at-least-once delivery, injected
            waiters = []
            for _ in range(deliveries):
                # The store's upsert is idempotent: a redelivery returns no
                # waiters and only bumps its counter.
                waiters.extend(self.store.fulfill(request, entry))
            for waiter in waiters:
                self._finish_waiter(
                    waiter, entry, cache_hit=False, batch_size=batch_size,
                    occupancy=prepared.occupancy,
                )

    # -- mega-batch execution ------------------------------------------------------

    def _execute_mega(self, group: list[Batch], compat_key: tuple) -> None:
        """Run several fusion-compatible batches as one mega-batch.

        Each batch keeps its own expiry filter, dedup, fused-run accounting
        and postprocess — only the solver calls are shared, so results are
        bitwise-identical to running the batches one by one.
        """

        total = sum(len(batch) for batch in group)
        with span("serving.mega_batch", batches=len(group), size=total) as mega_span:
            prepared: list[_PreparedBatch] = []
            for batch in group:
                with span("serving.batch", size=len(batch), mega=True) as batch_span:
                    try:
                        p = self._prepare(batch, batch_span)
                    except Exception as exc:
                        # An assembly fault in one batch must not take down
                        # the whole mega run.
                        error = RetryExhaustedError(
                            f"batch execution failed: {exc!r}", attempts=1
                        )
                        error.__cause__ = exc
                        self.stats.record_failure()
                        self._fail_requests(batch.requests, error)
                        continue
                    if p is not None:
                        prepared.append(p)
            if not prepared:
                mega_span.set_attr("expired", total)
                return
            results = self._solve_mega_with_retries(compat_key, prepared, mega_span)
            if results is None:
                return  # waiters already resolved (failed or expired)
            if self.faults is not None:
                # Worker-death site, mid-batch edge (mega): all sessions
                # solved, nothing delivered yet.
                self.faults.fire(WORKER_DEATH)
            prepared, outcomes = results
            for p, outs in zip(prepared, outcomes):
                p.occupancy = len(prepared)
                self.stats.record_fused_run(len(p.solve_requests))
                with span("serving.postprocess"):
                    self._postprocess(p, outs)
            self.stats.record_mega_run(len(prepared))

    def _solve_mega_with_retries(
        self, compat_key: tuple, prepared: list[_PreparedBatch], mega_span
    ):
        """Run one mega solve with retries; returns aligned (prepared, outcomes).

        Mirrors :meth:`_solve_with_retries`: capped exponential backoff, a
        shared retry budget for the whole mega run, and a deadline re-check
        after every backoff sleep (batches whose waiters all expired drop
        out of subsequent attempts).  Fresh sessions are built per attempt —
        iteration state is never reused across a failed solve.
        """

        solver = self._mega_solvers[compat_key]
        breaker = self.breakers.get(compat_key) if self.breakers is not None else None
        attempts = 0
        while True:
            self._heartbeat()
            live = [request for p in prepared for request in p.live]
            try:
                with span(
                    "serving.fused_solve",
                    unique=sum(len(p.solve_requests) for p in prepared),
                    batches=len(prepared),
                    attempt=attempts,
                ):
                    if self.faults is not None:
                        self.faults.fire(WORKER_SOLVE, rank=0)
                    sessions = [
                        MegaSession.begin(
                            FusedBatchRunner(
                                p.geometry,
                                solver,
                                init_mode=p.init_mode,
                                check_interval=p.check_interval,
                            ),
                            p.loops,
                            p.tols,
                            p.budgets,
                        )
                        for p in prepared
                    ]
                    executor = MegaBatchExecutor(
                        solver,
                        max_rows_for=self._mega_max_rows_for(prepared),
                        on_call=self.stats.record_mega_call,
                    )
                    outcomes = executor.run(sessions)
                    mega_span.set_attr("solver_calls", executor.calls)
                    mega_span.set_attr("solver_rows", executor.rows)
                if breaker is not None:
                    breaker.record_success()
                return prepared, outcomes
            except Exception as exc:
                if breaker is not None:
                    breaker.record_failure()
                attempts += 1
                for request in live:
                    self.store.record_attempt(request)
                if attempts > self.max_retries:
                    self.stats.record_failure()
                    mega_span.set_attr("failed", type(exc).__name__)
                    error = RetryExhaustedError(
                        f"fused solve failed after {attempts} attempt(s); "
                        f"last error: {exc!r}",
                        attempts=attempts,
                    )
                    error.__cause__ = exc
                    self._fail_requests(live, error)
                    return None
                self.stats.record_retry()
                backoff = min(
                    self.retry_backoff_seconds * (2 ** (attempts - 1)),
                    self.retry_backoff_cap,
                )
                with span(
                    "serving.retry",
                    attempt=attempts,
                    backoff_seconds=backoff,
                    error=type(exc).__name__,
                ):
                    self._backoff_wait(backoff)
                prepared = [p for p in prepared if self._refresh_expired(p)]
                if not prepared:
                    mega_span.set_attr("expired_in_backoff", True)
                    return None

    def _mega_max_rows_for(self, prepared: list[_PreparedBatch]):
        """Per-call row cap from the perfmodel, or ``None`` without one."""

        if self.estimator is None:
            return None
        boundary_size = prepared[0].geometry.subdomain_grid().boundary_size
        estimator = self.estimator
        budget = self.latency_budget_seconds

        def max_rows_for(q_points: int) -> int:
            return estimator.recommend_mega_rows(
                boundary_size, q_points, latency_budget_seconds=budget
            )

        return max_rows_for

    def _breaker_for(self, group_key: tuple):
        """The circuit breaker guarding this group's solver backend, or ``None``.

        Keyed by the group's mega-fusion compatibility key so every group
        sharing one solver configuration shares one breaker; a group that
        never fuses gets its own breaker under its geometry group key.
        """

        if self.breakers is None:
            return None
        with self._lock:
            key = self._compat_key(group_key)
        return self.breakers.get(key if key is not None else group_key)

    def _backoff_wait(self, seconds: float) -> None:
        """Pass retry-backoff time, interruptibly.

        With no injected ``sleep`` this waits on the closing event, so
        :meth:`close` wakes a worker mid-backoff instead of letting it sleep
        the full backoff out; an already-closing server skips the wait
        entirely.
        """

        if seconds <= 0 or self._closing.is_set():
            return
        if self._sleep is not None:
            self._sleep(seconds)
        else:
            self._closing.wait(seconds)

    def _fail_requests(self, requests, error: BaseException) -> None:
        for request in requests:
            for waiter in self.store.fail(request, error):
                self._reject_waiter(waiter, error)

    def _finish_waiter(
        self,
        waiter: Waiter,
        entry: CachedSolution,
        cache_hit: bool,
        batch_size: int,
        store_hit: bool = False,
        occupancy: int = 1,
    ) -> None:
        now = self.clock()
        deadline = waiter.deadline_at
        if deadline is not None and now > deadline:
            # The solve finished, but past the waiter's deadline: a straggler,
            # not a fail-fast — classified separately in the flight recorder.
            self._reject_waiter(
                waiter,
                DeadlineExceededError(
                    f"request {waiter.request.request_id!r} completed after its "
                    f"{waiter.request.deadline_seconds}s deadline"
                ),
                reason="straggler",
                batch_size=batch_size,
                occupancy=occupancy,
            )
            return
        latency = now - waiter.submitted_at
        self.stats.record_latency(latency)
        result = SolveResult(
            request_id=waiter.request.request_id,
            solution=entry.solution.copy(),
            iterations=entry.iterations,
            converged=entry.converged,
            cache_hit=cache_hit,
            batch_size=batch_size,
            latency_seconds=latency,
            deltas=list(entry.deltas),
        )
        with self._lock:
            self._inflight_ids.discard(waiter.request.request_id)
            self._completed[waiter.request.request_id] = result
            self._work_done.notify_all()
        obs_memory.sub(
            obs_memory.REQUEST_PAYLOADS, int(waiter.request.boundary_loop.nbytes)
        )
        if self.admission is not None:
            self.admission.release(waiter.request.tenant)
        self.slo.record(True, latency)
        if self.flight is not None:
            # Decide-then-observe: the slowness verdict uses the threshold
            # from *previous* samples only, so the retained set is a pure
            # function of the request stream (deterministic under replay).
            reason = None
            with self._lock:
                requeued = waiter.request.request_id in self._requeued_ids
                self._requeued_ids.discard(waiter.request.request_id)
            if self.store.attempts(waiter.request) > 0:
                reason = "retried"
            elif requeued:
                reason = "requeued"
            elif self.flight.is_slow(latency):
                reason = "slow"
            if reason is not None:
                self._retain_flight(
                    waiter, reason, latency=latency, cache_hit=cache_hit,
                    store_hit=store_hit, batch_size=batch_size,
                    occupancy=occupancy,
                )
            self.flight.observe_latency(latency)
        waiter.future._set_result(result)

    def _reject_waiter(
        self,
        waiter: Waiter,
        error: BaseException,
        reason: str | None = None,
        batch_size: int = 0,
        occupancy: int = 0,
    ) -> None:
        if isinstance(error, DeadlineExceededError):
            self.stats.record_timeout()
        with self._lock:
            self._inflight_ids.discard(waiter.request.request_id)
            self._work_done.notify_all()
        obs_memory.sub(
            obs_memory.REQUEST_PAYLOADS, int(waiter.request.boundary_loop.nbytes)
        )
        if self.admission is not None:
            self.admission.release(waiter.request.tenant)
        latency = self.clock() - waiter.submitted_at
        self.slo.record(False, latency)
        if self.flight is not None:
            if reason is None:
                reason = (
                    "deadline"
                    if isinstance(error, DeadlineExceededError)
                    else "failed"
                )
            record = self._retain_flight(
                waiter, reason, latency=latency, error=error,
                batch_size=batch_size, occupancy=occupancy,
            )
            # Let callers holding only the exception reach the trace.
            error.flight_record = record
        waiter.future._set_exception(error)

    def _retain_flight(
        self,
        waiter: Waiter,
        reason: str,
        latency: float | None = None,
        error: BaseException | None = None,
        cache_hit: bool = False,
        store_hit: bool = False,
        batch_size: int = 0,
        occupancy: int = 0,
    ) -> FlightRecord:
        """Retain one tail-sampled flight record with full attribution."""

        request = waiter.request
        with self._lock:
            fusion = self._compat_key(request.group_key)
        tracer = get_tracer()
        record = FlightRecord(
            request_id=request.request_id,
            tenant=request.tenant,
            reason=reason,
            latency_seconds=latency,
            error=repr(error) if error is not None else None,
            attrs={
                "fusion_key": repr(fusion) if fusion is not None else None,
                "mega_occupancy": int(occupancy),
                "batch_size": int(batch_size),
                "cache_hit": bool(cache_hit),
                "store_hit": bool(store_hit),
                "attempts": self.store.attempts(request),
            },
            exemplars={
                "latency_p50_seconds": self.stats.latency_percentile(50),
                "latency_p99_seconds": self.stats.latency_percentile(99),
                "pending": self.pending,
            },
            spans=tracer.current_root() if tracer is not None else None,
        )
        self.flight.retain(record)
        self.stats.record_flight(reason)
        return record

    # -- health --------------------------------------------------------------------

    def health(self) -> dict:
        """One-call health snapshot: SLO burn rates, memory, flight summary.

        Returns ``{"status", "alerts", "slo", "pending", "store", "ready",
        "live"}`` plus, when memory accounting is enabled, ``"memory"``
        (per-owner live/peak byte gauges, and budget/headroom/pressure when
        a budget is set) and ``"bytes_per_request"``; with a flight recorder
        attached, ``"flight"`` (retention counts and the current
        tail-latency threshold); with circuit breakers, ``"breakers"``
        (per-backend states); with a supervisor, ``"supervisor"`` (flights,
        deaths, hangs, restart budget); with a journal, ``"journal"``
        (append counts and fsync lag).

        ``status`` is ``"draining"`` during :meth:`drain_and_close`, else
        ``"burning"`` when any objective's burn rate exceeds its threshold
        over *every* window, else ``"ok"``.  ``live`` is the liveness probe
        (dispatcher thread healthy and the supervisor's restart budget not
        exhausted); ``ready`` is the readiness probe (live, not draining,
        and memory pressure under 1.0).  The SLO and memory gauges are also
        published into ``stats.registry`` so the Prometheus/JSON exporters
        carry them.
        """

        alerts = self.slo.alerts()
        if self._draining:
            status = "draining"
        elif alerts:
            status = "burning"
        else:
            status = "ok"
        with self._lock:
            started, thread = self._started, self._dispatch_thread
        dispatcher_ok = (not started) or (
            thread is not None and thread.is_alive()
        )
        live = dispatcher_ok and not (
            self.supervisor is not None and self.supervisor.exhausted
        )
        snapshot = {
            "status": status,
            "alerts": alerts,
            "slo": self.slo.snapshot(),
            "pending": self.pending,
            "store": self.store.stats(),
            "live": live,
        }
        self.slo.publish(self.stats.registry)
        pressure = None
        accountant = obs_memory.get_accountant()
        if accountant is not None:
            snapshot["memory"] = accountant.snapshot()
            pressure = accountant.pressure()
            per_request = accountant.bytes_per_request(
                self.stats.completed_requests
            )
            snapshot["bytes_per_request"] = per_request
            accountant.publish(self.stats.registry)
            self.stats.registry.gauge("serving.bytes_per_request").set(per_request)
        snapshot["ready"] = (
            live and not self._draining and (pressure is None or pressure < 1.0)
        )
        if self.flight is not None:
            snapshot["flight"] = self.flight.summary()
        if self.breakers is not None:
            snapshot["breakers"] = self.breakers.snapshot()
        if self.supervisor is not None:
            snapshot["supervisor"] = self.supervisor.snapshot()
        if self.store.journal is not None:
            snapshot["journal"] = self.store.journal.stats()
        return snapshot
