"""Idempotent request store: claim/upsert solve requests by canonical key.

Production clients retry: the same BVP arrives twice because an HTTP call
timed out, a queue redelivered, or two dashboard tabs asked for the same
figure.  The store makes those duplicates free and *safe*:

* every request is keyed by its canonical content (geometry, solve
  parameters, exact boundary bytes — ``decimals=None`` — or quantized bytes
  when a ``decimals`` is configured), never by its request id;
* the first submission of a key **claims** it: exactly one solve runs, no
  matter how many identical submissions race in behind it (they *attach* as
  extra waiters on the in-flight entry);
* completed keys are **upserted**: the solved outcome is stored once, a
  redelivered completion for the same key is detected and counted instead of
  clobbering or re-resolving anything, and later resubmissions replay the
  stored result without recomputing — every waiter, first or duplicate,
  receives bitwise-identical solution arrays;
* failed keys stay reclaimable: a fresh submission after a failure claims
  the key again and re-attempts the solve.

The store is the serving layer's analogue of the ``claim_filing`` /
``upsert_f3x`` pattern of transactional ingest pipelines: claim before work,
upsert on completion, and make both idempotent so at-least-once delivery
degenerates to exactly-once effects.

The store never resolves futures itself — :meth:`RequestStore.fulfill`,
:meth:`RequestStore.fail` and :meth:`RequestStore.expire` *return* the
detached waiters so the server can apply per-waiter policy (request
deadlines) while the store stays a pure state machine.  All methods are
thread-safe under one internal lock.

With a :class:`~repro.serving.journal.RequestJournal` attached the store is
also **durable**: every transition is journaled *before* the in-memory
mutation (write-ahead), and :meth:`RequestStore.recover` rebuilds a fresh
store from a journal after a process restart — completed keys replay
bitwise-identically, keys that were in flight at the crash are reported
orphaned and simply reclaimable, so the restarted server re-runs each of
them exactly once.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..obs import memory as obs_memory
from .api import SolveRequest
from .cache import CachedSolution
from .futures import SolveFuture
from .journal import RecoveryReport, RequestJournal

__all__ = [
    "PENDING",
    "IN_FLIGHT",
    "DONE",
    "FAILED",
    "Waiter",
    "StoreEntry",
    "Claim",
    "RequestStore",
    "TenantQuota",
    "AdmissionController",
]

#: entry lifecycle states (claim moves PENDING -> IN_FLIGHT; upsert closes it)
PENDING = "pending"
IN_FLIGHT = "in_flight"
DONE = "done"
FAILED = "failed"


@dataclass
class Waiter:
    """One submission waiting on a store entry (owner or attached duplicate)."""

    request: SolveRequest
    future: SolveFuture
    submitted_at: float

    @property
    def deadline_at(self) -> float | None:
        """Absolute deadline under the server clock, or ``None``."""

        if self.request.deadline_seconds is None:
            return None
        return self.submitted_at + self.request.deadline_seconds


@dataclass
class StoreEntry:
    """State of one canonical request key."""

    key: tuple
    state: str = PENDING
    result: CachedSolution | None = None
    error: BaseException | None = None
    #: solve attempts spent on this key across claims (retries included)
    attempts: int = 0
    waiters: list[Waiter] = field(default_factory=list)


@dataclass(frozen=True)
class Claim:
    """Outcome of :meth:`RequestStore.claim`.

    ``owner`` — this submission must run (or enqueue) the solve.
    ``replay`` — the key was already DONE; serve ``entry.result`` directly.
    Neither — the key is in flight; the waiter was attached and will be
    resolved when the owner's solve completes.
    """

    owner: bool
    replay: bool
    entry: StoreEntry


class RequestStore:
    """Thread-safe claim/upsert store of solve requests by canonical key.

    Parameters
    ----------
    capacity:
        Maximum number of *completed* (DONE or FAILED) entries retained for
        replay, LRU-evicted.  In-flight entries are never evicted.
    decimals:
        Optional boundary-loop quantization of the canonical key (like
        :class:`~repro.serving.cache.SolutionCache`).  ``None`` keys on the
        exact float64 bytes — duplicates must be bitwise resubmissions.
    journal:
        Optional :class:`~repro.serving.journal.RequestJournal` making the
        store durable: claim/complete/fail transitions are appended (write-
        ahead) before the in-memory mutation.  Use :meth:`recover` on a
        fresh store to rebuild state from a journal after a restart.
    """

    def __init__(self, capacity: int = 2048, decimals: int | None = None,
                 journal: RequestJournal | None = None):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if decimals is not None and decimals < 0:
            raise ValueError("decimals must be non-negative (or None for exact keys)")
        self.capacity = int(capacity)
        self.decimals = decimals
        self.journal = journal
        self._lock = threading.Lock()
        self._inflight: dict[tuple, StoreEntry] = {}
        self._settled: OrderedDict[tuple, StoreEntry] = OrderedDict()
        # -- counters (exposed via stats()) --
        self.claims = 0              #: claims that made this submission the owner
        self.attached = 0            #: duplicate submissions attached to an in-flight key
        self.replays = 0             #: submissions answered from a DONE entry
        self.duplicate_deliveries = 0  #: completions redelivered for an already-DONE key
        self.failures = 0            #: keys settled FAILED
        self.evictions = 0           #: settled entries dropped by the LRU bound
        self.recovered = 0           #: DONE entries rebuilt from a journal

    def __len__(self) -> int:
        with self._lock:
            return len(self._inflight) + len(self._settled)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._inflight)

    # -- keys ---------------------------------------------------------------------

    def key_for(self, request: SolveRequest) -> tuple:
        """Canonical content key of a request (excludes id, tenant, deadline)."""

        loop = request.boundary_loop
        if self.decimals is not None:
            # Normalize -0.0 so quantized keys are sign-insensitive.
            loop = np.round(loop, self.decimals) + 0.0
        return (
            request.geometry,
            request.init_mode,
            request.check_interval,
            request.tol,
            request.max_iterations,
            loop.tobytes(),
        )

    # -- claim --------------------------------------------------------------------

    def claim(self, request: SolveRequest, waiter: Waiter) -> Claim:
        """Claim a key for ``waiter`` (or attach/replay if already known)."""

        key = self.key_for(request)
        with self._lock:
            entry = self._inflight.get(key)
            if entry is not None:
                entry.waiters.append(waiter)
                self.attached += 1
                return Claim(owner=False, replay=False, entry=entry)
            settled = self._settled.get(key)
            if settled is not None and settled.state == DONE:
                self._settled.move_to_end(key)
                self.replays += 1
                return Claim(owner=False, replay=True, entry=settled)
            # Unknown key, or a FAILED one: (re)claim it.  The journal is
            # written first (WAL: a torn write raises before any mutation).
            if self.journal is not None:
                self.journal.append_claim(key)
            entry = StoreEntry(key=key, state=IN_FLIGHT, waiters=[waiter])
            if settled is not None:
                entry.attempts = settled.attempts
                del self._settled[key]
            self._inflight[key] = entry
            self.claims += 1
            return Claim(owner=True, replay=False, entry=entry)

    # -- upsert -------------------------------------------------------------------

    def fulfill(self, request: SolveRequest, result: CachedSolution) -> list[Waiter]:
        """Upsert the solved outcome of a key; return the waiters to resolve.

        Idempotent: a redelivered completion for an already-DONE key is
        counted in ``duplicate_deliveries`` and returns no waiters (they
        were already detached by the first delivery), so at-least-once
        delivery of solver outcomes never double-resolves a future.
        """

        key = self.key_for(request)
        with self._lock:
            entry = self._inflight.get(key)
            if entry is None:
                settled = self._settled.get(key)
                if settled is not None and settled.state == DONE:
                    self.duplicate_deliveries += 1
                    return []
                # Completion for a key the store never saw (store bypassed or
                # entry evicted mid-flight): upsert it fresh.
                entry = StoreEntry(key=key)
            # WAL ordering: journal the completion before mutating.  A torn
            # write raises here with the entry still in flight, so its
            # waiters remain reachable for the server's failure handling.
            if self.journal is not None:
                self.journal.append_complete(key, result)
            self._inflight.pop(key, None)
            entry.state = DONE
            entry.result = result
            entry.error = None
            waiters, entry.waiters = entry.waiters, []
            self._settle(key, entry)
            return waiters

    def fail(self, request: SolveRequest, error: BaseException) -> list[Waiter]:
        """Settle a key FAILED (reclaimable); return the waiters to reject."""

        key = self.key_for(request)
        with self._lock:
            entry = self._inflight.get(key)
            if entry is None:
                return []
            if self.journal is not None:
                self.journal.append_fail(key, repr(error))
            self._inflight.pop(key, None)
            entry.state = FAILED
            entry.error = error
            waiters, entry.waiters = entry.waiters, []
            self.failures += 1
            self._settle(key, entry)
            return waiters

    def expire(self, request: SolveRequest, now: float) -> list[Waiter] | None:
        """Atomically fail a key iff *every* waiter's deadline has passed.

        The fail-fast path of the deadline policy: called at batch dispatch,
        it removes a request from the solve only when no attached waiter
        could still use the result.  Returns the expired waiters, or
        ``None`` if the entry is absent or any waiter is still live (the
        solve proceeds; per-waiter deadlines are re-checked on completion).
        """

        key = self.key_for(request)
        with self._lock:
            entry = self._inflight.get(key)
            if entry is None or not entry.waiters:
                return None
            deadlines = [w.deadline_at for w in entry.waiters]
            if any(d is None or d > now for d in deadlines):
                return None
            if self.journal is not None:
                self.journal.append_fail(key, "expired before dispatch")
            del self._inflight[key]
            entry.state = FAILED
            waiters, entry.waiters = entry.waiters, []
            self.failures += 1
            self._settle(key, entry)
            return waiters

    def record_attempt(self, request: SolveRequest) -> int:
        """Count one solve attempt against a key; returns the new total."""

        key = self.key_for(request)
        with self._lock:
            entry = self._inflight.get(key)
            if entry is None:
                return 0
            entry.attempts += 1
            return entry.attempts

    def attempts(self, request: SolveRequest) -> int:
        """Solve attempts recorded against a key (in flight or settled)."""

        key = self.key_for(request)
        with self._lock:
            entry = self._inflight.get(key) or self._settled.get(key)
            return entry.attempts if entry is not None else 0

    def peek(self, key: tuple) -> CachedSolution | None:
        """The settled DONE result of a canonical key, without claiming it.

        Recovery tooling and tests use this to compare replayed results
        bitwise; it does not bump the LRU or any counter.
        """

        with self._lock:
            entry = self._settled.get(key)
            if entry is not None and entry.state == DONE:
                return entry.result
            return None

    # -- durability ---------------------------------------------------------------

    def recover(self, journal: RequestJournal) -> RecoveryReport:
        """Rebuild store state from a journal and attach it for appending.

        Replays every valid record in order and installs the *final* state
        of each key: keys whose last transition was a completion become
        settled DONE entries carrying the exact pre-crash result bytes
        (LRU-bounded by ``capacity``, memory-accounted like any settle);
        keys that last failed stay absent (reclaimable, as a live FAILED
        settle would be); keys whose last record is a bare claim are
        returned as ``orphaned`` — the crash interrupted their solve, and
        the next submission re-claims each exactly once.
        """

        records = journal.replay()
        final: dict[tuple, tuple[str, object]] = {}
        for kind, key, data in records:
            if kind == RequestJournal.CLAIM:
                final[key] = (IN_FLIGHT, None)
            elif kind == RequestJournal.COMPLETE:
                final[key] = (DONE, data)
            elif kind == RequestJournal.FAIL:
                final[key] = (FAILED, data)
        completed = failed = 0
        orphaned: list[tuple] = []
        with self._lock:
            for key, (state, data) in final.items():
                if state == DONE:
                    self._settle(key, StoreEntry(key=key, state=DONE, result=data))
                    completed += 1
                elif state == FAILED:
                    failed += 1
                else:
                    orphaned.append(key)
            self.recovered += completed
        self.journal = journal
        return RecoveryReport(
            records=len(records),
            completed=completed,
            failed=failed,
            orphaned=tuple(orphaned),
            truncated_bytes=journal.truncated_bytes,
        )

    def checkpoint_journal(self) -> int:
        """Sync and compact the attached journal down to the settled DONE set.

        Returns the number of records in the compacted journal (``0`` and a
        no-op without a journal).  Called by ``Server.drain_and_close()``
        after in-flight work has finished, so the rewritten journal is a
        complete, claim-free snapshot of everything replayable.
        """

        journal = self.journal
        if journal is None:
            return 0
        with self._lock:
            entries = [
                (key, entry.result)
                for key, entry in self._settled.items()
                if entry.state == DONE and entry.result is not None
            ]
        return journal.checkpoint(entries)

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _entry_bytes(entry: StoreEntry) -> int:
        # Only DONE entries retain array payloads worth accounting.
        if entry.state == DONE and entry.result is not None:
            return entry.result.nbytes
        return 0

    def _settle(self, key: tuple, entry: StoreEntry) -> None:
        # Caller holds self._lock.
        previous = self._settled.get(key)
        if previous is not None:
            self._settled.move_to_end(key)
            if (nbytes := self._entry_bytes(previous)):
                obs_memory.sub(obs_memory.REQUEST_STORE, nbytes)
        if (nbytes := self._entry_bytes(entry)):
            obs_memory.add(obs_memory.REQUEST_STORE, nbytes)
        self._settled[key] = entry
        while len(self._settled) > self.capacity:
            _, evicted = self._settled.popitem(last=False)
            if (nbytes := self._entry_bytes(evicted)):
                obs_memory.sub(obs_memory.REQUEST_STORE, nbytes)
            self.evictions += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "in_flight": len(self._inflight),
                "settled": len(self._settled),
                "capacity": self.capacity,
                "claims": self.claims,
                "attached": self.attached,
                "replays": self.replays,
                "duplicate_deliveries": self.duplicate_deliveries,
                "failures": self.failures,
                "evictions": self.evictions,
                "recovered": self.recovered,
            }


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits.

    ``max_pending`` bounds how many of the tenant's requests may be queued
    or in flight at once.  ``max_backlog_seconds`` expresses the same bound
    as a latency budget: with a perfmodel estimator available, the pending
    limit becomes ``budget / estimated-seconds-per-request`` for the
    request's geometry — bigger problems get smaller queues.  When both are
    set the tighter limit wins; a quota with neither admits everything.

    ``priority`` orders tenants for memory-driven load shedding (see
    :meth:`AdmissionController.decide`): as live bytes approach the memory
    accountant's budget, priority-0 tenants are shed first and higher
    priorities survive to higher pressure.
    """

    max_pending: int | None = None
    max_backlog_seconds: float | None = None
    priority: int = 0

    def __post_init__(self):
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if self.max_backlog_seconds is not None and self.max_backlog_seconds <= 0:
            raise ValueError("max_backlog_seconds must be positive")
        if self.priority < 0:
            raise ValueError("priority must be non-negative")


class AdmissionController:
    """Sheds load per tenant instead of queueing unboundedly.

    Two independent shed policies run at submit time:

    * **quota** — the classic per-tenant pending bound (``max_pending`` /
      ``max_backlog_seconds``);
    * **memory** — when the process-wide memory accountant
      (:mod:`repro.obs.memory`) carries a live-bytes *budget*, admission
      degrades gracefully as live bytes approach it: a tenant with priority
      ``p`` is shed once pressure (live/budget) reaches
      ``shed_start_fraction + (1 - shed_start_fraction) * p / (top + 1)``
      where ``top`` is the highest configured priority — so the lowest
      priority sheds first at ``shed_start_fraction`` and even the highest
      priority sheds before the budget is fully exhausted.

    Parameters
    ----------
    quotas:
        ``{tenant: TenantQuota}``; ``default`` applies to tenants without an
        explicit entry (``None`` admits them unconditionally — though
        memory shedding still applies to them at priority 0).
    estimator:
        Optional :class:`~repro.serving.estimator.ServingEstimator` turning
        ``max_backlog_seconds`` quotas into pending-count limits via the
        model cost of one request's dense-assembly call.
    shed_start_fraction:
        Memory pressure at which priority-0 shedding begins.
    """

    def __init__(self, quotas: dict | None = None,
                 default: TenantQuota | None = None, estimator=None,
                 shed_start_fraction: float = 0.8):
        if not 0.0 < shed_start_fraction <= 1.0:
            raise ValueError("shed_start_fraction must be in (0, 1]")
        self.quotas = dict(quotas or {})
        self.default = default
        self.estimator = estimator
        self.shed_start_fraction = float(shed_start_fraction)
        self._lock = threading.Lock()
        self._pending: dict[str, int] = {}
        self._cost_cache: dict = {}
        self.memory_sheds = 0  #: requests refused under memory pressure

    def pending(self, tenant: str) -> int:
        with self._lock:
            return self._pending.get(tenant, 0)

    def limit_for(self, request: SolveRequest) -> int | None:
        """Effective pending limit for this request's tenant, or ``None``."""

        quota = self.quotas.get(request.tenant, self.default)
        if quota is None:
            return None
        limits = []
        if quota.max_pending is not None:
            limits.append(quota.max_pending)
        if quota.max_backlog_seconds is not None and self.estimator is not None:
            per_request = self._request_seconds(request.geometry)
            limits.append(max(1, int(quota.max_backlog_seconds / per_request)))
        return min(limits) if limits else None

    def priority_for(self, tenant: str) -> int:
        """Shed priority of a tenant (its quota's, or 0 without one)."""

        quota = self.quotas.get(tenant, self.default)
        return quota.priority if quota is not None else 0

    def shed_threshold(self, priority: int) -> float:
        """Memory pressure at which requests of ``priority`` start shedding."""

        top = max(
            [q.priority for q in self.quotas.values()]
            + [self.default.priority if self.default is not None else 0]
        )
        start = self.shed_start_fraction
        return start + (1.0 - start) * min(priority, top) / (top + 1)

    def decide(self, request: SolveRequest) -> str | None:
        """Admit (and count) the request, or return why it was refused.

        ``None`` means admitted (the tenant's pending count was bumped;
        pair with :meth:`release`).  ``"memory"`` means the live-bytes
        budget is under pressure and this tenant's priority lost;
        ``"quota"`` means the tenant is over its pending limit.
        """

        accountant = obs_memory.get_accountant()
        if accountant is not None:
            pressure = accountant.pressure()
            if pressure is not None:
                threshold = self.shed_threshold(self.priority_for(request.tenant))
                if pressure >= threshold:
                    with self._lock:
                        self.memory_sheds += 1
                    return "memory"
        limit = self.limit_for(request)
        with self._lock:
            count = self._pending.get(request.tenant, 0)
            if limit is not None and count >= limit:
                return "quota"
            self._pending[request.tenant] = count + 1
            return None

    def admit(self, request: SolveRequest) -> bool:
        """Admit (and count) the request, or refuse it (quota or memory)."""

        return self.decide(request) is None

    def release(self, tenant: str) -> None:
        """Return one admitted slot (request completed, failed or expired)."""

        with self._lock:
            count = self._pending.get(tenant, 0)
            if count <= 1:
                self._pending.pop(tenant, None)
            else:
                self._pending[tenant] = count - 1

    def _request_seconds(self, geometry) -> float:
        cost = self._cost_cache.get(geometry)
        if cost is None:
            boundary = geometry.subdomain_grid().boundary_size
            q_points = len(geometry.interior_local_indices()[0])
            # Model cost of the request's dense-assembly call: a lower bound
            # on one request's solve, which is all admission needs.
            cost = self.estimator.call_latency(
                max(1, geometry.num_subdomains), boundary, q_points
            )
            self._cost_cache[geometry] = cost
        return cost
