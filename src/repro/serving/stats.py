"""Serving statistics: latency percentiles, cache effect, batching effect.

The headline numbers a serving layer must report:

* **latency** — per-request submit-to-completion time (p50/p99/mean),
* **cache hit rate** — fraction of requests answered without any solve
  (LRU hits at submit plus within-batch deduplication),
* **solver runs saved** — how many fused predictor runs batching + caching
  avoided compared to one run per request (the Figure 8 effect at the
  request level).

Since the :mod:`repro.obs` unification, :class:`ServingStats` is a facade
over a :class:`~repro.obs.metrics.MetricsRegistry`: counts are
:class:`~repro.obs.metrics.Counter` metrics and the latency / batch-size /
queue-wait distributions are *bounded* :class:`~repro.obs.metrics.Histogram`
rings — a long-lived server no longer grows per-request Python lists without
bound.  The public surface (attribute counters, ``as_dict`` keys,
``report()``) is unchanged; ``as_dict`` additionally carries the raw
registry snapshot under ``"obs"`` (exportable with
:func:`repro.obs.to_json` / :func:`repro.obs.to_prometheus`) and, when the
server profiles its compiled modules, the top-kernels table under
``"kernels"``.
"""

from __future__ import annotations

from ..obs.metrics import MetricsRegistry

__all__ = ["ServingStats"]


class ServingStats:
    """Counters of one server instance, with a formatted report.

    The instance is also *callable*: ``server.stats()`` returns the snapshot
    dict of :meth:`as_dict` — including the inference-engine plan-cache
    section when the server runs with ``engine=True``.

    Parameters
    ----------
    engine_stats_provider:
        Zero-argument callable returning the engine's counter dict (traces,
        plan builds, plan bytes, plan evictions), or ``None``.
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` to record into; a
        private one is created when omitted.  Passing a shared registry lets
        several servers (or a server plus its trainer) export one snapshot.
    window:
        Ring window of the bounded latency/batch-size/queue-wait histograms
        — the memory ceiling replacing the old unbounded lists.
    kernel_profile_provider:
        Zero-argument callable returning a merged
        :class:`~repro.obs.profile.KernelProfiler` (or ``None``); set by the
        server when ``engine_profile=True``.
    """

    def __init__(
        self,
        engine_stats_provider=None,
        registry: MetricsRegistry | None = None,
        window: int = 4096,
        kernel_profile_provider=None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._requests = self.registry.counter("serving.requests")
        self._cache_hits = self.registry.counter("serving.cache_hits")
        self._dedup_hits = self.registry.counter("serving.dedup_hits")
        self._fused_runs = self.registry.counter("serving.fused_runs")
        self._solved_requests = self.registry.counter("serving.solved_requests")
        self._batch_sizes = self.registry.histogram("serving.batch_size", window=window)
        self._latencies = self.registry.histogram(
            "serving.latency_seconds", window=window
        )
        self._queue_waits = self.registry.histogram(
            "serving.queue_wait_seconds", window=window
        )
        self._mega_runs = self.registry.counter("serving.mega_runs")
        self._mega_calls = self.registry.counter("serving.mega_calls")
        self._mega_rows = self.registry.histogram("serving.mega_rows", window=window)
        self._mega_occupancy = self.registry.histogram(
            "serving.mega_occupancy", window=window
        )
        self._retries = self.registry.counter("serving.retries")
        self._rejections = self.registry.counter("serving.rejections")
        self._timeouts = self.registry.counter("serving.timeouts")
        self._failures = self.registry.counter("serving.failures")
        self._store_hits = self.registry.counter("serving.store_hits")
        self._breaker_rejections = self.registry.counter(
            "serving.breaker_rejections"
        )
        self._memory_sheds = self.registry.counter("serving.memory_sheds")
        self._requeues = self.registry.counter("serving.requeues")
        #: zero-argument callable returning the engine's counter dict
        #: (traces, plan builds, plan bytes, plan evictions), or ``None``
        self.engine_stats_provider = engine_stats_provider
        self.kernel_profile_provider = kernel_profile_provider

    def __call__(self) -> dict:
        return self.as_dict()

    # -- recording ----------------------------------------------------------------

    def record_submit(self) -> None:
        self._requests.inc()

    def record_cache_hit(self) -> None:
        self._cache_hits.inc()

    def record_dedup_hit(self) -> None:
        self._dedup_hits.inc()

    def record_fused_run(self, num_unique: int) -> None:
        self._fused_runs.inc()
        self._solved_requests.inc(num_unique)
        self._batch_sizes.observe(num_unique)

    def record_latency(self, seconds: float) -> None:
        self._latencies.observe(float(seconds))

    def record_queue_wait(self, seconds: float) -> None:
        self._queue_waits.observe(float(seconds))

    def record_mega_run(self, num_batches: int) -> None:
        """One cross-request mega-batch execution fusing ``num_batches`` batches."""

        self._mega_runs.inc()

    def record_mega_call(self, rows: int, sessions: int) -> None:
        """One fused solver call carrying ``rows`` rows from ``sessions`` batches.

        ``sessions`` is the mega-batch *occupancy*: how many request batches
        contributed rows to this call (1 would mean no cross-request fusion
        happened on the call).
        """

        self._mega_calls.inc()
        self._mega_rows.observe(float(rows))
        self._mega_occupancy.observe(float(sessions))

    def record_retry(self) -> None:
        self._retries.inc()

    def record_rejection(self) -> None:
        self._rejections.inc()

    def record_timeout(self) -> None:
        self._timeouts.inc()

    def record_failure(self) -> None:
        self._failures.inc()

    def record_breaker_rejection(self) -> None:
        """One submission rejected fast by an open circuit breaker."""

        self._breaker_rejections.inc()
        self._rejections.inc()

    def record_memory_shed(self) -> None:
        """One submission shed by memory-pressure admission control."""

        self._memory_sheds.inc()
        self._rejections.inc()

    def record_requeue(self, num_requests: int = 1) -> None:
        """Requests requeued after their worker died or hung."""

        self._requeues.inc(num_requests)

    def record_flight(self, reason: str) -> None:
        """One tail-sampled flight record retained for ``reason``."""

        self.registry.counter(
            "serving.flight_records", labels={"reason": reason}
        ).inc()

    def record_store_hit(self) -> None:
        # A store replay answers the request without a solve, exactly like a
        # cache hit; it counts in both so cache_hit_rate stays meaningful.
        self._store_hits.inc()
        self._cache_hits.inc()

    # -- counter facade (same attribute names as the pre-registry class) ----------

    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def cache_hits(self) -> int:
        return self._cache_hits.value

    @property
    def dedup_hits(self) -> int:
        return self._dedup_hits.value

    @property
    def fused_runs(self) -> int:
        return self._fused_runs.value

    @property
    def solved_requests(self) -> int:
        return self._solved_requests.value

    @property
    def retries(self) -> int:
        return self._retries.value

    @property
    def rejections(self) -> int:
        return self._rejections.value

    @property
    def timeouts(self) -> int:
        return self._timeouts.value

    @property
    def failures(self) -> int:
        return self._failures.value

    @property
    def store_hits(self) -> int:
        return self._store_hits.value

    @property
    def breaker_rejections(self) -> int:
        return self._breaker_rejections.value

    @property
    def memory_sheds(self) -> int:
        return self._memory_sheds.value

    @property
    def requeues(self) -> int:
        return self._requeues.value

    @property
    def mega_runs(self) -> int:
        return self._mega_runs.value

    @property
    def mega_calls(self) -> int:
        return self._mega_calls.value

    @property
    def mean_mega_occupancy(self) -> float:
        """Mean request batches fused per mega solver call (0 when unused)."""

        return self._mega_occupancy.mean

    @property
    def mean_mega_rows(self) -> float:
        """Mean subdomain rows per mega solver call (0 when unused)."""

        return self._mega_rows.mean

    @property
    def batch_sizes(self) -> list:
        """Recent fused batch sizes (bounded window, oldest first)."""

        return [int(v) for v in self._batch_sizes.values()]

    @property
    def latencies(self) -> list:
        """Recent request latencies in seconds (bounded window, oldest first)."""

        return [float(v) for v in self._latencies.values()]

    # -- derived ------------------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        """Requests answered without a solve (LRU or in-batch duplicate)."""

        requests = self.requests
        if requests == 0:
            return 0.0
        return (self.cache_hits + self.dedup_hits) / requests

    @property
    def completed_requests(self) -> int:
        """Requests answered so far (served from cache, dedup or a solve)."""

        return self.cache_hits + self.dedup_hits + self.solved_requests

    @property
    def solver_runs_saved(self) -> int:
        """Predictor runs avoided versus one run per *completed* request.

        Counted over completed requests only, so queued-but-unserved
        requests are not reported as savings mid-run.
        """

        return self.completed_requests - self.fused_runs

    @property
    def mean_batch_size(self) -> float:
        # Exact over the full stream (histogram count/sum never wrap).
        return self._batch_sizes.mean

    def latency_percentile(self, percentile: float) -> float:
        return self._latencies.percentile(percentile)

    def as_dict(self) -> dict:
        report = {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "dedup_hits": self.dedup_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "fused_runs": self.fused_runs,
            "solved_requests": self.solved_requests,
            "solver_runs_saved": self.solver_runs_saved,
            "retries": self.retries,
            "rejections": self.rejections,
            "timeouts": self.timeouts,
            "failures": self.failures,
            "store_hits": self.store_hits,
            "breaker_rejections": self.breaker_rejections,
            "memory_sheds": self.memory_sheds,
            "requeues": self.requeues,
            "mega_runs": self.mega_runs,
            "mega_calls": self.mega_calls,
            "mean_mega_occupancy": self.mean_mega_occupancy,
            "mean_mega_rows": self.mean_mega_rows,
            "mean_batch_size": self.mean_batch_size,
            "latency_mean": self._latencies.mean,
            "latency_p50": self.latency_percentile(50),
            "latency_p99": self.latency_percentile(99),
            "obs": self.registry.snapshot(),
        }
        if self.engine_stats_provider is not None:
            report["engine"] = self.engine_stats_provider()
        if self.kernel_profile_provider is not None:
            profiler = self.kernel_profile_provider()
            if profiler is not None:
                report["kernels"] = profiler.as_dict()
        return report

    def report(self) -> str:
        """Human-readable multi-line summary."""

        d = self.as_dict()
        lines = [
            "=== serving stats ===",
            f"requests          : {d['requests']}",
            f"cache hits        : {d['cache_hits']} (+{d['dedup_hits']} in-batch dedup)",
            f"cache hit rate    : {d['cache_hit_rate']:.1%}",
            f"fused solver runs : {d['fused_runs']} (mean batch {d['mean_batch_size']:.1f})",
            f"solver runs saved : {d['solver_runs_saved']}",
            f"mega-batch runs   : {d['mega_runs']} "
            f"(occupancy {d['mean_mega_occupancy']:.1f} batches/call, "
            f"{d['mean_mega_rows']:.0f} rows/call)",
            f"retries/timeouts  : {d['retries']} / {d['timeouts']} "
            f"({d['failures']} failed, {d['rejections']} shed)",
            f"robustness        : {d['requeues']} requeued, "
            f"{d['breaker_rejections']} breaker-rejected, "
            f"{d['memory_sheds']} memory-shed",
            f"latency mean/p50/p99 : "
            f"{d['latency_mean']*1e3:.2f} / {d['latency_p50']*1e3:.2f} / "
            f"{d['latency_p99']*1e3:.2f} ms",
        ]
        engine = d.get("engine")
        if engine is not None:
            lines.append(
                f"engine plans      : {engine['plan_builds']} built, "
                f"{engine['plan_evictions']} evicted, "
                f"{engine['plan_bytes'] / 1e6:.2f} MB in use "
                f"({engine['traces']} traces, {engine['modules']} modules)"
            )
        kernels = d.get("kernels")
        if kernels is not None and kernels["kernels"]:
            top = kernels["kernels"][0]
            lines.append(
                f"hottest kernel    : {top['op']} "
                f"({top['fraction']:.1%} of {kernels['total_seconds']*1e3:.2f} ms "
                f"over {kernels['total_calls']} kernel calls)"
            )
        return "\n".join(lines)
