"""Serving statistics: latency percentiles, cache effect, batching effect.

The headline numbers a serving layer must report:

* **latency** — per-request submit-to-completion time (p50/p99/mean),
* **cache hit rate** — fraction of requests answered without any solve
  (LRU hits at submit plus within-batch deduplication),
* **solver runs saved** — how many fused predictor runs batching + caching
  avoided compared to one run per request (the Figure 8 effect at the
  request level).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ServingStats"]


class ServingStats:
    """Mutable counters of one server instance, with a formatted report.

    The instance is also *callable*: ``server.stats()`` returns the snapshot
    dict of :meth:`as_dict` — including the inference-engine plan-cache
    section when the server runs with ``engine=True``.
    """

    def __init__(self, engine_stats_provider=None):
        self.requests = 0
        self.cache_hits = 0
        self.dedup_hits = 0
        self.fused_runs = 0
        self.solved_requests = 0
        self.batch_sizes: list[int] = []
        self.latencies: list[float] = []
        #: zero-argument callable returning the engine's counter dict
        #: (traces, plan builds, plan bytes, plan evictions), or ``None``
        self.engine_stats_provider = engine_stats_provider

    def __call__(self) -> dict:
        return self.as_dict()

    # -- recording ----------------------------------------------------------------

    def record_submit(self) -> None:
        self.requests += 1

    def record_cache_hit(self) -> None:
        self.cache_hits += 1

    def record_dedup_hit(self) -> None:
        self.dedup_hits += 1

    def record_fused_run(self, num_unique: int) -> None:
        self.fused_runs += 1
        self.solved_requests += num_unique
        self.batch_sizes.append(num_unique)

    def record_latency(self, seconds: float) -> None:
        self.latencies.append(float(seconds))

    # -- derived ------------------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        """Requests answered without a solve (LRU or in-batch duplicate)."""

        if self.requests == 0:
            return 0.0
        return (self.cache_hits + self.dedup_hits) / self.requests

    @property
    def completed_requests(self) -> int:
        """Requests answered so far (served from cache, dedup or a solve)."""

        return self.cache_hits + self.dedup_hits + self.solved_requests

    @property
    def solver_runs_saved(self) -> int:
        """Predictor runs avoided versus one run per *completed* request.

        Counted over completed requests only, so queued-but-unserved
        requests are not reported as savings mid-run.
        """

        return self.completed_requests - self.fused_runs

    @property
    def mean_batch_size(self) -> float:
        return float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0

    def latency_percentile(self, percentile: float) -> float:
        if not self.latencies:
            return 0.0
        return float(np.percentile(self.latencies, percentile))

    def as_dict(self) -> dict:
        report = {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "dedup_hits": self.dedup_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "fused_runs": self.fused_runs,
            "solved_requests": self.solved_requests,
            "solver_runs_saved": self.solver_runs_saved,
            "mean_batch_size": self.mean_batch_size,
            "latency_mean": float(np.mean(self.latencies)) if self.latencies else 0.0,
            "latency_p50": self.latency_percentile(50),
            "latency_p99": self.latency_percentile(99),
        }
        if self.engine_stats_provider is not None:
            report["engine"] = self.engine_stats_provider()
        return report

    def report(self) -> str:
        """Human-readable multi-line summary."""

        d = self.as_dict()
        lines = [
            "=== serving stats ===",
            f"requests          : {d['requests']}",
            f"cache hits        : {d['cache_hits']} (+{d['dedup_hits']} in-batch dedup)",
            f"cache hit rate    : {d['cache_hit_rate']:.1%}",
            f"fused solver runs : {d['fused_runs']} (mean batch {d['mean_batch_size']:.1f})",
            f"solver runs saved : {d['solver_runs_saved']}",
            f"latency mean/p50/p99 : "
            f"{d['latency_mean']*1e3:.2f} / {d['latency_p50']*1e3:.2f} / "
            f"{d['latency_p99']*1e3:.2f} ms",
        ]
        engine = d.get("engine")
        if engine is not None:
            lines.append(
                f"engine plans      : {engine['plan_builds']} built, "
                f"{engine['plan_evictions']} evicted, "
                f"{engine['plan_bytes'] / 1e6:.2f} MB in use "
                f"({engine['traces']} traces, {engine['modules']} modules)"
            )
        return "\n".join(lines)
