"""Futures and typed errors of the async serving front-end.

A :class:`SolveFuture` is the handle :meth:`Server.submit_async
<repro.serving.server.Server.submit_async>` returns immediately: the caller
can block on :meth:`~SolveFuture.result` (with an optional wait timeout),
poll :meth:`~SolveFuture.done`, inspect :meth:`~SolveFuture.exception`, or
register completion callbacks with :meth:`~SolveFuture.add_done_callback`.
One future is resolved exactly once — either with a
:class:`~repro.serving.api.SolveResult` or with one of the typed serving
errors below — and duplicate submissions of the same canonical request share
one solve but each receive their own future (resolved with bitwise-identical
solution arrays by the idempotent :class:`~repro.serving.store.RequestStore`).

Error taxonomy (all subclasses of :class:`SolveError`):

* :class:`RetryExhaustedError` — the fused solve kept failing after the
  server's capped-exponential-backoff retry budget (``max_retries``) was
  spent; ``__cause__`` carries the final underlying failure.
* :class:`DeadlineExceededError` — the request carried a
  ``deadline_seconds`` and either expired before its batch was dispatched
  (failed fast, no solve issued) or its solve completed past the deadline.
* :class:`QuotaExceededError` — per-tenant admission control rejected the
  request at submit time instead of queueing it unboundedly.
* :class:`MemoryPressureError` — admission control shed the request because
  the process's live bytes are over the tenant's priority-scaled share of
  the memory budget (a :class:`QuotaExceededError` subclass, so existing
  quota handling sees it).
* :class:`CircuitOpenError` — this request's solver backend (its
  ``solver_fusion_key``) has its circuit breaker open after consecutive
  failures; the request is rejected fast instead of joining a retry storm.
* :class:`ServerClosedError` — the server is draining
  (:meth:`~repro.serving.server.Server.drain_and_close`) or closed and no
  longer accepts submissions.
"""

from __future__ import annotations

import threading

__all__ = [
    "SolveError",
    "RetryExhaustedError",
    "DeadlineExceededError",
    "QuotaExceededError",
    "MemoryPressureError",
    "CircuitOpenError",
    "ServerClosedError",
    "SolveFuture",
]


class SolveError(RuntimeError):
    """Base class of every typed failure a :class:`SolveFuture` can carry.

    When the server runs with a flight recorder, ``flight_record`` holds
    the :class:`~repro.obs.flight.FlightRecord` retained for this failure
    (tenant/fusion/occupancy attribution plus the span tree), so callers
    holding only the exception can reach the trace.
    """

    #: flight record retained for this failure, or ``None``
    flight_record = None


class RetryExhaustedError(SolveError):
    """The solve failed on every attempt the retry policy allowed.

    ``attempts`` counts solve attempts made (initial try plus retries);
    ``__cause__`` is the exception raised by the final attempt.
    """

    def __init__(self, message: str, attempts: int = 0):
        super().__init__(message)
        self.attempts = int(attempts)


class DeadlineExceededError(SolveError):
    """The request's ``deadline_seconds`` elapsed before it could be served."""


class QuotaExceededError(SolveError):
    """Admission control rejected the request under its tenant's quota."""


class MemoryPressureError(QuotaExceededError):
    """Admission shed the request: live bytes are over the tenant's threshold."""


class CircuitOpenError(SolveError):
    """The request's solver backend is circuit-broken after repeated failures."""


class ServerClosedError(SolveError):
    """The server is draining or closed and no longer accepts submissions."""


class SolveFuture:
    """Completion handle of one submitted solve request.

    Thread-safe and single-assignment: the serving pipeline resolves the
    future exactly once, from whichever thread completes the request
    (dispatcher, solve worker, or the submitting thread on a cache hit).

    Callbacks registered with :meth:`add_done_callback` run on the resolving
    thread (immediately on the registering thread if the future is already
    done); exceptions they raise are swallowed so a misbehaving callback
    cannot poison the serving pipeline.
    """

    __slots__ = ("request_id", "_cond", "_done", "_result", "_exception", "_callbacks")

    def __init__(self, request_id: str):
        self.request_id = request_id
        self._cond = threading.Condition()
        self._done = False
        self._result = None
        self._exception: BaseException | None = None
        self._callbacks: list = []

    # -- inspection ---------------------------------------------------------------

    def done(self) -> bool:
        """Whether the future has been resolved (result or error)."""

        with self._cond:
            return self._done

    def result(self, timeout: float | None = None):
        """Block until resolved; return the :class:`SolveResult` or raise.

        Raises the request's typed :class:`SolveError` if it failed, or the
        built-in :class:`TimeoutError` if the *wait* exceeds ``timeout``
        seconds (the future itself stays pending — a wait timeout is not a
        request deadline).
        """

        with self._cond:
            if not self._cond.wait_for(lambda: self._done, timeout=timeout):
                raise TimeoutError(
                    f"request {self.request_id!r} still pending after {timeout}s wait"
                )
            if self._exception is not None:
                raise self._exception
            return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block until resolved; return the failure (or ``None`` on success)."""

        with self._cond:
            if not self._cond.wait_for(lambda: self._done, timeout=timeout):
                raise TimeoutError(
                    f"request {self.request_id!r} still pending after {timeout}s wait"
                )
            return self._exception

    # -- callbacks ----------------------------------------------------------------

    def add_done_callback(self, fn) -> None:
        """Call ``fn(future)`` once resolved (immediately if already done)."""

        with self._cond:
            if not self._done:
                self._callbacks.append(fn)
                return
        self._invoke(fn)

    # -- resolution (serving-pipeline internal) -----------------------------------

    def _set_result(self, result) -> None:
        self._resolve(result, None)

    def _set_exception(self, exception: BaseException) -> None:
        self._resolve(None, exception)

    def _resolve(self, result, exception) -> None:
        with self._cond:
            if self._done:
                raise RuntimeError(f"future {self.request_id!r} already resolved")
            self._result = result
            self._exception = exception
            self._done = True
            callbacks, self._callbacks = self._callbacks, []
            self._cond.notify_all()
        for fn in callbacks:
            self._invoke(fn)

    def _invoke(self, fn) -> None:
        try:
            fn(self)
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._cond:
            state = (
                "pending" if not self._done
                else "failed" if self._exception is not None
                else "done"
            )
        return f"SolveFuture({self.request_id!r}, {state})"
