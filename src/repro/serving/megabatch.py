"""Cross-request anchor-level mega-batching.

The per-geometry :class:`~repro.serving.fused.FusedBatchRunner` already
stacks one request batch's anchors into fused solver calls; this module
pushes batching one level lower.  Requests from *different* geometry groups
whose subdomains have the same local grid (points and extent) query the
solver with identical local coordinates — the iterate calls all use the
geometry's center-line coordinates and the assembly calls its interior
coordinates, both of which depend only on the subdomain grid.  Their rows can
therefore be concatenated into one solver call regardless of the global
domain shape (a 4x4 rectangle and an L-shaped composite fuse fine), which is
exactly the paper's throughput lever: SDNet calls as close to the
memory-feasible maximum batch as the traffic allows.

:class:`MegaBatchExecutor` drives several runners' call generators
(:meth:`~repro.serving.fused.FusedBatchRunner.iterate_calls` /
``assembly_calls``) in lockstep.  Each round it collects every session's
pending ``(boundaries, points)`` call, concatenates the boundary rows, runs
the solver once (chunked to a perfmodel-sized row cap when one is
configured), and scatters the prediction rows back to their sessions.  Row
order within each session's call is untouched and solvers are row-batch
invariant (the repo-wide precedent: ``SDNetSubdomainSolver.max_batch`` splits
batches internally and ``FDSubdomainSolver`` loops per row), so every session
receives bitwise-identical predictions to its sequential run — the
per-request path stays the test oracle.

Fusion compatibility is decided by :func:`solver_fusion_key` plus the
subdomain grid parameters; unknown solver types conservatively never fuse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import memory as obs_memory
from .fused import FusedBatchRunner, FusedOutcome, FusedState

__all__ = ["solver_fusion_key", "MegaSession", "MegaBatchExecutor"]


def solver_fusion_key(solver) -> tuple | None:
    """Identity under which two geometry groups may share fused solver calls.

    Two groups fuse only when their solvers are *equivalent*: the same
    trained network (same model object, same internal batch cap) or the same
    exact finite-difference configuration.  Returns ``None`` for solver types
    this module does not understand — those groups never cross-fuse, they
    just keep their classic per-group path.
    """

    from ..mosaic.solvers import FDSubdomainSolver, SDNetSubdomainSolver

    if isinstance(solver, FDSubdomainSolver):
        grid = solver.grid
        return ("fd", grid.nx, grid.ny, tuple(grid.extent), solver.method)
    if isinstance(solver, SDNetSubdomainSolver):
        return ("sdnet", id(solver.model), solver.max_batch)
    return None


@dataclass
class MegaSession:
    """One request batch's runner + iteration state inside a mega run."""

    runner: FusedBatchRunner
    state: FusedState

    @classmethod
    def begin(cls, runner: FusedBatchRunner, loops, tols, budgets) -> "MegaSession":
        return cls(runner=runner, state=runner.begin(loops, tols, budgets))


class MegaBatchExecutor:
    """Drive many fused sessions through shared, row-concatenated solver calls.

    Parameters
    ----------
    solver:
        The shared subdomain solver answering every fused call.
    max_rows_for:
        Optional ``max_rows_for(q_points) -> int`` sizing the largest fused
        call (rows) the perfmodel allows for a given query-point count;
        over-cap calls are split into consecutive chunks (chunking is
        bitwise-invariant for row-batch-invariant solvers).  ``None`` puts
        every pending row into one call.
    on_call:
        Optional ``on_call(rows, sessions)`` observer fired once per issued
        solver call with the fused row count and the number of sessions that
        contributed — the mega-batch occupancy signal.

    Attributes
    ----------
    calls, rows:
        Number of solver calls issued and total rows carried by them.
    """

    def __init__(self, solver, max_rows_for=None, on_call=None):
        self.solver = solver
        self.max_rows_for = max_rows_for
        self.on_call = on_call
        self.calls = 0
        self.rows = 0

    def run(self, sessions: list[MegaSession]) -> list[list[FusedOutcome]]:
        """Run every session to completion; returns per-session outcomes."""

        self._drive([s.runner.iterate_calls(s.state) for s in sessions])
        self._drive([s.runner.assembly_calls(s.state) for s in sessions])
        return [s.runner.outcomes(s.state) for s in sessions]

    # -- lockstep driver ---------------------------------------------------------

    def _drive(self, generators) -> None:
        pending = []
        for generator in generators:
            try:
                pending.append((generator, next(generator)))
            except StopIteration:
                continue
        while pending:
            points = pending[0][1][1]
            for _, (_, other) in pending[1:]:
                if other is not points and not np.array_equal(other, points):
                    raise ValueError(
                        "mega-batched sessions disagree on query coordinates; "
                        "their geometries are not fusion-compatible"
                    )
            boundaries = [call[0] for _, call in pending]
            counts = [b.shape[0] for b in boundaries]
            scratch_bytes = 0
            if len(boundaries) > 1:
                stacked = np.concatenate(boundaries, axis=0)
                # Concatenation scratch is the mega path's only allocation
                # beyond the solver's own; account it so bytes-per-request
                # reflects occupancy.
                scratch_bytes = int(stacked.nbytes)
                obs_memory.add(obs_memory.MEGA_SCRATCH, scratch_bytes)
            else:
                stacked = boundaries[0]
            try:
                predictions = self._predict(stacked, points, sessions=len(pending))
            finally:
                if scratch_bytes:
                    obs_memory.sub(obs_memory.MEGA_SCRATCH, scratch_bytes)
            advanced = []
            offset = 0
            for (generator, _), count in zip(pending, counts):
                part = predictions[offset:offset + count]
                offset += count
                try:
                    advanced.append((generator, generator.send(part)))
                except StopIteration:
                    continue
            pending = advanced

    def _predict(self, stacked, points, sessions: int) -> np.ndarray:
        total = stacked.shape[0]
        cap = None if self.max_rows_for is None else int(self.max_rows_for(points.shape[0]))
        if cap is None or cap < 1 or total <= cap:
            self.calls += 1
            self.rows += total
            if self.on_call is not None:
                self.on_call(total, sessions)
            return self.solver.predict(stacked, points)
        out = np.empty((total, points.shape[0]), dtype=float)
        obs_memory.add(obs_memory.MEGA_SCRATCH, out.nbytes)
        try:
            for start in range(0, total, cap):
                stop = min(start + cap, total)
                out[start:stop] = self.solver.predict(stacked[start:stop], points)
                self.calls += 1
                self.rows += stop - start
                if self.on_call is not None:
                    self.on_call(stop - start, sessions)
            return out
        finally:
            obs_memory.sub(obs_memory.MEGA_SCRATCH, out.nbytes)
