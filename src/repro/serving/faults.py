"""Deterministic fault injection at the serving pipeline's seams.

Robustness features are only real if their failure modes are reproducible.
This module gives the serving layer flag-guarded, monkeypatch-free fault
hooks: production code calls :meth:`FaultInjector.fire` at three fixed
boundaries, and an injector configured with a :class:`FaultSchedule` decides
— purely from deterministic per-``(site, rank)`` call counters — whether
that particular call crashes, runs slow, or is delivered twice.  With no
injector configured (the default) every hook is a no-op attribute check.

Sites (the module-level constants are the wiring contract):

* ``WORKER_SOLVE`` — fired by every worker rank at the worker-call boundary,
  just before its :class:`~repro.serving.fused.FusedBatchRunner` runs.  A
  ``crash`` here surfaces as a mid-batch worker failure
  (:class:`~repro.distributed.simulated.SpmdFailure` wrapping
  :class:`InjectedFault`) and exercises the server's retry policy; a
  ``delay`` models a straggling solve and exercises request deadlines.
* ``BATCH_ASSEMBLY`` — fired while the server stacks a batch's boundary
  loops; a ``crash`` models corrupt batch assembly.
* ``STORE_DELIVER`` — fired when the server delivers a solved outcome to the
  :class:`~repro.serving.store.RequestStore`; a ``duplicate`` makes the
  server deliver the same outcome twice, exercising upsert idempotency.
* ``WORKER_DEATH`` — fired by the server at the start of every batch group
  and again after each fused solve (mid-batch, results computed but not yet
  delivered); a ``death`` kind raises :class:`WorkerDeath`, modelling the
  worker process dying, and exercises the supervisor's requeue path.
* ``WORKER_HEARTBEAT`` — fired each time a serving worker would emit a
  supervision heartbeat; a ``drop`` kind suppresses that heartbeat,
  modelling heartbeat loss between a live worker and its supervisor.
* ``JOURNAL_WRITE`` — fired by the request journal before each record
  append; a ``torn`` kind flushes half a frame to disk and then fails the
  journal permanently, modelling a process crash mid-write (the torn tail
  the journal must truncate on the next open).

Determinism: each spec names the 0-based call index at which it fires
(``repeat=True`` makes it fire at every index from there on — sustained
heartbeat loss), and call counters are kept per ``(site, rank)`` so
multi-rank thread interleavings cannot reorder which call a fault lands on.
Delays never ``time.sleep`` by default — the injector's ``sleep`` callable
is injectable, so tests pass a fake clock's ``advance`` and stay wall-clock
free.  :meth:`FaultSchedule.seeded` keeps drawing over the original three
serving sites by default so existing seeds replay identically; pass
``sites=`` explicitly to draw process-level faults.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = [
    "WORKER_SOLVE",
    "BATCH_ASSEMBLY",
    "STORE_DELIVER",
    "WORKER_DEATH",
    "WORKER_HEARTBEAT",
    "JOURNAL_WRITE",
    "CRASH",
    "DELAY",
    "DUPLICATE",
    "DEATH",
    "DROP",
    "TORN",
    "InjectedFault",
    "WorkerDeath",
    "FaultSpec",
    "FaultSchedule",
    "FaultInjector",
]

#: fault sites wired into the serving pipeline
WORKER_SOLVE = "worker.solve"
BATCH_ASSEMBLY = "batch.assembly"
STORE_DELIVER = "store.deliver"
WORKER_DEATH = "worker.death"
WORKER_HEARTBEAT = "worker.heartbeat"
JOURNAL_WRITE = "journal.write"
SITES = (
    WORKER_SOLVE,
    BATCH_ASSEMBLY,
    STORE_DELIVER,
    WORKER_DEATH,
    WORKER_HEARTBEAT,
    JOURNAL_WRITE,
)
#: the sites :meth:`FaultSchedule.seeded` draws from by default — frozen at
#: the original three so seeds minted before the process-level sites existed
#: keep replaying the exact same schedules.
DEFAULT_SEED_SITES = (WORKER_SOLVE, BATCH_ASSEMBLY, STORE_DELIVER)

#: fault kinds
CRASH = "crash"
DELAY = "delay"
DUPLICATE = "duplicate"
DEATH = "death"
DROP = "drop"
TORN = "torn"
KINDS = (CRASH, DELAY, DUPLICATE, DEATH, DROP, TORN)

#: kinds only defined at one site (and the only kinds those sites accept,
#: besides ``delay`` which is valid anywhere)
_SITE_BOUND_KINDS = {
    DUPLICATE: STORE_DELIVER,
    DEATH: WORKER_DEATH,
    DROP: WORKER_HEARTBEAT,
    TORN: JOURNAL_WRITE,
}


class InjectedFault(RuntimeError):
    """Raised by a ``crash`` fault; never raised by production code paths."""


class WorkerDeath(BaseException):
    """Raised by a ``death`` fault: the worker running this batch 'died'.

    Deliberately a :class:`BaseException` so the serving layer's ordinary
    ``except Exception`` retry/failure handlers cannot mistake a process
    death for a retryable solver error — only the supervisor-aware handler
    in ``Server._run_group`` catches it and requeues the in-flight work.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Fires on the ``index``-th call (0-based) at ``site``; when ``rank`` is
    set, only calls from that worker rank are counted and matched.
    ``delay_seconds`` applies to ``delay`` faults.  ``repeat=True`` makes
    the spec fire on *every* call from ``index`` on — sustained failure
    modes like continuous heartbeat loss.
    """

    site: str
    index: int
    kind: str = CRASH
    rank: int | None = None
    delay_seconds: float = 0.0
    repeat: bool = False

    def __post_init__(self):
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; one of {SITES}")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {KINDS}")
        if self.index < 0:
            raise ValueError("index must be non-negative")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")
        bound_site = _SITE_BOUND_KINDS.get(self.kind)
        if bound_site is not None and self.site != bound_site:
            friendly = {
                STORE_DELIVER: "store",
                WORKER_DEATH: "worker-death",
                WORKER_HEARTBEAT: "heartbeat",
                JOURNAL_WRITE: "journal-write",
            }[bound_site]
            raise ValueError(
                f"{self.kind!r} faults only apply to the {friendly} boundary "
                f"({bound_site!r})"
            )
        if self.site in _SITE_BOUND_KINDS.values():
            allowed = {k for k, s in _SITE_BOUND_KINDS.items() if s == self.site}
            allowed.add(DELAY)
            if self.site in (WORKER_SOLVE, BATCH_ASSEMBLY, STORE_DELIVER):
                allowed.add(CRASH)
            if self.kind not in allowed:
                raise ValueError(
                    f"fault kind {self.kind!r} is not defined at {self.site!r}; "
                    f"one of {sorted(allowed)}"
                )


class FaultSchedule:
    """An immutable collection of :class:`FaultSpec` with a seeded builder."""

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...] = ()):
        self.specs = tuple(specs)
        self._by_site: dict[str, list[FaultSpec]] = {}
        for spec in self.specs:
            self._by_site.setdefault(spec.site, []).append(spec)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def match(self, site: str, index: int, rank: int | None) -> FaultSpec | None:
        """The spec firing on this call, or ``None``."""

        for spec in self._by_site.get(site, ()):
            if spec.rank is not None and spec.rank != rank:
                continue
            if spec.index == index or (spec.repeat and index >= spec.index):
                return spec
        return None

    @classmethod
    def seeded(
        cls,
        seed: int,
        num_faults: int = 3,
        sites: tuple = DEFAULT_SEED_SITES,
        kinds: tuple = (CRASH, DELAY),
        max_index: int = 8,
        delay_seconds: float = 0.05,
    ) -> "FaultSchedule":
        """Build a reproducible random schedule from a seed.

        The same seed always yields the same specs (sites, kinds, call
        indices), so a fault scenario found by a randomized run can be
        replayed exactly by its seed.  Kinds that are only defined at one
        boundary (``duplicate``, ``death``, ``drop``, ``torn``) are remapped
        onto that boundary's single kind when its site is drawn; ``sites``
        defaults to the original three serving seams so old seeds replay
        bit-for-bit — pass e.g. ``sites=(WORKER_DEATH, JOURNAL_WRITE,
        WORKER_HEARTBEAT)`` for process-level chaos schedules.
        """

        from ..utils import seeded_rng

        site_kind = {site: kind for kind, site in _SITE_BOUND_KINDS.items()}
        rng = seeded_rng(seed)
        specs = []
        for _ in range(int(num_faults)):
            site = sites[int(rng.integers(len(sites)))]
            if site in site_kind:
                kind = site_kind[site]  # the only kind defined at that boundary
            else:
                pool = tuple(
                    k for k in kinds if k not in _SITE_BOUND_KINDS
                ) or (CRASH,)
                kind = pool[int(rng.integers(len(pool)))]
            specs.append(
                FaultSpec(
                    site=site,
                    index=int(rng.integers(max_index)),
                    kind=kind,
                    delay_seconds=delay_seconds if kind == DELAY else 0.0,
                )
            )
        # Dedup identical (site, index, rank) collisions — one fault per call.
        unique: dict[tuple, FaultSpec] = {}
        for spec in specs:
            unique.setdefault((spec.site, spec.index, spec.rank), spec)
        return cls(tuple(unique.values()))


class FaultInjector:
    """Evaluates a :class:`FaultSchedule` against deterministic call counters.

    Parameters
    ----------
    schedule:
        The faults to inject; a plain list of :class:`FaultSpec` is wrapped.
    sleep:
        How ``delay`` faults pass time.  Defaults to :func:`time.sleep`;
        deterministic tests pass their fake clock's ``advance`` so no real
        time is spent.
    enabled:
        Master flag; a disabled injector counts nothing and injects nothing.
    """

    def __init__(self, schedule=(), sleep=time.sleep, enabled: bool = True):
        self.schedule = (
            schedule if isinstance(schedule, FaultSchedule) else FaultSchedule(schedule)
        )
        self.sleep = sleep
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counts: dict[tuple, int] = {}
        #: every fault actually injected, in firing order: (site, index, spec)
        self.fired: list[tuple] = []

    def calls(self, site: str, rank: int | None = None) -> int:
        """How many times ``site`` has been hit (by ``rank``, if given)."""

        with self._lock:
            if rank is not None:
                return self._counts.get((site, rank), 0)
            return sum(n for (s, _), n in self._counts.items() if s == site)

    def reset(self) -> None:
        """Zero the call counters so a schedule can be replayed."""

        with self._lock:
            self._counts.clear()
            self.fired.clear()

    def fire(self, site: str, rank: int | None = None, **context) -> FaultSpec | None:
        """Count one call at ``site`` and inject any scheduled fault.

        Returns the injected spec (``delay`` specs after sleeping,
        ``duplicate``/``drop``/``torn`` specs for the caller to act on) or
        ``None``; raises :class:`InjectedFault` for ``crash`` specs and
        :class:`WorkerDeath` for ``death`` specs.
        """

        if not self.enabled:
            return None
        with self._lock:
            key = (site, rank)
            index = self._counts.get(key, 0)
            self._counts[key] = index + 1
            spec = self.schedule.match(site, index, rank)
            if spec is not None:
                self.fired.append((site, index, spec))
        if spec is None:
            return None
        if spec.kind == CRASH:
            raise InjectedFault(
                f"injected crash at {site} call #{index}"
                + (f" (rank {rank})" if rank is not None else "")
            )
        if spec.kind == DEATH:
            raise WorkerDeath(f"injected worker death at {site} call #{index}")
        if spec.kind == DELAY and spec.delay_seconds:
            self.sleep(spec.delay_seconds)
        return spec
