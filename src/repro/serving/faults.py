"""Deterministic fault injection at the serving pipeline's seams.

Robustness features are only real if their failure modes are reproducible.
This module gives the serving layer flag-guarded, monkeypatch-free fault
hooks: production code calls :meth:`FaultInjector.fire` at three fixed
boundaries, and an injector configured with a :class:`FaultSchedule` decides
— purely from deterministic per-``(site, rank)`` call counters — whether
that particular call crashes, runs slow, or is delivered twice.  With no
injector configured (the default) every hook is a no-op attribute check.

Sites (the module-level constants are the wiring contract):

* ``WORKER_SOLVE`` — fired by every worker rank at the worker-call boundary,
  just before its :class:`~repro.serving.fused.FusedBatchRunner` runs.  A
  ``crash`` here surfaces as a mid-batch worker failure
  (:class:`~repro.distributed.simulated.SpmdFailure` wrapping
  :class:`InjectedFault`) and exercises the server's retry policy; a
  ``delay`` models a straggling solve and exercises request deadlines.
* ``BATCH_ASSEMBLY`` — fired while the server stacks a batch's boundary
  loops; a ``crash`` models corrupt batch assembly.
* ``STORE_DELIVER`` — fired when the server delivers a solved outcome to the
  :class:`~repro.serving.store.RequestStore`; a ``duplicate`` makes the
  server deliver the same outcome twice, exercising upsert idempotency.

Determinism: each spec names the 0-based call index at which it fires, and
call counters are kept per ``(site, rank)`` so multi-rank thread
interleavings cannot reorder which call a fault lands on.  Delays never
``time.sleep`` by default — the injector's ``sleep`` callable is injectable,
so tests pass a fake clock's ``advance`` and stay wall-clock free.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = [
    "WORKER_SOLVE",
    "BATCH_ASSEMBLY",
    "STORE_DELIVER",
    "CRASH",
    "DELAY",
    "DUPLICATE",
    "InjectedFault",
    "FaultSpec",
    "FaultSchedule",
    "FaultInjector",
]

#: fault sites wired into the serving pipeline
WORKER_SOLVE = "worker.solve"
BATCH_ASSEMBLY = "batch.assembly"
STORE_DELIVER = "store.deliver"
SITES = (WORKER_SOLVE, BATCH_ASSEMBLY, STORE_DELIVER)

#: fault kinds
CRASH = "crash"
DELAY = "delay"
DUPLICATE = "duplicate"
KINDS = (CRASH, DELAY, DUPLICATE)


class InjectedFault(RuntimeError):
    """Raised by a ``crash`` fault; never raised by production code paths."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Fires on the ``index``-th call (0-based) at ``site``; when ``rank`` is
    set, only calls from that worker rank are counted and matched.
    ``delay_seconds`` applies to ``delay`` faults.
    """

    site: str
    index: int
    kind: str = CRASH
    rank: int | None = None
    delay_seconds: float = 0.0

    def __post_init__(self):
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; one of {SITES}")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {KINDS}")
        if self.index < 0:
            raise ValueError("index must be non-negative")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be non-negative")
        if self.kind == DUPLICATE and self.site != STORE_DELIVER:
            raise ValueError("duplicate faults only apply to the store boundary")


class FaultSchedule:
    """An immutable collection of :class:`FaultSpec` with a seeded builder."""

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...] = ()):
        self.specs = tuple(specs)
        self._by_site: dict[str, list[FaultSpec]] = {}
        for spec in self.specs:
            self._by_site.setdefault(spec.site, []).append(spec)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def match(self, site: str, index: int, rank: int | None) -> FaultSpec | None:
        """The spec firing on this call, or ``None``."""

        for spec in self._by_site.get(site, ()):
            if spec.index == index and (spec.rank is None or spec.rank == rank):
                return spec
        return None

    @classmethod
    def seeded(
        cls,
        seed: int,
        num_faults: int = 3,
        sites: tuple = SITES,
        kinds: tuple = (CRASH, DELAY),
        max_index: int = 8,
        delay_seconds: float = 0.05,
    ) -> "FaultSchedule":
        """Build a reproducible random schedule from a seed.

        The same seed always yields the same specs (sites, kinds, call
        indices), so a fault scenario found by a randomized run can be
        replayed exactly by its seed.  ``duplicate`` kinds are remapped onto
        the store boundary, where they are defined.
        """

        from ..utils import seeded_rng

        rng = seeded_rng(seed)
        specs = []
        for _ in range(int(num_faults)):
            site = sites[int(rng.integers(len(sites)))]
            if site == STORE_DELIVER:
                kind = DUPLICATE  # the only kind defined at the store boundary
            else:
                pool = tuple(k for k in kinds if k != DUPLICATE) or (CRASH,)
                kind = pool[int(rng.integers(len(pool)))]
            specs.append(
                FaultSpec(
                    site=site,
                    index=int(rng.integers(max_index)),
                    kind=kind,
                    delay_seconds=delay_seconds if kind == DELAY else 0.0,
                )
            )
        # Dedup identical (site, index, rank) collisions — one fault per call.
        unique: dict[tuple, FaultSpec] = {}
        for spec in specs:
            unique.setdefault((spec.site, spec.index, spec.rank), spec)
        return cls(tuple(unique.values()))


class FaultInjector:
    """Evaluates a :class:`FaultSchedule` against deterministic call counters.

    Parameters
    ----------
    schedule:
        The faults to inject; a plain list of :class:`FaultSpec` is wrapped.
    sleep:
        How ``delay`` faults pass time.  Defaults to :func:`time.sleep`;
        deterministic tests pass their fake clock's ``advance`` so no real
        time is spent.
    enabled:
        Master flag; a disabled injector counts nothing and injects nothing.
    """

    def __init__(self, schedule=(), sleep=time.sleep, enabled: bool = True):
        self.schedule = (
            schedule if isinstance(schedule, FaultSchedule) else FaultSchedule(schedule)
        )
        self.sleep = sleep
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counts: dict[tuple, int] = {}
        #: every fault actually injected, in firing order: (site, index, spec)
        self.fired: list[tuple] = []

    def calls(self, site: str, rank: int | None = None) -> int:
        """How many times ``site`` has been hit (by ``rank``, if given)."""

        with self._lock:
            if rank is not None:
                return self._counts.get((site, rank), 0)
            return sum(n for (s, _), n in self._counts.items() if s == site)

    def reset(self) -> None:
        """Zero the call counters so a schedule can be replayed."""

        with self._lock:
            self._counts.clear()
            self.fired.clear()

    def fire(self, site: str, rank: int | None = None, **context) -> FaultSpec | None:
        """Count one call at ``site`` and inject any scheduled fault.

        Returns the injected spec (``delay`` specs after sleeping,
        ``duplicate`` specs for the caller to act on) or ``None``; raises
        :class:`InjectedFault` for ``crash`` specs.
        """

        if not self.enabled:
            return None
        with self._lock:
            key = (site, rank)
            index = self._counts.get(key, 0)
            self._counts[key] = index + 1
            spec = self.schedule.match(site, index, rank)
            if spec is not None:
                self.fired.append((site, index, spec))
        if spec is None:
            return None
        if spec.kind == CRASH:
            raise InjectedFault(
                f"injected crash at {site} call #{index}"
                + (f" (rank {rank})" if rank is not None else "")
            )
        if spec.kind == DELAY and spec.delay_seconds:
            self.sleep(spec.delay_seconds)
        return spec
