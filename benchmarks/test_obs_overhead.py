"""Observability overhead: disabled instrumentation must cost <2% (satellite).

The ``repro.obs`` span sites are permanent — they sit on the serving request
path and inside the training step.  The contract that makes this acceptable
is that the *disabled* path of :func:`repro.obs.span` is near-free: one
module-global read and a shared no-op context manager.

Wall-clock A/B runs of "instrumented binary vs hypothetical uninstrumented
binary" cannot measure a sub-percent effect reliably on a shared CI runner,
so the bound is computed from first principles instead and each factor is
measured directly:

    overhead fraction = (spans per unit of work) x (disabled span() cost)
                        / (seconds per unit of work)

* the disabled per-call cost is timed over a large calibrated loop,
* the span count per request / per train step is *measured* (tracing is
  enabled and the recorded spans counted — no hand-maintained site list),
* the per-unit wall time is measured with tracing disabled, exactly as the
  production configuration runs.

The run also reports the cost of *enabled* tracing and per-kernel profiling
(informational), and writes a Chrome trace of the served workload to
``test-artifacts/obs/`` — the artifact CI uploads when the bench gate fails.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.mosaic import MosaicGeometry, SDNetSubdomainSolver
from repro.obs import (
    disable_memory_accounting,
    disable_tracing,
    enable_memory_accounting,
    enable_tracing,
    span,
)
from repro.obs import memory as obs_memory
from repro.serving import Server, SolveRequest
from repro.training import Trainer, TrainingConfig
from repro.utils import seeded_rng

from _bench_utils import print_table

ARTIFACT_DIR = Path(__file__).parents[1] / "test-artifacts" / "obs"

#: acceptance bound on disabled-instrumentation overhead (ISSUE: <2%)
MAX_DISABLED_OVERHEAD = 0.02


def _write_artifact(name: str, payload: dict) -> None:
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    with open(ARTIFACT_DIR / name, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def _disabled_span_cost(calls: int = 200_000) -> float:
    """Seconds per disabled ``span()`` call, attrs included (the site shape)."""

    disable_tracing()
    start = time.perf_counter()
    for _ in range(calls):
        with span("bench.site", batch=8):
            pass
    return (time.perf_counter() - start) / calls


def _disabled_memory_cost(calls: int = 200_000) -> float:
    """Seconds per disabled ``obs_memory.add/sub`` call (the site shape)."""

    disable_memory_accounting()
    start = time.perf_counter()
    for _ in range(calls):
        obs_memory.add("bench.owner", 1024)
    return (time.perf_counter() - start) / calls


def _geometry():
    return MosaicGeometry(
        subdomain_points=9, subdomain_extent=0.5, steps_x=4, steps_y=4
    )


def _loops(geometry, count: int):
    loops = []
    for seed in range(count):
        rng = seeded_rng(31 + seed)
        w = rng.normal(size=3)
        loops.append(
            geometry.boundary_from_function(
                lambda x, y: w[0] * (x * x - y * y) + w[1] * x * y + w[2] * (x - y)
            )
        )
    return loops


def _serve(model, loops, geometry, tracing: bool):
    """Serve the workload; returns (elapsed seconds, span count)."""

    tracer = enable_tracing() if tracing else None
    if not tracing:
        disable_tracing()
    server = Server(
        solver_factory=lambda geom: SDNetSubdomainSolver(model),
        world_size=2,
        engine=True,
    )
    tic = time.perf_counter()
    for loop in loops:
        server.submit(SolveRequest.create(geometry, loop, tol=1e-6, max_iterations=40))
    server.drain()
    elapsed = time.perf_counter() - tic
    spans = tracer.span_count() if tracer else 0
    return elapsed, spans, tracer


def test_disabled_overhead_under_two_percent(bench_trained_sdnet, bench_dataset):
    model = bench_trained_sdnet
    geometry = _geometry()
    loops = _loops(geometry, 6)
    per_span = _disabled_span_cost()
    per_mem = _disabled_memory_cost()

    # -- serving hot path --------------------------------------------------------
    # Span sites fired per request is measured, not hand-counted: trace one
    # run of the identical workload and count what was recorded.  The memory
    # accountant's event counter measures its site count the same way.
    accountant = enable_memory_accounting()
    _, span_total, tracer = _serve(model, loops, geometry, tracing=True)
    mem_events_per_request = accountant.event_count() / len(loops)
    disable_memory_accounting()
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    tracer.write_chrome_trace(ARTIFACT_DIR / "serving_trace.json")
    disable_tracing()
    spans_per_request = span_total / len(loops)

    serving_seconds, _, _ = _serve(model, loops, geometry, tracing=False)
    seconds_per_request = serving_seconds / len(loops)
    # The disabled paths of the flight recorder, request journal and worker
    # supervisor are each one attribute `is None` check per request — every
    # one strictly cheaper than a disabled span call; bound them by three
    # extra span-costs per request.
    serving_overhead = (
        spans_per_request * per_span
        + mem_events_per_request * per_mem
        + 3 * per_span
    ) / seconds_per_request

    # -- compiled training hot path ----------------------------------------------
    train, val = bench_dataset.split(validation_fraction=0.125, seed=0)
    config = TrainingConfig(
        epochs=1, batch_size=8, data_points_per_domain=32,
        collocation_points_per_domain=16, engine=True, seed=0,
    )
    trainer = Trainer(model, config, train, val)
    batch = next(iter(trainer._iterator(rank=0, world_size=1)))

    tracer = enable_tracing()
    trainer.train_step(batch)
    spans_per_step = tracer.span_count()
    disable_tracing()

    trainer.train_step(batch)  # warm (plans built, caches hot)
    accountant = enable_memory_accounting()
    trainer.train_step(batch)  # steady state: plan buffers already cached
    mem_events_per_step = accountant.event_count()
    disable_memory_accounting()
    repeats = 5
    tic = time.perf_counter()
    for _ in range(repeats):
        trainer.train_step(batch)
    seconds_per_step = (time.perf_counter() - tic) / repeats
    training_overhead = (
        spans_per_step * per_span + mem_events_per_step * per_mem
    ) / seconds_per_step

    payload = {
        "disabled_span_cost_seconds": per_span,
        "disabled_memory_cost_seconds": per_mem,
        "serving": {
            "spans_per_request": spans_per_request,
            "memory_events_per_request": mem_events_per_request,
            "seconds_per_request": seconds_per_request,
            "overhead_fraction": serving_overhead,
        },
        "training": {
            "spans_per_step": spans_per_step,
            "memory_events_per_step": mem_events_per_step,
            "seconds_per_step": seconds_per_step,
            "overhead_fraction": training_overhead,
        },
        "max_allowed_overhead": MAX_DISABLED_OVERHEAD,
    }
    _write_artifact("obs_overhead.json", payload)
    print_table(
        "Observability: disabled-instrumentation overhead",
        ["path", "spans/unit", "mem-events/unit", "unit time", "overhead"],
        [
            ["serving request", f"{spans_per_request:.1f}",
             f"{mem_events_per_request:.1f}",
             f"{seconds_per_request * 1e3:.1f}ms", f"{serving_overhead:.4%}"],
            ["train step (engine)", f"{spans_per_step}",
             f"{mem_events_per_step}",
             f"{seconds_per_step * 1e3:.1f}ms", f"{training_overhead:.4%}"],
            ["span() disabled", "-", "-", f"{per_span * 1e9:.0f}ns", "-"],
            ["memory add() disabled", "-", "-", f"{per_mem * 1e9:.0f}ns", "-"],
        ],
    )

    assert serving_overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled obs instrumentation costs {serving_overhead:.3%} of a "
        f"serving request (must stay under {MAX_DISABLED_OVERHEAD:.0%})"
    )
    assert training_overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled obs instrumentation costs {training_overhead:.3%} of a "
        f"compiled train step (must stay under {MAX_DISABLED_OVERHEAD:.0%})"
    )


def test_profiling_overhead_is_bounded_and_reported(bench_trained_sdnet):
    """Per-kernel profiling is opt-in; report its cost and sanity-bound it."""

    from repro.autodiff import Tensor
    from repro.engine import compile_module

    model = bench_trained_sdnet
    rng = seeded_rng(7)
    g = rng.normal(size=(8, model.boundary_size))
    x = rng.normal(size=(8, 15, 2))

    plain = compile_module(model)
    profiled = compile_module(model, profile=True)
    for compiled in (plain, profiled):  # build plans outside the timed loops
        compiled.predict(g, x)

    def best_of(fn, repeats=30):
        best = float("inf")
        for _ in range(repeats):
            tic = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - tic)
        return best

    plain_s = best_of(lambda: plain.predict(g, x))
    profiled_s = best_of(lambda: profiled.predict(g, x))
    ratio = profiled_s / plain_s
    _write_artifact(
        "profiling_overhead.json",
        {"plain_seconds": plain_s, "profiled_seconds": profiled_s, "ratio": ratio},
    )
    print_table(
        "Observability: per-kernel profiling cost (opt-in path)",
        ["mode", "seconds", "ratio"],
        [
            ["compiled", f"{plain_s * 1e6:.0f}us", "1.00x"],
            ["compiled+profile", f"{profiled_s * 1e6:.0f}us", f"{ratio:.2f}x"],
        ],
    )
    # Opt-in profiling pays one clock pair per kernel step; it must never be
    # catastrophic (that would signal accidental re-tracing or allocation).
    assert ratio < 3.0, f"profiled execution is {ratio:.1f}x compiled"
