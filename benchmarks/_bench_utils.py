"""Small helpers shared by the benchmark modules."""

from __future__ import annotations

__all__ = ["print_table"]


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print a small aligned table (shown with ``pytest -s`` / in bench logs)."""

    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]
    line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
