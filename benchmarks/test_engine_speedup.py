"""Engine speedup: eager vs compiled SDNet inference (tentpole acceptance).

Two measurements back the ``repro.engine`` acceptance criteria:

* ``test_sdnet_forward_speedup`` — the SDNet forward pass at serving batch
  sizes (the per-phase subdomain batches the Mosaic Flow iteration issues).
  The compiled path must be at least 2x faster (geometric mean over the
  serving sizes).  Larger fused batches are reported too: there the erf-GELU
  arithmetic — identical in both paths by the bitwise-parity contract —
  dominates and the dispatch advantage shrinks, which the JSON records.
* ``test_server_engine_parity_and_throughput`` — end-to-end
  ``Server.submit`` with ``engine=`` on/off over the two golden-case
  geometries (rect 2x2 and the L-shape composite): results must be bitwise
  identical, and the throughput of both modes is recorded.

Timing JSON is written to ``test-artifacts/engine/`` and uploaded by the CI
smoke job.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.domains import CompositeDomain, CompositeMosaicGeometry
from repro.engine import compile_module
from repro.mosaic import MosaicGeometry, SDNetSubdomainSolver
from repro.serving import Server, SolveRequest
from repro.utils import seeded_rng

from _bench_utils import print_table

ARTIFACT_DIR = Path(__file__).parents[1] / "test-artifacts" / "engine"

#: per-phase subdomain batches issued while serving the bench geometries
SERVING_BATCH_SIZES = (1, 4, 8)
#: larger fused batches (reported, not asserted: erf math dominates there)
FUSED_BATCH_SIZES = (16, 64)


def _time_call(fn, repeats: int = 30) -> float:
    """Best-of-``repeats`` wall time (robust to scheduler noise)."""

    fn()  # warm-up (plan build / autodiff caches)
    best = float("inf")
    for _ in range(repeats):
        tic = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - tic)
    return best


def _write_artifact(name: str, payload: dict) -> None:
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    with open(ARTIFACT_DIR / name, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def test_sdnet_forward_speedup(bench_trained_sdnet):
    model = bench_trained_sdnet
    compiled = compile_module(model)
    rng = seeded_rng(2026)
    q = 15  # centre-line points of the 9-point subdomain

    rows, timings = [], {}
    for batch in SERVING_BATCH_SIZES + FUSED_BATCH_SIZES:
        g = rng.normal(size=(batch, model.boundary_size))
        x = rng.normal(size=(batch, q, 2))
        eager_s = _time_call(lambda: model.predict(g, x))
        compiled_s = _time_call(lambda: compiled.predict(g, x))
        speedup = eager_s / compiled_s
        timings[batch] = {
            "eager_seconds": eager_s,
            "compiled_seconds": compiled_s,
            "speedup": speedup,
        }
        rows.append(
            [batch, f"{eager_s * 1e6:.0f}us", f"{compiled_s * 1e6:.0f}us",
             f"{speedup:.2f}x"]
        )
    print_table(
        "Engine: eager vs compiled SDNet forward",
        ["batch", "eager", "compiled", "speedup"],
        rows,
    )

    serving_speedups = [timings[b]["speedup"] for b in SERVING_BATCH_SIZES]
    geomean = float(np.exp(np.mean(np.log(serving_speedups))))
    _write_artifact(
        "engine_forward.json",
        {
            "batch_timings": {str(k): v for k, v in timings.items()},
            "serving_batch_sizes": list(SERVING_BATCH_SIZES),
            "serving_geomean_speedup": geomean,
        },
    )
    assert geomean >= 2.0, (
        f"compiled SDNet forward is only {geomean:.2f}x faster than eager "
        f"at serving batch sizes {SERVING_BATCH_SIZES} (need >= 2x)"
    )


def _golden_geometries():
    return {
        "rect_2x2": MosaicGeometry(
            subdomain_points=9, subdomain_extent=0.5, steps_x=4, steps_y=4
        ),
        "l_shape": CompositeMosaicGeometry(
            9, 0.5, CompositeDomain.l_shape(6, 6, 3, 3)
        ),
    }


def _golden_loops(geometry, count: int):
    loops = []
    for seed in range(count):
        rng = seeded_rng(2026 + seed)
        w = rng.normal(size=3)
        loops.append(
            geometry.boundary_from_function(
                lambda x, y: w[0] * (x * x - y * y) + w[1] * x * y
                + w[2] * (x - 2.0 * y)
            )
        )
    return loops


def test_server_engine_parity_and_throughput(bench_trained_sdnet):
    model = bench_trained_sdnet
    requests_per_case = 6

    def factory(geometry):
        return SDNetSubdomainSolver(model)

    report, rows = {}, []
    for name, geometry in _golden_geometries().items():
        loops = _golden_loops(geometry, requests_per_case)
        solutions, elapsed = {}, {}
        for engine_on in (False, True):
            server = Server(solver_factory=factory, world_size=2, engine=engine_on)
            tic = time.perf_counter()
            ids = [
                server.submit(
                    SolveRequest.create(geometry, loop, tol=1e-6, max_iterations=60)
                )
                for loop in loops
            ]
            results = server.drain()
            elapsed[engine_on] = time.perf_counter() - tic
            solutions[engine_on] = [results[i].solution for i in ids]

        for eager, engine in zip(solutions[False], solutions[True]):
            np.testing.assert_array_equal(
                eager, engine,
                err_msg=f"Server.submit with engine= drifted on {name}",
            )
        throughput = {
            mode: requests_per_case / seconds for mode, seconds in elapsed.items()
        }
        report[name] = {
            "requests": requests_per_case,
            "eager_seconds": elapsed[False],
            "engine_seconds": elapsed[True],
            "eager_rps": throughput[False],
            "engine_rps": throughput[True],
            "bitwise_identical": True,
        }
        rows.append(
            [name, f"{throughput[False]:.2f} req/s", f"{throughput[True]:.2f} req/s",
             f"{elapsed[False] / elapsed[True]:.2f}x", "yes"]
        )
    print_table(
        "Engine: Server.submit eager vs engine=",
        ["case", "eager", "engine", "speedup", "bitwise"],
        rows,
    )
    _write_artifact("engine_serving.json", report)
