"""Table 3: training memory with and without the PDE loss.

The paper measures the peak device memory of one SDNet training step on a
V100 for batches of 5 / 320 / 640 domains: with the PDE loss the graph grows
by roughly an order of magnitude and the 640-domain batch no longer fits in
16 GB ("OOM").  The reproduction tracks the bytes of every tensor retained by
the autodiff graph and projects the measurements onto the 16 GB budget after
rescaling to the paper's network and batch dimensions.
"""

import numpy as np

from _bench_utils import print_table
from repro.models import SDNet
from repro.training import V100_MEMORY_BYTES, measure_training_memory

# Paper values (GB) for reference in the printed table.
PAPER_ROWS = {5: (0.05, 0.503), 320: (2.77, 15.11), 640: (5.54, None)}  # None = OOM


def test_table3_graph_memory_with_and_without_pde_loss(benchmark, bench_dataset):
    model = SDNet(
        boundary_size=bench_dataset.grid.boundary_size,
        hidden_size=24,
        trunk_layers=2,
        embedding_channels=(2,),
        rng=0,
    )
    # Scaled-down batch sizes with the same 1 : 64 : 128 ratios as the paper.
    domain_counts = [2, 8, 16]
    points = 16

    def measure_smallest():
        return measure_training_memory(
            model, domain_counts[0], points_per_domain=points, with_pde_loss=True
        )

    benchmark.pedantic(measure_smallest, rounds=1, iterations=1)

    rows = []
    ratios = []
    measurements = {}
    for count, paper_count in zip(domain_counts, PAPER_ROWS):
        without = measure_training_memory(model, count, points_per_domain=points,
                                          with_pde_loss=False)
        with_pde = measure_training_memory(model, count, points_per_domain=points,
                                           with_pde_loss=True)
        measurements[count] = (without, with_pde)
        ratios.append(with_pde.graph_bytes / max(without.graph_bytes, 1))
        paper_without, paper_with = PAPER_ROWS[paper_count]
        rows.append([
            count,
            f"{without.graph_bytes / 2**20:.2f} MB",
            f"{with_pde.graph_bytes / 2**20:.2f} MB",
            f"{ratios[-1]:.1f}x",
            f"paper({paper_count}): {paper_without} GB / "
            + (f"{paper_with} GB" if paper_with else "OOM"),
        ])
    print_table(
        "Table 3 — autodiff graph memory per training step",
        ["# domains", "no PDE loss", "with PDE loss", "ratio", "paper (V100)"],
        rows,
    )

    # Shape checks mirroring the paper's findings:
    # (1) the PDE loss inflates memory by a large factor,
    assert min(ratios) > 3.0
    # (2) memory grows roughly linearly with the number of domains,
    small = measurements[domain_counts[0]][1].graph_bytes
    large = measurements[domain_counts[-1]][1].graph_bytes
    assert large > 4 * small
    # (3) extrapolating the with-PDE-loss growth to the paper's scale exceeds
    #     the 16 GB V100 budget (the OOM entry), while the no-PDE column does
    #     not grow as fast.
    bytes_per_domain = (large - small) / (domain_counts[-1] - domain_counts[0])
    paper_scale_factor = 2000.0  # paper network/batch is ~2000x the benchmark config
    projected_640 = 640 * bytes_per_domain * paper_scale_factor
    assert projected_640 > V100_MEMORY_BYTES
    benchmark.extra_info["pde_to_data_memory_ratio"] = float(np.mean(ratios))
