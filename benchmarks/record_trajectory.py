"""Versioned benchmark trajectory: record and gate performance over time.

The CI engine-smoke job writes timing JSON to ``test-artifacts/engine/``
on every run, but those artifacts are ephemeral.  This script promotes a
curated set of *machine-independent* metrics (speedup ratios, not absolute
seconds) into versioned trajectory files committed to the repo:

    benchmarks/baselines/BENCH_<metric>.json

Each file holds the full history of one metric::

    {
      "metric": "engine_forward_serving_geomean_speedup",
      "unit": "x",
      "higher_is_better": true,
      "tolerance": 0.20,
      "trajectory": [
        {"value": 3.105, "commit": "17161f1", "recorded_at": "...",
         "config": {"source": "engine_forward.json", ...}},
        ...
      ]
    }

Usage::

    # append the current test-artifacts values to every trajectory
    python benchmarks/record_trajectory.py record

    # CI gate: compare fresh artifacts against the committed baseline,
    # exit non-zero when any tracked metric regresses beyond tolerance
    python benchmarks/record_trajectory.py check

Only ratio metrics are tracked so the gate is meaningful across runner
hardware generations.  Ratios measured on the same run still cancel the
machine but not the noise, so end-to-end serving cases carry a looser
tolerance than the best-of-N microbenchmark geomeans.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).parents[1]
ARTIFACT_DIR = REPO_ROOT / "test-artifacts" / "engine"
BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"

#: default relative regression tolerance (ISSUE acceptance: fail on >20%)
DEFAULT_TOLERANCE = 0.20
#: end-to-end serving throughput ratios are noisy (threads, batching
#: timers); a tighter gate would flake without catching real regressions
SERVING_TOLERANCE = 0.35


def _ratio_rect(report: dict) -> float:
    case = report["rect_2x2"]
    return float(case["eager_seconds"]) / float(case["engine_seconds"])


def _ratio_l_shape(report: dict) -> float:
    case = report["l_shape"]
    return float(case["eager_seconds"]) / float(case["engine_seconds"])


@dataclass(frozen=True)
class TrackedMetric:
    """One gated metric: where it comes from and how much it may move."""

    name: str
    artifact: str               # JSON file under test-artifacts/engine/
    extract: callable           # payload dict -> float
    unit: str = "x"
    higher_is_better: bool = True
    tolerance: float = DEFAULT_TOLERANCE

    def read_current(self) -> float | None:
        path = ARTIFACT_DIR / self.artifact
        if not path.exists():
            return None
        with open(path) as handle:
            return float(self.extract(json.load(handle)))

    @property
    def baseline_path(self) -> Path:
        return BASELINE_DIR / f"BENCH_{self.name}.json"


TRACKED_METRICS = [
    TrackedMetric(
        name="engine_forward_serving_geomean_speedup",
        artifact="engine_forward.json",
        extract=lambda payload: payload["serving_geomean_speedup"],
    ),
    TrackedMetric(
        name="taylor_physics_loss_geomean_speedup",
        artifact="taylor_engine.json",
        extract=lambda payload: payload["geomean_speedup"],
    ),
    TrackedMetric(
        name="serving_engine_speedup_rect_2x2",
        artifact="engine_serving.json",
        extract=_ratio_rect,
        tolerance=SERVING_TOLERANCE,
    ),
    TrackedMetric(
        name="serving_engine_speedup_l_shape",
        artifact="engine_serving.json",
        extract=_ratio_l_shape,
        tolerance=SERVING_TOLERANCE,
    ),
    TrackedMetric(
        name="serving_megabatch_speedup",
        artifact="megabatch_serving.json",
        extract=lambda payload: payload["speedup"],
        tolerance=SERVING_TOLERANCE,
    ),
    # Tail metrics are lower-is-better: "regression" means the value grew.
    TrackedMetric(
        name="serving_p99_over_p50",
        artifact="serving_tail.json",
        extract=lambda payload: payload["p99_over_p50"],
        higher_is_better=False,
        # Latency-distribution shape is the noisiest ratio tracked here:
        # the p99 of a 24-request stream moves with a single scheduler
        # hiccup even though best-of-3 trims most of it.
        tolerance=0.75,
    ),
    TrackedMetric(
        name="serving_bytes_per_request",
        artifact="serving_tail.json",
        extract=lambda payload: payload["bytes_per_request"],
        unit="B",
        higher_is_better=False,
        # Array shapes are machine-independent, so this is nearly exact;
        # the headroom is for deliberate small accounting additions.
        tolerance=0.25,
    ),
]


# -- trajectory files ----------------------------------------------------------------


def _git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def load_trajectory(metric: TrackedMetric) -> dict:
    if metric.baseline_path.exists():
        with open(metric.baseline_path) as handle:
            return json.load(handle)
    return {
        "metric": metric.name,
        "unit": metric.unit,
        "higher_is_better": metric.higher_is_better,
        "tolerance": metric.tolerance,
        "trajectory": [],
    }


def save_trajectory(metric: TrackedMetric, data: dict) -> None:
    BASELINE_DIR.mkdir(parents=True, exist_ok=True)
    with open(metric.baseline_path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def baseline_value(data: dict) -> float | None:
    trajectory = data.get("trajectory", [])
    if not trajectory:
        return None
    return float(trajectory[-1]["value"])


# -- commands ------------------------------------------------------------------------


def record(commit: str | None = None, note: str | None = None) -> int:
    """Append the current artifact values to every trajectory file."""

    commit = commit or _git_commit()
    recorded_at = datetime.now(timezone.utc).isoformat(timespec="seconds")
    wrote = 0
    for metric in TRACKED_METRICS:
        value = metric.read_current()
        if value is None:
            print(f"[skip]   {metric.name}: no {metric.artifact} in "
                  f"{ARTIFACT_DIR} (run the engine benchmarks first)")
            continue
        data = load_trajectory(metric)
        entry = {
            "value": value,
            "commit": commit,
            "recorded_at": recorded_at,
            "config": {"source": metric.artifact},
        }
        if note:
            entry["config"]["note"] = note
        data["trajectory"].append(entry)
        save_trajectory(metric, data)
        path = metric.baseline_path
        if path.is_relative_to(REPO_ROOT):
            path = path.relative_to(REPO_ROOT)
        print(f"[record] {metric.name} = {value:.4f}{metric.unit} "
              f"@ {commit} -> {path}")
        wrote += 1
    if wrote == 0:
        print("no artifacts found; nothing recorded", file=sys.stderr)
        return 1
    return 0


def check(tolerance_override: float | None = None) -> int:
    """Gate: fail when any tracked metric regresses beyond its tolerance."""

    failures = []
    checked = 0
    for metric in TRACKED_METRICS:
        current = metric.read_current()
        data = load_trajectory(metric)
        baseline = baseline_value(data)
        tolerance = (
            tolerance_override
            if tolerance_override is not None
            else float(data.get("tolerance", metric.tolerance))
        )
        if baseline is None:
            print(f"[skip] {metric.name}: no committed baseline "
                  f"(run 'record' and commit {metric.baseline_path.name})")
            continue
        if current is None:
            failures.append(
                f"{metric.name}: benchmark artifact {metric.artifact} missing "
                f"from {ARTIFACT_DIR} — did the benchmark run?"
            )
            continue
        checked += 1
        higher_is_better = bool(data.get("higher_is_better", metric.higher_is_better))
        if higher_is_better:
            change = (baseline - current) / baseline      # >0 means regression
        else:
            change = (current - baseline) / baseline
        status = "FAIL" if change > tolerance else "ok"
        direction = "regression" if change > 0 else "improvement"
        print(f"[{status:4s}] {metric.name}: current {current:.4f}{metric.unit} "
              f"vs baseline {baseline:.4f}{metric.unit} "
              f"({abs(change) * 100:.1f}% {direction}, tolerance "
              f"{tolerance * 100:.0f}%)")
        if change > tolerance:
            failures.append(
                f"{metric.name}: {current:.4f}{metric.unit} regressed "
                f"{change * 100:.1f}% from baseline {baseline:.4f}{metric.unit} "
                f"(tolerance {tolerance * 100:.0f}%)"
            )
    if failures:
        print("\nbenchmark trajectory gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if checked == 0:
        print("no metrics checked (no baselines committed yet)", file=sys.stderr)
        return 1
    print(f"\nbenchmark trajectory gate passed ({checked} metrics)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_record = sub.add_parser("record", help="append current values to trajectories")
    p_record.add_argument("--commit", help="override the recorded commit id")
    p_record.add_argument("--note", help="free-form note stored in the entry config")

    p_check = sub.add_parser("check", help="fail on regression vs committed baseline")
    p_check.add_argument(
        "--tolerance",
        type=float,
        help="override every metric's relative tolerance (e.g. 0.20)",
    )

    args = parser.parse_args(argv)
    if args.command == "record":
        return record(commit=args.commit, note=args.note)
    return check(tolerance_override=args.tolerance)


if __name__ == "__main__":
    raise SystemExit(main())
