"""Serving throughput: batched vs. sequential request handling (Fig. 8 style).

Figure 8 shows that Mosaic Flow throughput comes from stacking many
same-shape subdomain solves into single fused solver calls.  This benchmark
lifts that comparison from the subdomain level to the *request* level using
the serving subsystem: a stream of BVP requests is served once with dynamic
batching disabled (batch size 1 — one predictor run per request), once with
full batching, and once with batching plus the LRU solution cache on a
duplicate-heavy stream.  Reported per mode: fused solver runs, subdomains
per fused call, wall time, and requests/second.

All traffic is generated through ``repro.utils`` seeding, so the streams are
identical across runs and modes.
"""

from __future__ import annotations

import time

import numpy as np

from _bench_utils import print_table
from repro.mosaic import SDNetSubdomainSolver
from repro.pde import HARMONIC_FUNCTIONS
from repro.serving import BatchPolicy, Server, SolutionCache, SolveRequest
from repro.utils import spawn_rngs

NUM_REQUESTS = 24
DUPLICATE_SHARE = 0.5
TOL = 1e-5
MAX_ITERATIONS = 60


def _request_stream(geometry, num_requests, duplicate_share, rng):
    """Deterministic request stream of harmonic-mix boundary loops."""

    grid = geometry.global_grid()
    names = sorted(HARMONIC_FUNCTIONS)
    loops = []
    for _ in range(num_requests):
        if loops and rng.random() < duplicate_share:
            loops.append(loops[int(rng.integers(len(loops)))])
        else:
            weights = rng.normal(size=len(names))
            loops.append(
                grid.boundary_from_function(
                    lambda x, y, w=weights: sum(
                        wi * HARMONIC_FUNCTIONS[name](x, y)
                        for wi, name in zip(w, names)
                    )
                )
            )
    return loops


def _serve(geometry, loops, solver_factory, max_batch, cache):
    server = Server(
        solver_factory=solver_factory,
        policy=BatchPolicy(max_batch_size=max_batch, max_wait_seconds=60.0),
        cache=cache,
    )
    tic = time.perf_counter()
    requests = [
        SolveRequest.create(geometry, loop, tol=TOL, max_iterations=MAX_ITERATIONS)
        for loop in loops
    ]
    ids = [server.submit(request) for request in requests]
    results = server.drain()
    elapsed = time.perf_counter() - tic
    assert len(results) == len(loops)
    return server, results, ids, elapsed


def test_serving_batched_vs_sequential_throughput(benchmark, bench_trained_sdnet,
                                                  bench_small_geometry):
    geometry = bench_small_geometry
    stream_rng, _ = spawn_rngs(2024, 2)
    unique_loops = _request_stream(geometry, NUM_REQUESTS, 0.0, stream_rng)

    def solver_factory(geo):
        return SDNetSubdomainSolver(bench_trained_sdnet)

    sequential, seq_results, seq_ids, t_sequential = _serve(
        geometry, unique_loops, solver_factory, max_batch=1, cache=None
    )
    batched, bat_results, bat_ids, t_batched = _serve(
        geometry, unique_loops, solver_factory, max_batch=NUM_REQUESTS, cache=None
    )

    # identical solutions either way: batching only reshapes solver calls
    for seq_id, bat_id in zip(seq_ids, bat_ids):
        np.testing.assert_allclose(
            seq_results[seq_id].solution, bat_results[bat_id].solution,
            rtol=1e-7, atol=1e-9,
        )

    # cache speedup on a duplicate-heavy stream
    duplicate_loops = _request_stream(
        geometry, NUM_REQUESTS, DUPLICATE_SHARE, spawn_rngs(7, 1)[0]
    )
    cached, _, _, t_cached = _serve(
        geometry, duplicate_loops, solver_factory,
        max_batch=NUM_REQUESTS, cache=SolutionCache(capacity=64),
    )
    _, _, _, t_uncached = _serve(
        geometry, duplicate_loops, solver_factory,
        max_batch=NUM_REQUESTS, cache=None,
    )

    def subdomains_per_call(server):
        pool = next(iter(server._pools.values()))
        return pool.subdomains_solved / max(pool.predict_calls, 1)

    rows = [
        ["sequential", sequential.stats.fused_runs,
         f"{subdomains_per_call(sequential):.1f}",
         f"{t_sequential:.2f} s", f"{NUM_REQUESTS / t_sequential:.1f}", "1.0x"],
        ["batched", batched.stats.fused_runs,
         f"{subdomains_per_call(batched):.1f}",
         f"{t_batched:.2f} s", f"{NUM_REQUESTS / t_batched:.1f}",
         f"{t_sequential / t_batched:.1f}x"],
        ["batched+cache*", cached.stats.fused_runs,
         f"{subdomains_per_call(cached):.1f}",
         f"{t_cached:.2f} s", f"{NUM_REQUESTS / t_cached:.1f}",
         f"{t_uncached / t_cached:.1f}x vs uncached"],
    ]
    print_table(
        f"Serving throughput — {NUM_REQUESTS} requests "
        f"(*cache row uses a {DUPLICATE_SHARE:.0%}-duplicate stream)",
        ["mode", "solver runs", "subs/call", "time", "req/s", "speedup"],
        rows,
    )

    # The benchmarked kernel: serving the full unique stream, fully batched.
    benchmark.pedantic(
        lambda: _serve(geometry, unique_loops, solver_factory,
                       max_batch=NUM_REQUESTS, cache=None),
        rounds=1, iterations=1,
    )

    # Shape assertions (CPU timing is noisy; counts are exact):
    # (1) batching collapses one run per request into one run per stream,
    assert sequential.stats.fused_runs == NUM_REQUESTS
    assert batched.stats.fused_runs == 1
    assert subdomains_per_call(batched) > subdomains_per_call(sequential)
    # (2) the fused mode is not meaningfully slower (measured ~5x faster;
    #     the loose bound keeps noisy shared CI runners from flaking),
    assert t_batched < t_sequential * 1.5
    # (3) caching skips a large share of the duplicate stream's solves.
    assert cached.cache.hit_rate + cached.stats.dedup_hits / NUM_REQUESTS > 0.2
    assert cached.stats.solved_requests < NUM_REQUESTS
    benchmark.extra_info["batched_speedup"] = t_sequential / t_batched
    benchmark.extra_info["cache_speedup"] = t_uncached / t_cached
