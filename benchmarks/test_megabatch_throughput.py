"""Cross-request mega-batching: anchor rows fused across geometry groups.

Per-geometry dynamic batching (Fig. 8 style) already stacks same-geometry
requests into one fused run, but a mixed workload still issues one modest
solver call per *group* per lattice round.  Mega-batching concatenates the
anchor rows of every fusion-compatible group (same subdomain grid, same
model) into single perfmodel-sized solver calls, pushing the device batch
size toward the Figure 5 knee even when no single group is busy.

This benchmark serves an identical mixed-geometry stream (three rectangles
and an L-shape sharing one trained SDNet) twice — per-group batching vs
mega-batching — asserts the solutions are bitwise identical, and records the
speedup plus fused-call occupancy.  The machine-independent speedup ratio is
written to ``test-artifacts/engine/megabatch_serving.json`` and gated by
``benchmarks/record_trajectory.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _bench_utils import print_table
from repro.domains import CompositeDomain, CompositeMosaicGeometry
from repro.mosaic import MosaicGeometry, SDNetSubdomainSolver
from repro.pde import HARMONIC_FUNCTIONS
from repro.serving import BatchPolicy, Server, SolveRequest
from repro.utils import seeded_rng

from conftest import BENCH_SUBDOMAIN_EXTENT, BENCH_SUBDOMAIN_POINTS

ARTIFACT_DIR = Path(__file__).parents[1] / "test-artifacts" / "engine"

REQUESTS_PER_GROUP = 2
TOL = 1e-6
MAX_ITERATIONS = 40
MIN_SPEEDUP = 1.3


def _geometries():
    """Fusion-compatible groups: one subdomain shape, four global domains."""

    return (
        MosaicGeometry(BENCH_SUBDOMAIN_POINTS, BENCH_SUBDOMAIN_EXTENT,
                       steps_x=4, steps_y=4),
        MosaicGeometry(BENCH_SUBDOMAIN_POINTS, BENCH_SUBDOMAIN_EXTENT,
                       steps_x=6, steps_y=4),
        MosaicGeometry(BENCH_SUBDOMAIN_POINTS, BENCH_SUBDOMAIN_EXTENT,
                       steps_x=4, steps_y=6),
        CompositeMosaicGeometry(BENCH_SUBDOMAIN_POINTS, BENCH_SUBDOMAIN_EXTENT,
                                CompositeDomain.l_shape(6, 6, 3, 3)),
    )


def _stream(geometries, per_group, seed):
    names = sorted(HARMONIC_FUNCTIONS)
    rng = seeded_rng(seed)
    stream = []
    for geometry in geometries:
        for _ in range(per_group):
            weights = rng.normal(size=len(names))
            stream.append((geometry, geometry.boundary_from_function(
                lambda x, y, w=weights: sum(
                    wi * HARMONIC_FUNCTIONS[name](x, y)
                    for wi, name in zip(w, names)
                )
            )))
    return stream


def _serve(stream, model, mega_batch):
    server = Server(
        solver_factory=lambda geometry: SDNetSubdomainSolver(model),
        # Batches never fill or time out on their own; drain() releases every
        # group at once, which is what lets the mega path fuse across groups.
        policy=BatchPolicy(max_batch_size=64, max_wait_seconds=1e9),
        mega_batch=mega_batch,
    )
    tic = time.perf_counter()
    ids = [
        server.submit(SolveRequest.create(
            geometry, loop, tol=TOL, max_iterations=MAX_ITERATIONS
        ))
        for geometry, loop in stream
    ]
    results = server.drain()
    elapsed = time.perf_counter() - tic
    assert len(results) == len(stream)
    return server, [results[i] for i in ids], elapsed


def test_megabatch_vs_per_group_serving(benchmark, bench_trained_sdnet):
    geometries = _geometries()
    stream = _stream(geometries, REQUESTS_PER_GROUP, seed=2026)

    # Warm both paths once (lazy solver construction, allocator warm-up),
    # then take best-of-3 wall times for the ratio.
    _serve(stream, bench_trained_sdnet, mega_batch=False)
    _serve(stream, bench_trained_sdnet, mega_batch=True)

    t_grouped, t_mega = float("inf"), float("inf")
    grouped_results = mega_results = None
    grouped = mega = None
    for _ in range(3):
        server, results, elapsed = _serve(stream, bench_trained_sdnet, False)
        if elapsed < t_grouped:
            grouped, grouped_results, t_grouped = server, results, elapsed
        server, results, elapsed = _serve(stream, bench_trained_sdnet, True)
        if elapsed < t_mega:
            mega, mega_results, t_mega = server, results, elapsed

    # Mega-batching only concatenates solver-call rows: every request's
    # solution must be bitwise identical to the per-group path.
    for ours, theirs in zip(mega_results, grouped_results):
        assert ours.solution.tobytes() == theirs.solution.tobytes()
        assert ours.iterations == theirs.iterations

    assert mega.stats.mega_runs >= 1
    assert mega.stats.mean_mega_occupancy >= len(geometries)
    speedup = t_grouped / t_mega

    num_requests = len(stream)
    rows = [
        ["per-group", grouped.stats.fused_runs, "-", "-",
         f"{t_grouped:.2f} s", f"{num_requests / t_grouped:.1f}", "1.0x"],
        ["mega-batch", mega.stats.fused_runs, mega.stats.mega_calls,
         f"{mega.stats.mean_mega_rows:.0f}",
         f"{t_mega:.2f} s", f"{num_requests / t_mega:.1f}",
         f"{speedup:.2f}x"],
    ]
    print_table(
        f"Mega-batched serving — {num_requests} requests over "
        f"{len(geometries)} geometry groups (best of 3)",
        ["mode", "batch runs", "solver calls", "rows/call", "time", "req/s",
         "speedup"],
        rows,
    )

    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "speedup": speedup,
        "grouped_seconds": t_grouped,
        "mega_seconds": t_mega,
        "requests": num_requests,
        "groups": len(geometries),
        "mega_calls": mega.stats.mega_calls,
        "mean_mega_rows": mega.stats.mean_mega_rows,
        "mean_mega_occupancy": mega.stats.mean_mega_occupancy,
    }
    with open(ARTIFACT_DIR / "megabatch_serving.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    benchmark.extra_info.update(payload)
    benchmark.pedantic(
        lambda: _serve(stream, bench_trained_sdnet, True),
        rounds=1, iterations=1,
    )

    assert speedup >= MIN_SPEEDUP, (
        f"mega-batching {speedup:.2f}x over per-group batching "
        f"(need >= {MIN_SPEEDUP}x)"
    )
