"""Ablations on the distributed design choices.

1. **Relaxed synchronization** (Section 4.2): how much lattice accuracy is
   lost at a fixed iteration budget when halo updates are exchanged only once
   per iteration, as a function of the processor count.
2. **Rank ordering** (row-wise scan vs. Morton order): the paper uses a
   row-wise scan and mentions space-filling curves as future work; both are
   implemented, this ablation compares their halo traffic and accuracy.
3. **Classical Schwarz vs. Mosaic Flow work per iteration**: the MFP only
   evaluates subdomain interfaces, classical ASM recomputes every subdomain
   point.
"""

import numpy as np

from _bench_utils import print_table
from repro.distributed import ProcessGrid
from repro.fd import Grid2D, solve_laplace, solve_laplace_from_loop
from repro.mosaic import DistributedMosaicFlowPredictor, FDSubdomainSolver, MosaicGeometry
from repro.mosaic.distributed import HaloExchangePlan, RankLayout
from repro.pde import HARMONIC_FUNCTIONS
from repro.schwarz import AlternatingSchwarz, uniform_decomposition

ITERATIONS = 28


def _problem(geometry):
    grid = geometry.global_grid()
    loop = grid.boundary_from_function(HARMONIC_FUNCTIONS["exp_sine"])
    reference = solve_laplace_from_loop(grid, loop, method="direct")
    return grid, loop, reference


def test_ablation_relaxed_synchronization_staleness(benchmark, bench_geometry):
    geometry = bench_geometry
    grid, loop, reference = _problem(geometry)

    def solver_factory():
        return FDSubdomainSolver(geometry.subdomain_grid(), method="direct")

    def run(world_size):
        predictor = DistributedMosaicFlowPredictor(geometry, solver_factory)
        results = predictor.run(world_size, loop, max_iterations=ITERATIONS, tol=0.0,
                                reference=reference)
        return results[0].mae_history[-1][1]

    mae_1 = benchmark.pedantic(lambda: run(1), rounds=1, iterations=1)
    maes = {1: mae_1}
    for world_size in (2, 4):
        maes[world_size] = run(world_size)

    print_table(
        f"Ablation — lattice MAE after {ITERATIONS} iterations vs processor count "
        "(staleness of relaxed synchronization)",
        ["GPUs", "lattice MAE"],
        [[k, f"{v:.3e}"] for k, v in sorted(maes.items())],
    )
    # Staleness can only hurt (or match) accuracy at a fixed budget, and the
    # degradation stays bounded (the paper reports <10 % extra iterations).
    assert maes[2] >= maes[1] * 0.99
    assert maes[4] >= maes[1] * 0.99
    assert maes[4] < maes[1] * 10.0


def test_ablation_row_scan_vs_morton_ordering(benchmark, bench_geometry):
    geometry = bench_geometry
    grid, loop, reference = _problem(geometry)
    world_size = 4

    def solver_factory():
        return FDSubdomainSolver(geometry.subdomain_grid(), method="direct")

    def run(ordering):
        predictor = DistributedMosaicFlowPredictor(geometry, solver_factory, ordering=ordering)
        results = predictor.run(world_size, loop, max_iterations=ITERATIONS, tol=0.0,
                                reference=reference)
        mae = results[0].mae_history[-1][1]
        halo = max(r.halo_bytes_per_iteration for r in results)
        messages = max(r.comm_stats["sends"] for r in results)
        return mae, halo, messages

    row = benchmark.pedantic(lambda: run("row"), rounds=1, iterations=1)
    morton = run("morton")
    print_table(
        "Ablation — processor mapping: row-wise scan vs Morton order (4 ranks)",
        ["ordering", "lattice MAE", "halo bytes/iter", "messages/iter (total)"],
        [["row", f"{row[0]:.3e}", row[1], row[2]],
         ["morton", f"{morton[0]:.3e}", morton[1], morton[2]]],
    )
    # Both orderings must converge to comparable accuracy; traffic may differ.
    assert morton[0] < row[0] * 3 and row[0] < morton[0] * 3


def test_ablation_mosaic_interface_work_vs_classical_schwarz(benchmark):
    """Work per iteration: interface points (MFP) vs full subdomains (ASM)."""

    geometry = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=8, steps_y=8)
    grid = geometry.global_grid()
    exact = grid.field_from_function(HARMONIC_FUNCTIONS["exp_sine"])
    boundary_field = np.where(grid.boundary_mask(), exact, 0.0)
    reference = solve_laplace(grid, boundary_field, method="direct")

    windows = uniform_decomposition(grid, (2, 2), overlap=4)
    schwarz = AlternatingSchwarz(grid, windows)

    def run_schwarz():
        return schwarz.run(boundary_field, max_iterations=30, tol=1e-9, reference=reference)

    schwarz_result = benchmark.pedantic(run_schwarz, rounds=1, iterations=1)

    points_per_phase = len(geometry.center_line_local_indices()[0]) * len(
        geometry.anchors_for_phase(0)
    )
    print_table(
        "Ablation — per-iteration work: Mosaic Flow interfaces vs classical Schwarz",
        ["method", "points recomputed / iteration", "iterations to tol", "final error"],
        [
            ["Mosaic Flow (interfaces only)", points_per_phase, "-", "-"],
            [
                "Classical alternating Schwarz",
                schwarz.points_solved_per_iteration,
                schwarz_result.iterations,
                f"{schwarz_result.error_history[-1]:.2e}" if schwarz_result.error_history else "-",
            ],
        ],
    )
    assert schwarz.points_solved_per_iteration > 5 * points_per_phase
