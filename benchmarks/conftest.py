"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see EXPERIMENTS.md for the index).  The problem sizes are scaled down so the
full harness runs on a single CPU in minutes; the *shape* of each result
(who wins, by what factor, how quantities trend with scale) is what is being
reproduced, not the absolute wall-clock numbers of the authors' GPU cluster.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.data import generate_dataset                      # noqa: E402
from repro.fd import solve_laplace_from_loop                 # noqa: E402
from repro.models import SDNet                               # noqa: E402
from repro.mosaic import FDSubdomainSolver, MosaicGeometry   # noqa: E402
from repro.training import Trainer, TrainingConfig           # noqa: E402

#: subdomain used throughout the benchmarks (9 grid points per side = a
#: scaled-down version of the paper's 32x32-cell training subdomain)
BENCH_SUBDOMAIN_POINTS = 9
BENCH_SUBDOMAIN_EXTENT = 0.5


@pytest.fixture(scope="session")
def bench_dataset():
    """Training dataset on the small subdomain (GP boundaries + FD solutions)."""

    return generate_dataset(
        num_samples=48,
        resolution=BENCH_SUBDOMAIN_POINTS,
        extent=(BENCH_SUBDOMAIN_EXTENT, BENCH_SUBDOMAIN_EXTENT),
        seed=0,
    )


@pytest.fixture(scope="session")
def bench_trained_sdnet(bench_dataset):
    """An SDNet trained briefly on the benchmark dataset (session-scoped)."""

    train, val = bench_dataset.split(validation_fraction=0.125, seed=0)
    model = SDNet(
        boundary_size=bench_dataset.grid.boundary_size,
        hidden_size=24,
        trunk_layers=2,
        embedding_channels=(2,),
        rng=0,
    )
    config = TrainingConfig(
        epochs=4,
        batch_size=8,
        data_points_per_domain=32,
        collocation_points_per_domain=16,
        max_lr=3e-3,
        seed=0,
    )
    Trainer(model, config, train, val).fit()
    return model


@pytest.fixture(scope="session")
def bench_geometry():
    """A 2x2 spatial domain (4x the training subdomain per side /16 subdomains)."""

    return MosaicGeometry(
        subdomain_points=BENCH_SUBDOMAIN_POINTS,
        subdomain_extent=BENCH_SUBDOMAIN_EXTENT,
        steps_x=8,
        steps_y=8,
    )


@pytest.fixture(scope="session")
def bench_small_geometry():
    """A 1x1 spatial domain (2x the training subdomain per side / 9 subdomains)."""

    return MosaicGeometry(
        subdomain_points=BENCH_SUBDOMAIN_POINTS,
        subdomain_extent=BENCH_SUBDOMAIN_EXTENT,
        steps_x=4,
        steps_y=4,
    )


@pytest.fixture(scope="session")
def bench_fd_solver_factory():
    def factory(geometry):
        return lambda: FDSubdomainSolver(geometry.subdomain_grid(), method="direct")

    return factory


@pytest.fixture(scope="session")
def gp_boundary_problem(bench_small_geometry):
    """A GP boundary condition and its reference solution on the 1x1 domain."""

    from repro.data import GaussianProcessSampler

    grid = bench_small_geometry.global_grid()
    sampler = GaussianProcessSampler(
        boundary_size=grid.boundary_size, perimeter=sum(grid.extent) * 2, seed=42
    )
    loop = sampler.sample_one()
    canonical = grid.extract_boundary(grid.insert_boundary(loop))
    reference = solve_laplace_from_loop(grid, canonical, method="direct")
    return canonical, reference
