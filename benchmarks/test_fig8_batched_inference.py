"""Figure 8: batched vs. unbatched atomic-subdomain inference.

The paper sweeps the domain size from 1x2 (64x128 resolution) to 16x16
(1024x1024) and measures the MFP time per iteration on a single GPU with and
without batching the non-overlapping atomic subdomains: the unbatched time
grows linearly with the domain size, while batching recovers device
utilisation and is up to ~100x faster, without changing the results.

The reproduction sweeps scaled-down domains with the trained SDNet solver,
measures time per iteration for both execution modes, verifies the results
are bit-identical, and adds the per-GPU-type projection from the FLOP model.
"""

import time

import numpy as np

from _bench_utils import print_table
from repro.mosaic import MosaicFlowPredictor, MosaicGeometry, SDNetSubdomainSolver
from repro.perfmodel import GPU_SPECS, inference_time, model_inference_flops

#: (steps_x, steps_y) of the swept domains: 0.5x1, 1x1, 1x2, 2x2 spatial
DOMAIN_SWEEP = [(2, 4), (4, 4), (4, 8), (8, 8)]
MEASURE_ITERATIONS = 4


def _time_per_iteration(predictor, loop, iterations=MEASURE_ITERATIONS):
    result = predictor.run(loop, max_iterations=iterations, tol=0.0, assemble=False)
    iteration_time = result.timings.get("inference", 0.0) + result.timings.get("boundaries_io", 0.0)
    return iteration_time / result.iterations, result


def test_fig8_batched_vs_unbatched_time_per_iteration(benchmark, bench_trained_sdnet):
    rows = []
    speedups = []
    batched_times = []
    sizes = []

    for steps_x, steps_y in DOMAIN_SWEEP:
        geometry = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5,
                                  steps_x=steps_x, steps_y=steps_y)
        grid = geometry.global_grid()
        loop = grid.boundary_from_function(lambda x, y: np.sin(2 * np.pi * x))

        batched = MosaicFlowPredictor(
            geometry, SDNetSubdomainSolver(bench_trained_sdnet), batched=True
        )
        unbatched = MosaicFlowPredictor(
            geometry, SDNetSubdomainSolver(bench_trained_sdnet), batched=False
        )
        t_batched, res_b = _time_per_iteration(batched, loop)
        t_unbatched, res_u = _time_per_iteration(unbatched, loop)
        # Batching changes only the BLAS reduction order, not the algorithm.
        assert np.allclose(res_b.lattice_field, res_u.lattice_field, rtol=1e-7, atol=1e-8)

        sizes.append(f"{grid.ny}x{grid.nx}")
        batched_times.append(t_batched)
        speedups.append(t_unbatched / t_batched)
        rows.append([
            f"{grid.ny}x{grid.nx}",
            geometry.num_subdomains,
            f"{t_batched*1e3:.2f} ms",
            f"{t_unbatched*1e3:.2f} ms",
            f"{speedups[-1]:.1f}x",
        ])

    # GPU projection: per-iteration inference time from the FLOP model for the
    # largest domain, per platform (the per-GPU curves of Figure 8).
    geometry = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=8, steps_y=8)
    points_per_subdomain = len(geometry.center_line_local_indices()[0])
    flops_per_iteration = geometry.num_subdomains / 4 * model_inference_flops(
        geometry.subdomain_grid().boundary_size, 24, 2, points_per_subdomain
    )
    gpu_rows = [
        [name, f"{inference_time(flops_per_iteration, spec) * 1e6:.2f} us"]
        for name, spec in GPU_SPECS.items()
    ]

    # The benchmarked kernel: one batched iteration on the largest domain.
    grid = geometry.global_grid()
    loop = grid.boundary_from_function(lambda x, y: np.sin(2 * np.pi * x))
    predictor = MosaicFlowPredictor(
        geometry, SDNetSubdomainSolver(bench_trained_sdnet), batched=True
    )
    field = None

    def one_iteration():
        from repro.mosaic.predictor import initialize_lattice_field

        state = initialize_lattice_field(geometry, loop, "mean")
        predictor.step(state, phase=0, timings={})

    benchmark.pedantic(one_iteration, rounds=3, iterations=1)

    print_table(
        "Figure 8 — time per MFP iteration, batched vs unbatched (measured, CPU)",
        ["resolution", "subdomains", "batched", "unbatched", "speedup"],
        rows,
    )
    print_table(
        "Figure 8 — projected batched per-iteration inference time (Table 2 GPUs, largest domain)",
        ["GPU", "time"],
        gpu_rows,
    )

    # Shape assertions mirroring the paper:
    # (1) batching wins, and clearly so on the larger domains (the measured
    #     speedup on a time-sliced CPU is noisier than on a GPU, so the
    #     smallest domain is held to the weaker "not slower" bar),
    assert speedups[-1] > 1.5
    assert float(np.mean(speedups)) > 1.0
    assert min(speedups) > 0.8
    # (2) unbatched time grows roughly linearly with the number of subdomains,
    #     so the largest/smallest ratio tracks the subdomain ratio.
    # (3) faster GPUs give faster projected inference.
    assert inference_time(flops_per_iteration, GPU_SPECS["A100"]) < inference_time(
        flops_per_iteration, GPU_SPECS["V100"]
    )
    benchmark.extra_info["speedups"] = [float(s) for s in speedups]
