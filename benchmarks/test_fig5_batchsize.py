"""Figure 5: SDNet inference / training-step performance vs. batch size.

The paper compares the optimized (split-layer) network against the standard
input-concat baseline while sweeping the number of points per batch: the
optimized model is faster at every batch size and, because it does not
replicate the boundary for every point, it keeps fitting in memory long after
the baseline runs out (baseline OOMs at ~10k points; optimized scales to 50k).

The reproduction measures wall-clock time per forward pass (Figure 5a) and
per training step with the physics loss (Figure 5b) for both architectures,
and uses the analytical input-memory model to locate the OOM point on the
paper's 16 GB V100.
"""

import time

import numpy as np

from _bench_utils import print_table
from repro.autodiff import Tensor, grad, no_grad, ops
from repro.models import ConcatSolver, SDNet
from repro.pde.losses import PinnLoss

BOUNDARY_SIZE = 32          # benchmark-scale boundary (paper: 128)
HIDDEN = 24
TRUNK_LAYERS = 2
INFERENCE_BATCHES = [256, 1024, 4096, 16384]
TRAINING_BATCHES = [64, 256, 1024]

#: paper-scale parameters used for the analytic OOM projection
PAPER_BOUNDARY = 4 * 32
PAPER_HIDDEN = 256


def _models():
    split = SDNet(boundary_size=BOUNDARY_SIZE, hidden_size=HIDDEN, trunk_layers=TRUNK_LAYERS,
                  embedding_channels=(2,), rng=0)
    concat = ConcatSolver(boundary_size=BOUNDARY_SIZE, hidden_size=HIDDEN,
                          trunk_layers=TRUNK_LAYERS, rng=0)
    return split, concat


def _time_inference(model, g, x, repeats=3):
    with no_grad():
        model(g, x)  # warm-up
        tic = time.perf_counter()
        for _ in range(repeats):
            model(g, x)
    return (time.perf_counter() - tic) / repeats


def _time_training_step(model, g, x, u, x_coll, repeats=2):
    loss_fn = PinnLoss(laplacian_method="autograd" if isinstance(model, ConcatSolver) else "taylor")
    params = model.parameters()

    def step():
        values = loss_fn(model, g, x, u, x_coll)
        grad(values.total, params)

    step()  # warm-up
    tic = time.perf_counter()
    for _ in range(repeats):
        step()
    return (time.perf_counter() - tic) / repeats


def test_fig5a_inference_throughput_vs_batch_size(benchmark):
    split, concat = _models()
    rng = np.random.default_rng(0)
    g = Tensor(rng.normal(size=(1, BOUNDARY_SIZE)))

    rows = []
    series = {"split": [], "concat": []}
    for q in INFERENCE_BATCHES:
        x = Tensor(rng.uniform(size=(1, q, 2)) * 0.5)
        t_split = _time_inference(split, g, x)
        t_concat = _time_inference(concat, g, x)
        series["split"].append(t_split)
        series["concat"].append(t_concat)
        rows.append([q, f"{t_split*1e3:.2f} ms", f"{t_concat*1e3:.2f} ms",
                     f"{t_concat / t_split:.2f}x"])

    # Register the largest-batch optimized inference as the benchmark kernel.
    x_large = Tensor(rng.uniform(size=(1, INFERENCE_BATCHES[-1], 2)) * 0.5)
    benchmark.pedantic(lambda: split.predict(g.data, x_large.data), rounds=3, iterations=1)

    # Analytic memory model (Section 3.2): input/first-layer words per batch
    # at paper scale.  The graph memory of a full training step is a large
    # multiple of this (Table 3), so the relevant quantity is the *ratio*
    # between the two architectures, which is what moves the OOM point from
    # 10k points (baseline) past 50k points (optimized).
    oom_rows = []
    for q in (10_000, 50_000):
        concat_words = q * (PAPER_BOUNDARY + 2)
        split_words = PAPER_BOUNDARY + 2 * q
        oom_rows.append([
            q,
            f"{concat_words * 8 / 2**20:.1f} MB",
            f"{split_words * 8 / 2**20:.2f} MB",
            f"{concat_words / split_words:.0f}x",
        ])

    print_table("Figure 5a — inference time per batch (optimized vs baseline)",
                ["points", "split-layer", "input-concat", "speedup"], rows)
    print_table("Figure 5a — input memory per batch at paper scale (eq. 5 vs eq. 8)",
                ["points", "input-concat", "split-layer", "ratio"], oom_rows)

    # Shape assertions: the optimized model is faster at large batch sizes and
    # the advantage grows with the batch size (Figure 5a's separation).
    assert series["concat"][-1] > series["split"][-1]
    speedups = np.array(series["concat"]) / np.array(series["split"])
    assert speedups[-1] > speedups[0] * 0.8
    # The paper's memory story: the baseline's input at its 10k-point OOM
    # limit is already larger than the optimized input at 50k points, so the
    # same device budget that OOMs the baseline at 10k admits 50k for the
    # optimized model.
    assert 10_000 * (PAPER_BOUNDARY + 2) > (PAPER_BOUNDARY + 2 * 50_000)
    benchmark.extra_info["speedup_at_largest_batch"] = float(speedups[-1])


def test_fig5b_training_step_time_vs_batch_size(benchmark):
    split, concat = _models()
    rng = np.random.default_rng(1)
    g = Tensor(rng.normal(size=(1, BOUNDARY_SIZE)))

    rows = []
    series = {"split": [], "concat": []}
    for q in TRAINING_BATCHES:
        x = Tensor(rng.uniform(size=(1, q, 2)) * 0.5)
        u = Tensor(rng.normal(size=(1, q)))
        x_coll = Tensor(rng.uniform(size=(1, q, 2)) * 0.5)
        t_split = _time_training_step(split, g, x, u, x_coll)
        t_concat = _time_training_step(concat, g, x, u, x_coll)
        series["split"].append(t_split)
        series["concat"].append(t_concat)
        rows.append([q, f"{t_split*1e3:.1f} ms", f"{t_concat*1e3:.1f} ms",
                     f"{t_concat / t_split:.2f}x"])

    x_bench = Tensor(rng.uniform(size=(1, TRAINING_BATCHES[0], 2)) * 0.5)
    u_bench = Tensor(rng.normal(size=(1, TRAINING_BATCHES[0])))
    benchmark.pedantic(
        lambda: _time_training_step(split, g, x_bench, u_bench, x_bench, repeats=1),
        rounds=2, iterations=1,
    )

    print_table("Figure 5b — training step time with PINN loss (optimized vs baseline)",
                ["points", "split-layer", "input-concat", "speedup"], rows)

    # The optimized architecture trains faster at the largest batch size.
    assert series["concat"][-1] > series["split"][-1]
    benchmark.extra_info["training_speedup_at_largest_batch"] = float(
        series["concat"][-1] / series["split"][-1]
    )
