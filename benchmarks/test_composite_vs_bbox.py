"""Composite-domain solve cost vs. the bounding-box alternative.

Without ``repro.domains`` the only way to handle an L-shaped target would be
to solve its full bounding box and discard the notch.  This benchmark
quantifies what the composite geometry saves: anchors (and with them
subdomain solves per iteration and per assembly) scale with the domain
*area*, not the bounding-box area, while accuracy against the masked FD
reference stays in the same class as the rectangular Fig.-1 benchmark.
"""

import numpy as np

from _bench_utils import print_table
from repro.domains import (
    CompositeDomain,
    CompositeMosaicGeometry,
    composite_reference_solution,
)
from repro.mosaic import FDSubdomainSolver, MosaicFlowPredictor, MosaicGeometry

MAE_TOLERANCE = 1e-6  # same class as the rectangular exact-solver benchmark


def _harmonic(x, y):
    return x * x - y * y + 0.5 * x * y


def _solve(geometry, loop, solver):
    predictor = MosaicFlowPredictor(geometry, solver, batched=True)
    return predictor.run(loop, max_iterations=400, tol=1e-8)


def test_composite_vs_bounding_box(benchmark):
    """L-shape (3/4 of the box): composite does ~3/4 of the subdomain work."""

    subdomain_points = 9
    composite = CompositeMosaicGeometry(
        subdomain_points, 0.5, CompositeDomain.l_shape(8, 8, 4, 4)
    )
    box = MosaicGeometry(subdomain_points=subdomain_points, subdomain_extent=0.5,
                         steps_x=8, steps_y=8)

    composite_loop = composite.boundary_from_function(_harmonic)
    box_loop = box.global_grid().boundary_from_function(_harmonic)

    composite_solver = FDSubdomainSolver(composite.subdomain_grid(), method="direct")
    box_solver = FDSubdomainSolver(box.subdomain_grid(), method="direct")

    composite_result = benchmark.pedantic(
        lambda: _solve(composite, composite_loop, composite_solver),
        rounds=1, iterations=1,
    )
    box_result = _solve(box, box_loop, box_solver)

    reference = composite_reference_solution(composite, composite_loop)
    valid = composite.valid_mask()
    mae = float(np.mean(np.abs(composite_result.solution[valid] - reference[valid])))

    anchor_ratio = composite.num_subdomains / box.num_subdomains
    solve_ratio = composite_solver.inference_calls / box_solver.inference_calls

    print_table(
        "Composite L-shape vs bounding-box solve",
        ["quantity", "composite", "bounding box"],
        [
            ["anchors", composite.num_subdomains, box.num_subdomains],
            ["iterations", composite_result.iterations, box_result.iterations],
            ["subdomain solves", composite_solver.inference_calls,
             box_solver.inference_calls],
            ["anchor ratio", f"{anchor_ratio:.3f}", "1.000"],
            ["solve ratio", f"{solve_ratio:.3f}", "1.000"],
            ["MAE vs masked reference", f"{mae:.3e}", "-"],
        ],
    )
    benchmark.extra_info["mae"] = mae
    benchmark.extra_info["anchor_ratio"] = anchor_ratio
    benchmark.extra_info["solve_ratio"] = solve_ratio

    assert composite_result.converged
    assert mae < MAE_TOLERANCE
    # the L covers 3/4 of the box area; the anchor lattice saves accordingly
    # (not exactly 3/4 because anchors near the re-entrant corner drop out)
    assert composite.num_subdomains < 0.8 * box.num_subdomains
    # fewer anchors -> strictly less subdomain work end to end
    assert composite_solver.points_evaluated < box_solver.points_evaluated


def test_composite_per_iteration_subdomain_work():
    """Per-phase fused batch sizes shrink with the composite anchor count."""

    composite = CompositeMosaicGeometry(9, 0.5, CompositeDomain.plus_shape(2, 4))
    box = composite.box
    composite_phase = [len(composite.anchors_for_phase(p)) for p in range(4)]
    box_phase = [len(box.anchors_for_phase(p)) for p in range(4)]

    print_table(
        "Subdomains per iteration phase (plus-shape vs bounding box)",
        ["phase", "composite", "bounding box"],
        [[p, composite_phase[p], box_phase[p]] for p in range(4)],
    )
    assert sum(composite_phase) == composite.num_subdomains
    assert sum(box_phase) == box.num_subdomains
    assert all(c <= b for c, b in zip(composite_phase, box_phase))
    assert sum(composite_phase) < sum(box_phase)
