"""Figure 1: distributed Mosaic Flow prediction vs. the numerical reference.

The paper shows the pyAMG solution of the Laplace equation on a 2x2 spatial
domain (128x128 resolution) with a Gaussian-process boundary condition, the
distributed Mosaic Flow prediction on the same domain, and their absolute
difference (everywhere below ~0.04-0.05).

This benchmark reproduces the comparison on the scaled-down benchmark
geometry with (a) the exact finite-difference subdomain solver — isolating
the Mosaic Flow iteration itself, which should match the reference closely —
and (b) the briefly-trained SDNet subdomain solver, whose error reflects the
short training budget but must stay bounded and finite.
"""

import numpy as np

from _bench_utils import print_table
from repro.fd import solve_laplace_from_loop
from repro.mosaic import MosaicFlowPredictor, SDNetSubdomainSolver

PAPER_MAX_ABS_DIFFERENCE = 0.05  # colourbar limit of Figure 1's difference plot


def test_fig1_mfp_vs_reference_fd_solver(benchmark, bench_geometry, bench_fd_solver_factory):
    """Exact subdomain solver: the MFP iteration converges to the reference."""

    geometry = bench_geometry
    grid = geometry.global_grid()
    # Same style of boundary condition as Figure 1 (a GP sample).
    from repro.data import GaussianProcessSampler

    sampler = GaussianProcessSampler(
        boundary_size=grid.boundary_size, perimeter=2 * sum(grid.extent), seed=11
    )
    loop = grid.extract_boundary(grid.insert_boundary(sampler.sample_one()))
    reference = solve_laplace_from_loop(grid, loop, method="direct")

    predictor = MosaicFlowPredictor(geometry, bench_fd_solver_factory(geometry)(), batched=True)

    def run():
        return predictor.run(loop, max_iterations=250, tol=1e-7, reference=reference)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    difference = np.abs(result.solution - reference)

    print_table(
        "Figure 1 — Mosaic Flow vs reference (exact subdomain solver)",
        ["quantity", "value"],
        [
            ["domain resolution", f"{grid.ny} x {grid.nx}"],
            ["atomic subdomains", geometry.num_subdomains],
            ["iterations", result.iterations],
            ["MAE", f"{difference.mean():.3e}"],
            ["max abs difference", f"{difference.max():.3e}"],
            ["paper max abs difference", PAPER_MAX_ABS_DIFFERENCE],
        ],
    )
    benchmark.extra_info["mae"] = float(difference.mean())
    benchmark.extra_info["max_abs_difference"] = float(difference.max())
    assert difference.max() < PAPER_MAX_ABS_DIFFERENCE


def test_fig1_mfp_vs_reference_sdnet_solver(benchmark, bench_small_geometry, bench_trained_sdnet,
                                            gp_boundary_problem):
    """Neural subdomain solver: bounded error with a briefly-trained SDNet."""

    geometry = bench_small_geometry
    loop, reference = gp_boundary_problem
    predictor = MosaicFlowPredictor(
        geometry, SDNetSubdomainSolver(bench_trained_sdnet), batched=True
    )

    def run():
        return predictor.run(loop, max_iterations=60, tol=1e-5, reference=reference)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    difference = np.abs(result.solution - reference)
    scale = np.abs(reference).max()

    print_table(
        "Figure 1 — Mosaic Flow vs reference (trained SDNet subdomain solver)",
        ["quantity", "value"],
        [
            ["iterations", result.iterations],
            ["MAE", f"{difference.mean():.3e}"],
            ["max abs difference", f"{difference.max():.3e}"],
            ["reference field amplitude", f"{scale:.3e}"],
            ["relative MAE", f"{difference.mean() / scale:.3e}"],
        ],
    )
    benchmark.extra_info["mae"] = float(difference.mean())
    assert np.all(np.isfinite(result.solution))
    # A briefly-trained SDNet is far less accurate than pyAMG-fidelity
    # training, but the prediction must stay in the right range.
    assert difference.mean() < scale
