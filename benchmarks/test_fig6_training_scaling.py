"""Figure 6: data-parallel SDNet training across GPU counts.

(a) validation MSE vs. epoch for 1..32 GPUs — all runs converge to similar
    final MSE (within ~1.5e-6 of the single-GPU model in the paper);
(b) validation MSE vs. runtime — more GPUs reach a given MSE sooner;
(c) time to reach the target MSE vs. GPU count — ~12x faster at 32 GPUs.

The reproduction runs Algorithm 1 on 1 / 2 / 4 simulated ranks (threads), so
measured wall-clock does not speed up on one CPU core; instead the per-epoch
*runtime model* combines the measured single-rank epoch time with the ideal
compute scaling and the allreduce cost from the alpha-beta model, which is
how the (b)/(c) curves are regenerated.  The convergence-per-epoch behaviour
(a) is measured directly.
"""

import numpy as np

from _bench_utils import print_table
from repro.distributed import INTERCONNECTS
from repro.models import SDNet
from repro.training import DataParallelTrainer, TrainingConfig

WORLD_SIZES = [1, 2, 4]
EPOCHS = 3


def _model_factory(dataset):
    def factory():
        return SDNet(
            boundary_size=dataset.grid.boundary_size,
            hidden_size=16,
            trunk_layers=2,
            embedding_channels=(2,),
            rng=0,
        )

    return factory


def test_fig6_ddp_convergence_and_time_to_target(benchmark, bench_dataset):
    train, val = bench_dataset.split(validation_fraction=0.125, seed=0)
    config = TrainingConfig(
        epochs=EPOCHS, batch_size=8, data_points_per_domain=24,
        collocation_points_per_domain=12, max_lr=2e-3, seed=0, optimizer="lamb",
    )
    factory = _model_factory(bench_dataset)

    histories = {}
    epoch_times = {}

    def run_single():
        trainer = DataParallelTrainer(factory, config, train, val, apply_scaling_rules=True)
        return trainer.run(1)[0]

    single_result = benchmark.pedantic(run_single, rounds=1, iterations=1)
    histories[1] = single_result.history
    epoch_times[1] = float(np.mean(single_result.history.epoch_times))

    for world_size in WORLD_SIZES[1:]:
        trainer = DataParallelTrainer(factory, config, train, val, apply_scaling_rules=True)
        result = trainer.run(world_size)[0]
        histories[world_size] = result.history
        epoch_times[world_size] = float(np.mean(result.history.epoch_times))

    # Runtime model: per-epoch time = single-rank epoch time / P + allreduce cost.
    model_params = factory().num_parameters()
    network = INTERCONNECTS["nvlink-200g"]  # A30 platform of Figure 6
    batches_per_epoch = len(train) // config.batch_size
    modeled_epoch_time = {}
    for world_size in WORLD_SIZES:
        allreduce = batches_per_epoch * network.ring_allreduce(model_params * 8, world_size)
        modeled_epoch_time[world_size] = epoch_times[1] / world_size + allreduce

    # Target MSE: what the largest configuration reaches at the final epoch
    # (the analogue of the paper's 2.5e-6 target, which corresponds to the
    # 32-GPU final MSE).
    target = max(histories[w].validation_mse[-1] for w in WORLD_SIZES) * 1.05

    fig6a_rows = []
    for world_size in WORLD_SIZES:
        fig6a_rows.append(
            [world_size]
            + [f"{v:.4f}" for v in histories[world_size].validation_mse]
        )
    print_table("Figure 6a — validation MSE per epoch vs GPU count",
                ["GPUs"] + [f"epoch {e+1}" for e in range(EPOCHS)], fig6a_rows)

    fig6c_rows = []
    times_to_target = {}
    for world_size in WORLD_SIZES:
        epochs_needed = histories[world_size].epochs_to_reach(target) or EPOCHS
        times_to_target[world_size] = epochs_needed * modeled_epoch_time[world_size]
        fig6c_rows.append([
            world_size,
            epochs_needed,
            f"{modeled_epoch_time[world_size]:.2f} s",
            f"{times_to_target[world_size]:.2f} s",
            f"{times_to_target[1] / times_to_target[world_size]:.2f}x",
        ])
    print_table(
        "Figure 6b/6c — modeled runtime to target validation MSE "
        f"(target = {target:.4f}, paper: 12x speedup at 32 GPUs)",
        ["GPUs", "epochs to target", "epoch time (model)", "time to target", "speedup"],
        fig6c_rows,
    )

    # Shape assertions.
    final_mses = [histories[w].validation_mse[-1] for w in WORLD_SIZES]
    # (a) every configuration converges: final MSE improves on epoch 1 and all
    #     configurations land within a small band of each other.
    for w in WORLD_SIZES:
        assert histories[w].validation_mse[-1] <= histories[w].validation_mse[0]
    assert max(final_mses) / min(final_mses) < 3.0
    # (b/c) the modeled time-to-target decreases with the GPU count.
    assert times_to_target[WORLD_SIZES[-1]] < times_to_target[1]
    benchmark.extra_info["speedup_at_max_gpus"] = float(
        times_to_target[1] / times_to_target[WORLD_SIZES[-1]]
    )
    benchmark.extra_info["final_validation_mse"] = {str(k): float(histories[k].validation_mse[-1])
                                                    for k in WORLD_SIZES}
