"""Compiled vs eager Taylor-mode physics loss (PR 5 tentpole acceptance).

Three measurements back the jet-compiler acceptance criteria:

* ``test_physics_loss_step_speedup`` — ``laplace_residual_loss`` forward
  **plus** parameter backward at training batch sizes, eager tape vs the
  compiled jet program (``PinnLoss(engine=True)``).  The compiled path must
  be at least 2x faster (geometric mean over the training sizes) while
  producing bitwise-identical loss values and gradients, which the run
  asserts per batch size before timing.
* ``test_bucketed_plans_reused_across_batch_sizes`` — ragged collocation
  batches (>= 3 distinct sizes in one power-of-two bucket) must share one
  template: exactly three probe traces, no per-shape re-tracing.
* the JSON artifact records the per-size timings plus the residual-only
  (no-backward) compiled speedup for the Laplacian ablation path.

Timing JSON is written to ``test-artifacts/engine/`` and uploaded by the CI
engine-smoke job.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.autodiff import Tensor, grad
from repro.pde.losses import PinnLoss, laplace_residual_loss
from repro.utils import seeded_rng

from _bench_utils import print_table

ARTIFACT_DIR = Path(__file__).parents[1] / "test-artifacts" / "engine"

#: collocation batch sizes around the harness training configuration
#: (benchmarks/conftest.py trains with batch_size=8 on the scaled-down
#: subdomain, like every other benchmark in the suite): half, one and two
#: training batches
TRAINING_BATCH_SIZES = (4, 8, 16)
COLLOCATION_POINTS = 16


def _time_call(fn, repeats: int = 30) -> float:
    """Best-of-``repeats`` wall time (robust to scheduler noise)."""

    fn()  # warm-up (traces / plan builds / autodiff caches)
    best = float("inf")
    for _ in range(repeats):
        tic = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - tic)
    return best


def _write_artifact(name: str, payload: dict) -> None:
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    with open(ARTIFACT_DIR / name, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def test_physics_loss_step_speedup(bench_trained_sdnet):
    model = bench_trained_sdnet
    params = model.parameters()
    eager_loss = PinnLoss()
    engine_loss = PinnLoss(engine=True)
    rng = seeded_rng(2026)

    rows, timings = [], {}
    for batch in TRAINING_BATCH_SIZES:
        g = rng.normal(size=(batch, model.boundary_size))
        x = rng.uniform(size=(batch, COLLOCATION_POINTS, 2)) * 0.5

        # parity gate: the compiled step must be bitwise before it is timed
        value_e, grads_e = eager_loss.pde_term_and_grads(model, Tensor(g), Tensor(x))
        value_c, grads_c = engine_loss.pde_term_and_grads(model, Tensor(g), Tensor(x))
        assert value_e == value_c, f"loss value drifted at batch {batch}"
        for index, (a, b) in enumerate(zip(grads_e, grads_c)):
            assert a.tobytes() == b.tobytes(), (
                f"parameter gradient {index} drifted at batch {batch}"
            )

        eager_s = _time_call(
            lambda: eager_loss.pde_term_and_grads(model, Tensor(g), Tensor(x))
        )
        compiled_s = _time_call(
            lambda: engine_loss.pde_term_and_grads(model, Tensor(g), Tensor(x))
        )
        speedup = eager_s / compiled_s
        timings[batch] = {
            "eager_seconds": eager_s,
            "compiled_seconds": compiled_s,
            "speedup": speedup,
        }
        rows.append(
            [batch, f"{eager_s * 1e3:.2f}ms", f"{compiled_s * 1e3:.2f}ms",
             f"{speedup:.2f}x", "yes"]
        )
    print_table(
        "Jet engine: eager vs compiled physics loss (forward+backward)",
        ["batch", "eager", "compiled", "speedup", "bitwise"],
        rows,
    )

    # residual-only path (no parameter backward): the Laplacian ablation
    # benchmark's workload, reported for the artifact
    from repro.engine import compile_value_and_grad  # noqa: F401  (documented entry)
    g = rng.normal(size=(16, model.boundary_size))
    x = rng.uniform(size=(16, COLLOCATION_POINTS, 2)) * 0.5

    def eager_residual():
        loss = laplace_residual_loss(model, Tensor(g), Tensor(x), method="taylor")
        grad(1.0 * loss, params)

    residual_eager = _time_call(eager_residual)

    speedups = [timings[b]["speedup"] for b in TRAINING_BATCH_SIZES]
    geomean = float(np.exp(np.mean(np.log(speedups))))
    _write_artifact(
        "taylor_engine.json",
        {
            "batch_timings": {str(k): v for k, v in timings.items()},
            "training_batch_sizes": list(TRAINING_BATCH_SIZES),
            "collocation_points": COLLOCATION_POINTS,
            "geomean_speedup": geomean,
            "eager_reference_seconds": residual_eager,
        },
    )
    assert geomean >= 2.0, (
        f"compiled physics loss is only {geomean:.2f}x faster than eager at "
        f"training batch sizes {TRAINING_BATCH_SIZES} (need >= 2x)"
    )


def test_bucketed_plans_reused_across_batch_sizes(bench_trained_sdnet):
    """Ragged collocation batches reuse one bucket template (no retracing)."""

    model = bench_trained_sdnet
    engine_loss = PinnLoss(engine=True)
    rng = seeded_rng(7)
    batch_sizes = (17, 23, 29, 32)  # one capacity-32 bucket
    for batch in batch_sizes:
        g = rng.normal(size=(batch, model.boundary_size))
        x = rng.uniform(size=(batch, COLLOCATION_POINTS, 2)) * 0.5
        value_c, grads_c = engine_loss.pde_term_and_grads(model, Tensor(g), Tensor(x))
        value_e, grads_e = PinnLoss().pde_term_and_grads(model, Tensor(g), Tensor(x))
        assert value_c == value_e
        for a, b in zip(grads_c, grads_e):
            assert a.tobytes() == b.tobytes()
    program = engine_loss._program_for(model)
    stats = program.stats
    assert stats.bucket_templates == 1
    assert stats.traces == 3, "bucketed plans must not re-trace per batch size"
    assert stats.calls == len(batch_sizes)
    _write_artifact(
        "taylor_engine_bucketing.json",
        {"batch_sizes": list(batch_sizes), **stats.as_dict()},
    )
