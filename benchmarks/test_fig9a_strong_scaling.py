"""Figure 9a and Table 4: strong scaling of the distributed MFP.

The paper solves a 32x32 spatial domain (2048x2048 resolution, 4096 atomic
subdomains) to MAE 0.05 on 1..32 A30 GPUs.  Total runtime falls from ~880 s
to ~90 s (about 10x), the share of communication grows with the GPU count,
and Table 4 reports a mild increase in the iterations needed to reach the MAE
target (3200 -> 3500) caused by the relaxed synchronization.

The reproduction runs the actual distributed algorithm (threads) on a
scaled-down domain with the exact subdomain solver, measuring (i) iterations
to the MAE target per world size — the Table 4 analogue — and (ii) the
per-category time breakdown.  It then regenerates the paper-scale curve from
the Section 4.3 cost model calibrated with Table 2 numbers.
"""

import numpy as np

from _bench_utils import print_table
from repro.distributed import INTERCONNECTS
from repro.fd import solve_laplace_from_loop
from repro.mosaic import DistributedMosaicFlowPredictor, FDSubdomainSolver, MosaicGeometry
from repro.perfmodel import GPU_SPECS, MFPCostModel, strong_scaling_curve

WORLD_SIZES = [1, 2, 4]
TARGET_MAE = 0.05
#: Table 4 of the paper: iterations to MAE 0.05 per GPU count
PAPER_TABLE4 = {1: 3200, 2: 3250, 4: 3250, 8: 3300, 16: 3400, 32: 3500}


def test_fig9a_strong_scaling_and_table4(benchmark, bench_geometry, gp_boundary_problem):
    geometry = bench_geometry
    grid = geometry.global_grid()
    from repro.data import GaussianProcessSampler

    sampler = GaussianProcessSampler(
        boundary_size=grid.boundary_size, perimeter=2 * sum(grid.extent), seed=3
    )
    loop = grid.extract_boundary(grid.insert_boundary(sampler.sample_one()))
    reference = solve_laplace_from_loop(grid, loop, method="direct")

    def solver_factory():
        return FDSubdomainSolver(geometry.subdomain_grid(), method="direct")

    iterations_to_target = {}
    breakdowns = {}

    def run_world(world_size):
        predictor = DistributedMosaicFlowPredictor(geometry, solver_factory)
        return predictor.run(
            world_size, loop, max_iterations=400, tol=0.0,
            reference=reference, target_mae=TARGET_MAE, check_interval=2,
        )

    # Benchmark the single-rank configuration; run the rest once each.
    results_1 = benchmark.pedantic(lambda: run_world(1), rounds=1, iterations=1)
    all_results = {1: results_1}
    for world_size in WORLD_SIZES[1:]:
        all_results[world_size] = run_world(world_size)

    table4_rows = []
    fig9a_rows = []
    for world_size in WORLD_SIZES:
        results = all_results[world_size]
        root = results[0]
        iterations_to_target[world_size] = root.iterations
        # Per-rank maxima of the timing categories (the critical path).
        inference = max(r.timings.get("inference", 0.0) for r in results)
        sendrecv = max(r.timings.get("sendrecv", 0.0) for r in results)
        allgather = max(r.timings.get("allgather", 0.0) for r in results)
        io = max(r.timings.get("boundaries_io", 0.0) for r in results)
        breakdowns[world_size] = (inference, sendrecv, allgather, io)
        table4_rows.append([
            world_size, root.iterations, root.converged,
            f"paper: {PAPER_TABLE4.get(world_size, '-')}"
        ])
        fig9a_rows.append([
            world_size,
            f"{inference:.2f} s",
            f"{sendrecv:.3f} s",
            f"{allgather:.3f} s",
            f"{io:.3f} s",
        ])

    print_table(
        f"Table 4 — iterations to reach MAE {TARGET_MAE} (measured, scaled-down domain)",
        ["GPUs", "iterations", "converged", "paper (2048^2 domain)"],
        table4_rows,
    )
    print_table(
        "Figure 9a — measured per-rank time breakdown (critical path, CPU threads)",
        ["GPUs", "model inference", "sendrecv", "allgather", "boundaries IO"],
        fig9a_rows,
    )

    # Paper-scale projection from the Section 4.3 cost model.
    cost_model = MFPCostModel.from_gpu(
        GPU_SPECS["A30"], INTERCONNECTS["infiniband-100g"],
        boundary_size=128, hidden=256, trunk_layers=6, subdomain_resolution=32,
    )
    projected = strong_scaling_curve(cost_model, 2048, sorted(PAPER_TABLE4), PAPER_TABLE4)
    projection_rows = [
        [p.world_size, p.iterations, f"{p.total:.1f} s", f"{p.communication_fraction:.2f}",
         f"{projected[0].total / p.total:.1f}x"]
        for p in projected
    ]
    print_table(
        "Figure 9a — projected strong scaling at paper scale (2048x2048, Table 4 iterations)",
        ["GPUs", "iterations", "total time", "comm fraction", "speedup"],
        projection_rows,
    )

    # --- shape assertions -----------------------------------------------------
    # Table 4: iterations never decrease with more ranks (relaxed synchronization).
    iters = [iterations_to_target[w] for w in WORLD_SIZES]
    assert all(b >= a for a, b in zip(iters, iters[1:]))
    # Growth is mild (paper: <10 % from 1 to 32 GPUs; allow 30 % on the tiny domain).
    assert iters[-1] <= iters[0] * 1.3
    # Every configuration reaches the MAE target.
    assert all(all_results[w][0].converged for w in WORLD_SIZES)
    # Communication is negligible on one rank (only timer overhead of the
    # empty exchange loop) and real in multi-rank runs.
    assert breakdowns[1][1] < 1e-2
    assert breakdowns[WORLD_SIZES[-1]][1] > breakdowns[1][1]
    # Paper-scale projection: total time decreases, communication fraction grows.
    totals = [p.total for p in projected]
    fractions = [p.communication_fraction for p in projected]
    assert totals[-1] < totals[0]
    assert 4.0 < totals[0] / totals[-1] < 32.0
    assert all(b >= a for a, b in zip(fractions, fractions[1:]))

    benchmark.extra_info["iterations_to_target"] = {str(k): int(v) for k, v in iterations_to_target.items()}
    benchmark.extra_info["projected_speedup_32"] = float(totals[0] / totals[-1])
