"""Ablation: forward Taylor-mode vs. nested reverse-mode Laplacian.

The paper computes the PDE-loss second derivatives with nested backward
passes (Section 5.2 describes three backward passes per update).  The
reproduction additionally implements a forward-over-reverse Taylor-mode path;
this ablation quantifies its advantage in time and retained graph memory, and
verifies both produce identical losses and gradients.
"""

import time

import numpy as np
import pytest

from _bench_utils import print_table
from repro.autodiff import GraphMemoryTracker, Tensor, grad, ops
from repro.models import SDNet

BATCH = 4
POINTS = [16, 64, 256]


def _loss(model, g, x, method):
    lap = model.laplacian(g, x, method=method)
    return ops.mean(lap * lap)


def test_ablation_taylor_vs_autograd_laplacian(benchmark):
    model = SDNet(boundary_size=32, hidden_size=24, trunk_layers=2,
                  embedding_channels=(2,), rng=0)
    rng = np.random.default_rng(0)
    g = Tensor(rng.normal(size=(BATCH, 32)))
    params = model.parameters()

    rows = []
    for q in POINTS:
        x = Tensor(rng.uniform(size=(BATCH, q, 2)) * 0.5)

        def run(method):
            tic = time.perf_counter()
            loss = _loss(model, g, x, method)
            grad(loss, params)
            return time.perf_counter() - tic, loss.item()

        run("taylor")  # warm-up
        t_taylor, loss_taylor = run("taylor")
        t_autograd, loss_autograd = run("autograd")
        assert loss_taylor == pytest.approx(loss_autograd, rel=1e-9)

        with GraphMemoryTracker() as taylor_memory:
            _loss(model, g, x, "taylor")
        with GraphMemoryTracker() as autograd_memory:
            _loss(model, g, x, "autograd")

        rows.append([
            q,
            f"{t_taylor*1e3:.1f} ms",
            f"{t_autograd*1e3:.1f} ms",
            f"{t_autograd / t_taylor:.2f}x",
            f"{taylor_memory.graph_bytes / 2**20:.2f} MB",
            f"{autograd_memory.graph_bytes / 2**20:.2f} MB",
        ])
        assert taylor_memory.graph_bytes < autograd_memory.graph_bytes

    x_bench = Tensor(rng.uniform(size=(BATCH, POINTS[0], 2)) * 0.5)
    benchmark.pedantic(lambda: _loss(model, g, x_bench, "taylor").item(), rounds=3, iterations=1)

    print_table(
        "Ablation — PDE-loss second derivatives: Taylor mode vs nested reverse mode",
        ["points", "taylor step", "autograd step", "speedup", "taylor graph", "autograd graph"],
        rows,
    )



def test_ablation_gradients_identical_between_paths(benchmark):
    model = SDNet(boundary_size=32, hidden_size=16, trunk_layers=2,
                  embedding_channels=(2,), rng=1)
    rng = np.random.default_rng(1)
    g = Tensor(rng.normal(size=(2, 32)))
    x = Tensor(rng.uniform(size=(2, 8, 2)) * 0.5)
    params = model.parameters()

    def taylor_grads():
        return grad(_loss(model, g, x, "taylor"), params)

    grads_taylor = benchmark.pedantic(taylor_grads, rounds=2, iterations=1)
    grads_autograd = grad(_loss(model, g, x, "autograd"), params)
    max_diff = max(
        float(np.max(np.abs(a.data - b.data))) for a, b in zip(grads_taylor, grads_autograd)
    )
    print(f"\nAblation — max parameter-gradient difference between paths: {max_diff:.2e}")
    assert max_diff < 1e-9
