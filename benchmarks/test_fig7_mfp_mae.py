"""Figure 7: MFP accuracy using SDNets trained with different GPU counts.

The paper evaluates the Mosaic Flow predictor with the boundary condition
``g(x) = sin(2*pi*x)`` on several domain sizes, once for each SDNet trained
with 1..32 GPUs, and finds the MAE essentially independent of the training
GPU count — the small validation-MSE differences of Figure 6 do not matter
once the model is used as a subdomain solver.

The reproduction trains three SDNets with 1, 2 and 4 simulated ranks and
compares the MFP MAE on two domain sizes.
"""

import numpy as np

from _bench_utils import print_table
from repro.fd import solve_laplace_from_loop
from repro.models import SDNet
from repro.mosaic import MosaicFlowPredictor, MosaicGeometry, SDNetSubdomainSolver
from repro.pde import sine_boundary_bvp
from repro.training import DataParallelTrainer, TrainingConfig

WORLD_SIZES = [1, 2, 4]
DOMAIN_STEPS = [4, 6]     # 1x1 and 1.5x1.5 spatial domains


def test_fig7_mfp_mae_is_insensitive_to_training_gpu_count(benchmark, bench_dataset):
    train, val = bench_dataset.split(validation_fraction=0.125, seed=0)

    def factory():
        return SDNet(
            boundary_size=bench_dataset.grid.boundary_size,
            hidden_size=24,
            trunk_layers=2,
            embedding_channels=(2,),
            rng=0,
        )

    config = TrainingConfig(
        epochs=3, batch_size=8, data_points_per_domain=32,
        collocation_points_per_domain=16, max_lr=3e-3, seed=0,
    )

    # Train one model per world size (Algorithm 1 with the scaling rules).
    models = {}
    for world_size in WORLD_SIZES:
        trainer = DataParallelTrainer(factory, config, train, val, apply_scaling_rules=True)
        result = trainer.run(world_size)[0]
        model = factory()
        model.load_state_dict(result.state_dict)
        models[world_size] = model

    bvp = sine_boundary_bvp()
    maes = {}

    def evaluate(model, steps):
        geometry = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5,
                                  steps_x=steps, steps_y=steps)
        grid = geometry.global_grid()
        loop = bvp.boundary_loop(grid)
        reference = solve_laplace_from_loop(grid, loop, method="direct")
        predictor = MosaicFlowPredictor(geometry, SDNetSubdomainSolver(model), batched=True)
        result = predictor.run(loop, max_iterations=60, tol=1e-5, reference=reference)
        return float(np.mean(np.abs(result.solution - reference)))

    benchmark.pedantic(lambda: evaluate(models[1], DOMAIN_STEPS[0]), rounds=1, iterations=1)

    rows = []
    for steps in DOMAIN_STEPS:
        row = [f"{steps * 0.25:.2f} x {steps * 0.25:.2f}"]
        for world_size in WORLD_SIZES:
            mae_value = evaluate(models[world_size], steps)
            maes[(steps, world_size)] = mae_value
            row.append(f"{mae_value:.3e}")
        rows.append(row)
    print_table(
        "Figure 7 — MFP MAE with g(x)=sin(2*pi*x), per training GPU count",
        ["domain size"] + [f"{w} GPU(s)" for w in WORLD_SIZES],
        rows,
    )

    # Shape assertion: for each domain size, the MAE across training GPU
    # counts stays within a small factor (the paper reports "consistent MAE").
    for steps in DOMAIN_STEPS:
        values = [maes[(steps, w)] for w in WORLD_SIZES]
        assert max(values) / min(values) < 2.5
    benchmark.extra_info["mae"] = {f"{k}": float(v) for k, v in maes.items()}
