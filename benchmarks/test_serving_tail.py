"""Serving tail behaviour: p99/p50 latency ratio and bytes-per-request.

Closes the ROADMAP benchmark-coverage item: the trajectory gate tracked
throughput ratios but nothing about the *shape* of the latency
distribution or the memory cost of a request.  Both regress silently —
a batching change can keep mean throughput while stretching the tail,
and a cache or payload change can balloon per-request bytes without any
test noticing.

Two machine-independent metrics are recorded:

* ``p99_over_p50`` — tail amplification of the served latency
  distribution.  A ratio, so runner hardware cancels; scheduling noise
  does not, hence the loose tolerance in ``record_trajectory.py``.
* ``bytes_per_request`` — cumulative bytes charged to the
  ``repro.obs.memory`` accountant (plan buffers, solution cache,
  request store, anchor-row payloads, mega-batch scratch) divided by
  completed requests.  Deterministic for a fixed workload: array sizes
  do not depend on the machine.

The run serves with the full production observability stack enabled —
memory accounting, flight recorder, SLO tracker — so the numbers are
the instrumented ones CI would see, and the retained flight traces are
written to ``test-artifacts/obs/`` for upload when the gate fails.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _bench_utils import print_table
from repro.mosaic import MosaicGeometry, SDNetSubdomainSolver
from repro.obs import (
    FlightRecorder,
    disable_memory_accounting,
    enable_memory_accounting,
)
from repro.pde import HARMONIC_FUNCTIONS
from repro.serving import Server, SolveRequest
from repro.utils import seeded_rng

from conftest import BENCH_SUBDOMAIN_EXTENT, BENCH_SUBDOMAIN_POINTS

ENGINE_ARTIFACT_DIR = Path(__file__).parents[1] / "test-artifacts" / "engine"
OBS_ARTIFACT_DIR = Path(__file__).parents[1] / "test-artifacts" / "obs"

NUM_REQUESTS = 24
TOL = 1e-6
MAX_ITERATIONS = 40
#: sanity ceiling — a p99 this far above the median means a scheduling bug,
#: not noise (the trajectory gate handles gradual regressions)
MAX_P99_OVER_P50 = 50.0


def _stream(count, seed):
    geometry = MosaicGeometry(
        BENCH_SUBDOMAIN_POINTS, BENCH_SUBDOMAIN_EXTENT, steps_x=4, steps_y=4
    )
    names = sorted(HARMONIC_FUNCTIONS)
    rng = seeded_rng(seed)
    stream = []
    for _ in range(count):
        weights = rng.normal(size=len(names))
        stream.append((geometry, geometry.boundary_from_function(
            lambda x, y, w=weights: sum(
                wi * HARMONIC_FUNCTIONS[name](x, y)
                for wi, name in zip(w, names)
            )
        )))
    return stream


def _serve(stream, model, flight=None):
    server = Server(
        solver_factory=lambda geometry: SDNetSubdomainSolver(model),
        world_size=2,
        engine=True,
        flight=flight,
    )
    tic = time.perf_counter()
    for geometry, loop in stream:
        server.submit(SolveRequest.create(
            geometry, loop, tol=TOL, max_iterations=MAX_ITERATIONS
        ))
    server.drain()
    elapsed = time.perf_counter() - tic
    return server, elapsed


def test_serving_tail_and_bytes_per_request(benchmark, bench_trained_sdnet):
    stream = _stream(NUM_REQUESTS, seed=2026)

    # Warm pass: lazy solver construction and engine plan compilation would
    # otherwise dominate the first requests' latencies and poison the tail.
    _serve(stream, bench_trained_sdnet)

    # Measured pass with the production observability stack enabled.  The
    # flight recorder's rolling-median threshold guarantees some retained
    # tail even on a quiet run, exercising the dump-on-failure artifact.
    accountant = enable_memory_accounting()
    flight = FlightRecorder(min_samples=8, latency_quantile=75.0)
    try:
        ratios = []
        server = None
        for _ in range(3):
            accountant.clear()
            server, _ = _serve(stream, bench_trained_sdnet, flight=flight)
            p50 = server.stats.latency_percentile(50.0)
            p99 = server.stats.latency_percentile(99.0)
            assert p50 > 0.0
            ratios.append(p99 / p50)
        # Best-of-3: scheduling noise only ever inflates the tail, so the
        # minimum is the most reproducible machine-independent estimate.
        p99_over_p50 = min(ratios)
        health = server.health()
    finally:
        disable_memory_accounting()

    bytes_per_request = health["bytes_per_request"]
    assert bytes_per_request > 0.0
    assert health["status"] in ("ok", "burning")
    assert flight.summary()["retained"] >= 1, (
        "rolling-quantile tail sampling retained nothing across "
        f"{3 * NUM_REQUESTS} requests"
    )

    OBS_ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    flight.write_chrome_trace(OBS_ARTIFACT_DIR / "serving_flight.json")

    payload = {
        "p99_over_p50": p99_over_p50,
        "p99_over_p50_runs": ratios,
        "bytes_per_request": bytes_per_request,
        "requests": NUM_REQUESTS,
        "memory_owners": health["memory"]["owners"],
        "flight_retained": flight.summary()["retained"],
    }
    ENGINE_ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    with open(ENGINE_ARTIFACT_DIR / "serving_tail.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    owners = health["memory"]["owners"]
    rows = [
        [owner, f"{stats['allocated_bytes'] / NUM_REQUESTS:.0f}",
         f"{stats['live_bytes']}"]
        for owner, stats in sorted(owners.items())
    ]
    rows.append(["total / request", f"{bytes_per_request:.0f}", "-"])
    print_table(
        f"Serving tail — {NUM_REQUESTS} requests, "
        f"p99/p50 = {p99_over_p50:.2f} (best of 3)",
        ["owner", "bytes/request", "live bytes"],
        rows,
    )

    benchmark.extra_info.update({
        "p99_over_p50": p99_over_p50,
        "bytes_per_request": bytes_per_request,
    })
    benchmark.pedantic(
        lambda: _serve(stream, bench_trained_sdnet),
        rounds=1, iterations=1,
    )

    assert p99_over_p50 >= 1.0
    assert p99_over_p50 < MAX_P99_OVER_P50, (
        f"p99/p50 = {p99_over_p50:.1f} — the tail is pathological, not noisy"
    )
