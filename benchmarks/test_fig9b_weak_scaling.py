"""Figure 9b: weak scaling of the distributed MFP.

Each GPU owns a fixed 16x8 spatial block (1024x512 resolution) and the
algorithm runs for 2000 iterations.  The computation time per rank stays
essentially flat (the only extra work is averaging processor-subdomain
overlaps), while communication grows by ~4x from 2 to 8 GPUs — as ranks gain
neighbours — and then plateaus, dominated by message latency.

The reproduction keeps the per-rank anchor block fixed while growing the
global domain with the rank count, runs a fixed iteration budget, and reports
measured per-rank computation/communication plus halo message volumes; the
paper-scale curve is regenerated from the cost model.
"""

import numpy as np

from _bench_utils import print_table
from repro.distributed import INTERCONNECTS
from repro.mosaic import DistributedMosaicFlowPredictor, FDSubdomainSolver, MosaicGeometry
from repro.perfmodel import GPU_SPECS, MFPCostModel, weak_scaling_curve

#: per-rank block: 2x4 anchors (1x2 spatial units per rank)
PER_RANK_STEPS = (4, 2)          # (steps_x, steps_y) per rank
WORLD_SIZES = [1, 2, 4]
ITERATIONS = 24


def _geometry_for(world_size: int) -> MosaicGeometry:
    """Grow the global domain so each rank keeps the same anchor block."""

    from repro.distributed import choose_grid_dims

    rows, cols = choose_grid_dims(world_size)
    return MosaicGeometry(
        subdomain_points=9,
        subdomain_extent=0.5,
        steps_x=PER_RANK_STEPS[0] * cols,
        steps_y=PER_RANK_STEPS[1] * rows,
    )


def test_fig9b_weak_scaling(benchmark):
    rows = []
    computation = {}
    communication = {}
    halo_bytes = {}

    def run_world(world_size):
        geometry = _geometry_for(world_size)
        grid = geometry.global_grid()
        loop = grid.boundary_from_function(lambda x, y: np.sin(2 * np.pi * x) + 0.5 * y)
        predictor = DistributedMosaicFlowPredictor(
            geometry, lambda: FDSubdomainSolver(geometry.subdomain_grid(), method="direct")
        )
        return predictor.run(world_size, loop, max_iterations=ITERATIONS, tol=0.0,
                             check_interval=ITERATIONS)

    results_1 = benchmark.pedantic(lambda: run_world(1), rounds=1, iterations=1)
    all_results = {1: results_1}
    for world_size in WORLD_SIZES[1:]:
        all_results[world_size] = run_world(world_size)

    for world_size in WORLD_SIZES:
        results = all_results[world_size]
        comp = max(r.timings.get("inference", 0.0) + r.timings.get("boundaries_io", 0.0)
                   for r in results)
        comm = max(r.timings.get("sendrecv", 0.0) + r.timings.get("allgather", 0.0)
                   for r in results)
        computation[world_size] = comp
        communication[world_size] = comm
        halo_bytes[world_size] = max(r.halo_bytes_per_iteration for r in results)
        send_counts = max(r.comm_stats["sends"] for r in results)
        rows.append([
            world_size,
            f"{comp:.2f} s",
            f"{comm:.3f} s",
            halo_bytes[world_size],
            send_counts,
        ])

    print_table(
        f"Figure 9b — weak scaling, fixed per-rank block, {ITERATIONS} iterations (measured)",
        ["GPUs", "computation", "communication", "halo bytes/iter", "messages sent"],
        rows,
    )

    # Paper-scale projection (1024x512 per GPU, 2000 iterations, A30 + IB).
    cost_model = MFPCostModel.from_gpu(
        GPU_SPECS["A30"], INTERCONNECTS["infiniband-100g"],
        boundary_size=128, hidden=256, trunk_layers=6, subdomain_resolution=32,
    )
    projected = weak_scaling_curve(cost_model, (512, 1024), [1, 2, 4, 8, 16, 32], iterations=2000)
    print_table(
        "Figure 9b — projected weak scaling at paper scale (per-GPU 1024x512, 2000 iterations)",
        ["GPUs", "computation", "sendrecv", "allgather", "total"],
        [[p.world_size, f"{p.computation:.1f} s", f"{p.sendrecv:.2f} s",
          f"{p.allgather:.3f} s", f"{p.total:.1f} s"] for p in projected],
    )

    # --- shape assertions -----------------------------------------------------
    # Weak scaling invariant: each rank owns the same number of atomic
    # subdomains regardless of the world size, so the per-rank *work* is
    # constant.  (Measured wall-clock cannot show this on a single shared CPU
    # core — all simulated ranks time-slice one core — so the structural
    # property is asserted instead and the measured numbers are reported.)
    from repro.distributed import ProcessGrid
    from repro.mosaic.distributed import RankLayout

    per_rank_budget = PER_RANK_STEPS[0] * PER_RANK_STEPS[1]
    for world_size in WORLD_SIZES:
        geometry = _geometry_for(world_size)
        pgrid = ProcessGrid(world_size)
        counts = [
            RankLayout.build(geometry, pgrid, rank).part.count for rank in range(world_size)
        ]
        # Every rank's anchor block stays within the fixed per-rank budget —
        # the work per rank does not grow with the world size.  (At this tiny
        # scale the -1 anchor per axis makes blocks uneven by up to an anchor
        # row/column; at paper scale the imbalance is negligible.)
        assert max(counts) <= per_rank_budget
        assert min(counts) >= 1
    # Communication appears with P > 1 and grows as ranks gain neighbours
    # (on one rank only timer overhead and the trivial self-allgather remain).
    assert communication[1] < 5e-3
    assert halo_bytes[1] == 0
    assert halo_bytes[WORLD_SIZES[-1]] >= halo_bytes[2] > 0
    # Projected paper-scale curve: communication grows 2 -> 8 and then flattens.
    comm_proj = {p.world_size: p.sendrecv + p.allgather for p in projected}
    assert comm_proj[8] > comm_proj[2]
    assert comm_proj[32] < comm_proj[8] * 2.0
    benchmark.extra_info["halo_bytes_per_iteration"] = {str(k): int(v) for k, v in halo_bytes.items()}
