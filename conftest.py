"""Repository-level pytest configuration.

Adds ``src/`` to ``sys.path`` so the test-suite and benchmarks run even when
the package has not been installed (the offline environment lacks the
``wheel`` package required by PEP 517 editable installs; see README).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
