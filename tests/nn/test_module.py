"""Module / Parameter registration, state dicts and containers."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import MLP, Linear, Module, ModuleList, Parameter


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.layer1 = Linear(3, 4, rng=np.random.default_rng(0))
        self.layer2 = Linear(4, 1, rng=np.random.default_rng(1))
        self.scale = Parameter(np.array(2.0))

    def forward(self, x):
        return self.layer2(self.layer1(x)) * self.scale


class TestRegistration:
    def test_named_parameters_are_hierarchical(self):
        net = TinyNet()
        names = dict(net.named_parameters()).keys()
        assert "layer1.weight" in names
        assert "layer1.bias" in names
        assert "layer2.weight" in names
        assert "scale" in names

    def test_parameters_count(self):
        net = TinyNet()
        assert net.num_parameters() == 3 * 4 + 4 + 4 * 1 + 1 + 1

    def test_modules_iteration(self):
        net = TinyNet()
        kinds = [type(m).__name__ for m in net.modules()]
        assert kinds.count("Linear") == 2

    def test_bias_none_is_not_registered(self):
        layer = Linear(3, 2, bias=False)
        assert all(name != "bias" for name, _ in layer.named_parameters())


class TestDeterministicIteration:
    """Regression tests for the documented parameter-iteration order.

    Tracing (repro.engine) and checkpointing both depend on
    ``named_parameters`` yielding a deterministic order: own parameters in
    first-assignment order, then sub-modules depth-first in registration
    order, with stale registrations dropped on attribute overwrite.
    """

    def test_order_is_registration_then_depth_first(self):
        net = TinyNet()
        names = [name for name, _ in net.named_parameters()]
        # own parameters first (registration order), then sub-modules
        # depth-first in registration order
        assert names == [
            "scale", "layer1.weight", "layer1.bias", "layer2.weight", "layer2.bias"
        ]

    def test_order_is_stable_across_constructions(self):
        first = [name for name, _ in TinyNet().named_parameters()]
        second = [name for name, _ in TinyNet().named_parameters()]
        assert first == second

    def test_reassigning_parameter_keeps_position(self):
        net = TinyNet()
        net.scale = Parameter(np.array(3.0))
        names = [name for name, _ in net.named_parameters()]
        assert names[0] == "scale"  # re-assignment keeps first-assignment position
        assert float(net.state_dict()["scale"]) == 3.0

    def test_overwriting_parameter_with_module_drops_stale_entry(self):
        net = TinyNet()
        net.scale = Linear(2, 2, rng=np.random.default_rng(3))
        names = [name for name, _ in net.named_parameters()]
        assert "scale" not in names  # the stale Parameter is gone
        assert "scale.weight" in names and "scale.bias" in names
        assert len(names) == len(set(names))  # no duplicate names

    def test_overwriting_module_with_parameter_drops_stale_entry(self):
        net = TinyNet()
        net.layer2 = Parameter(np.zeros(3))
        names = [name for name, _ in net.named_parameters()]
        assert "layer2" in names
        assert not any(name.startswith("layer2.") for name in names)

    def test_overwriting_with_plain_value_unregisters(self):
        net = TinyNet()
        net.scale = 4.0
        assert "scale" not in dict(net.named_parameters())
        net.layer2 = None
        names = [name for name, _ in net.named_parameters()]
        assert names == ["layer1.weight", "layer1.bias"]

    def test_state_dict_key_order_matches_iteration(self):
        net = TinyNet()
        assert list(net.state_dict()) == [name for name, _ in net.named_parameters()]


class TestStateDict:
    def test_roundtrip(self):
        net = TinyNet()
        state = net.state_dict()
        net2 = TinyNet()
        net2.load_state_dict(state)
        x = Tensor(np.random.default_rng(2).normal(size=(5, 3)))
        assert np.allclose(net(x).data, net2(x).data)

    def test_state_dict_copies_data(self):
        net = TinyNet()
        state = net.state_dict()
        state["scale"][...] = 99.0
        assert net.scale.data != 99.0

    def test_missing_key_raises(self):
        net = TinyNet()
        state = net.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_unexpected_key_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["scale"] = np.zeros(7)
        with pytest.raises(ValueError):
            net.load_state_dict(state)


class TestGradients:
    def test_zero_grad_clears(self):
        net = TinyNet()
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3)))
        loss = net(x).sum()
        loss.backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestModuleList:
    def test_append_and_iterate(self):
        container = ModuleList([Linear(2, 2), Linear(2, 2)])
        container.append(Linear(2, 1))
        assert len(container) == 3
        assert isinstance(container[2], Linear)
        assert len(list(iter(container))) == 3

    def test_parameters_of_contained_modules_registered(self):
        container = ModuleList([Linear(2, 2), Linear(2, 3)])
        assert len(container.parameters()) == 4

    def test_mlp_uses_module_list(self):
        mlp = MLP([2, 8, 8, 1])
        assert len(mlp.layers) == 3
        assert mlp.num_parameters() == (2 * 8 + 8) + (8 * 8 + 8) + (8 * 1 + 1)
