"""Linear, Conv1d, MLP and activation layers."""

import numpy as np
import pytest

from repro.autodiff import Tensor, grad, gradcheck, ops
from repro.nn import MLP, Conv1d, GELU, Identity, Linear, ReLU, Sine, Tanh, get_activation
from repro.nn.init import kaiming_uniform, xavier_normal, xavier_uniform


class TestLinear:
    def test_forward_matches_manual(self):
        rng = np.random.default_rng(0)
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        out = layer(Tensor(x))
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(out.data, expected)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False)
        assert layer.bias is None
        x = Tensor(np.ones((2, 4)))
        assert np.allclose(layer(x).data, np.ones((2, 4)) @ layer.weight.data.T)

    def test_gradients(self):
        layer = Linear(3, 2, rng=np.random.default_rng(1))
        x = Tensor(np.random.default_rng(2).normal(size=(4, 3)))

        def fn(w, b):
            layer.weight.data[...] = w.data
            layer.bias.data[...] = b.data
            return ops.sum(ops.tanh(ops.matmul(x, ops.transpose(w)) + b))

        assert gradcheck(fn, [Tensor(layer.weight.data.copy()), Tensor(layer.bias.data.copy())])

    def test_batched_input(self):
        layer = Linear(3, 2)
        out = layer(Tensor(np.ones((2, 5, 3))))
        assert out.shape == (2, 5, 2)

    def test_taylor_forward_matches_value(self):
        from repro.autodiff.taylor import taylor_seed

        layer = Linear(2, 4, rng=np.random.default_rng(3))
        x = np.random.default_rng(4).normal(size=(3, 2))
        triple = taylor_seed(Tensor(x), np.array([1.0, 0.0]))
        out = layer.taylor_forward(triple)
        assert np.allclose(out.value.data, layer(Tensor(x)).data)
        assert np.allclose(out.d1.data, np.broadcast_to(layer.weight.data.T[0], (3, 4)))
        assert np.allclose(out.d2.data, 0.0)


class TestConv1d:
    def test_output_shape_zero_padding(self):
        conv = Conv1d(1, 3, kernel_size=5, padding=2)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 1, 16)))
        assert conv(x).shape == (2, 3, 16)

    def test_output_shape_stride(self):
        conv = Conv1d(2, 4, kernel_size=3, stride=2)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 2, 11)))
        assert conv(x).shape == (1, 4, 5)

    def test_matches_manual_convolution(self):
        rng = np.random.default_rng(1)
        conv = Conv1d(1, 1, kernel_size=3, padding=0, bias=False, rng=rng)
        signal = rng.normal(size=8)
        out = conv(Tensor(signal.reshape(1, 1, 8))).data.ravel()
        kernel = conv.weight.data.ravel()
        expected = np.correlate(signal, kernel, mode="valid")
        assert np.allclose(out, expected)

    def test_circular_padding_preserves_length_and_wraps(self):
        conv = Conv1d(1, 1, kernel_size=3, padding=1, padding_mode="circular", bias=False)
        conv.weight.data[...] = np.array([[[1.0, 0.0, 0.0]]])  # picks the left neighbour
        signal = np.arange(5.0)
        out = conv(Tensor(signal.reshape(1, 1, 5))).data.ravel()
        assert np.allclose(out, np.roll(signal, 1))

    def test_gradients_flow_to_weight_and_input(self):
        conv = Conv1d(2, 3, kernel_size=3, padding=1, rng=np.random.default_rng(2))
        x = Tensor(np.random.default_rng(3).normal(size=(2, 2, 7)), requires_grad=True)
        loss = ops.sum(conv(x) ** 2.0)
        grads = grad(loss, [x, conv.weight, conv.bias])
        assert all(np.any(g.data != 0) for g in grads)

    def test_invalid_inputs(self):
        conv = Conv1d(2, 3, kernel_size=3)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((2, 7))))
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((1, 3, 7))))
        with pytest.raises(ValueError):
            Conv1d(1, 1, kernel_size=3, padding_mode="reflect")


class TestActivations:
    @pytest.mark.parametrize("name", ["gelu", "tanh", "sine", "relu", "identity"])
    def test_lookup(self, name):
        act = get_activation(name)
        x = Tensor(np.linspace(-2, 2, 11))
        assert act(x).shape == x.shape

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            get_activation("swishish")

    @pytest.mark.parametrize("act", [GELU(), Tanh(), Sine(omega=2.0), Identity()])
    def test_derivative_matches_finite_difference(self, act):
        x0 = np.array([0.4, -0.8, 1.3])
        eps = 1e-6
        numeric = (act(Tensor(x0 + eps)).data - act(Tensor(x0 - eps)).data) / (2 * eps)
        assert np.allclose(act.derivative(Tensor(x0)).data, numeric, atol=1e-6)

    @pytest.mark.parametrize("act", [GELU(), Tanh(), Sine()])
    def test_second_derivative_matches_finite_difference(self, act):
        x0 = np.array([0.25, -0.6])
        eps = 1e-4
        numeric = (
            act(Tensor(x0 + eps)).data - 2 * act(Tensor(x0)).data + act(Tensor(x0 - eps)).data
        ) / eps ** 2
        assert np.allclose(act.second_derivative(Tensor(x0)).data, numeric, atol=1e-5)

    def test_gelu_known_values(self):
        act = GELU()
        assert act(Tensor(np.array([0.0]))).data[0] == pytest.approx(0.0)
        # gelu(x) -> x for large x, -> 0 for very negative x
        assert act(Tensor(np.array([6.0]))).data[0] == pytest.approx(6.0, abs=1e-6)
        assert act(Tensor(np.array([-6.0]))).data[0] == pytest.approx(0.0, abs=1e-6)

    def test_relu_behaviour(self):
        act = ReLU()
        x = Tensor(np.array([-1.0, 0.5]))
        assert np.allclose(act(x).data, [0.0, 0.5])
        assert np.allclose(act.derivative(x).data, [0.0, 1.0])
        assert np.allclose(act.second_derivative(x).data, [0.0, 0.0])


class TestMLP:
    def test_shapes_and_final_layer_is_linear(self):
        mlp = MLP([2, 16, 16, 1], activation="gelu", rng=np.random.default_rng(0))
        out = mlp(Tensor(np.random.default_rng(1).normal(size=(7, 2))))
        assert out.shape == (7, 1)

    def test_requires_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_taylor_forward_matches_autograd_second_derivative(self):
        mlp = MLP([1, 8, 8, 1], activation="tanh", rng=np.random.default_rng(5))
        x0 = np.array([[0.3], [0.9]])

        # Autograd path.
        x = Tensor(x0, requires_grad=True)
        y = mlp(x)
        (g1,) = grad(ops.sum(y), [x], create_graph=True)
        (g2,) = grad(ops.sum(g1), [x])

        # Taylor path.
        from repro.autodiff.taylor import taylor_seed

        triple = taylor_seed(Tensor(x0), np.array(1.0))
        out = mlp.taylor_forward(triple)
        assert np.allclose(out.value.data, y.data)
        assert np.allclose(out.d2.data, g2.data, atol=1e-10)


class TestInitializers:
    def test_xavier_uniform_bounds(self):
        rng = np.random.default_rng(0)
        w = xavier_uniform((100, 100), 100, 100, rng)
        bound = np.sqrt(6.0 / 200)
        assert np.all(np.abs(w) <= bound)

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(0)
        w = xavier_normal((200, 200), 200, 200, rng)
        assert np.std(w) == pytest.approx(np.sqrt(2.0 / 400), rel=0.1)

    def test_kaiming_uniform_bounds(self):
        rng = np.random.default_rng(0)
        w = kaiming_uniform((50, 50), 50, rng)
        assert np.all(np.abs(w) <= np.sqrt(3.0 / 50))
