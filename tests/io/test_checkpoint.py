"""Checkpoint save / load round-trips."""

import numpy as np
import pytest

from repro.io import load_model, load_sdnet, load_state, save_checkpoint
from repro.models import ConcatSolver, SDNet


class TestSaveLoad:
    def test_roundtrip_into_existing_model(self, tmp_path, small_sdnet, rng):
        path = save_checkpoint(small_sdnet, tmp_path / "sdnet")
        assert path.suffix == ".npz" and path.exists()

        clone = SDNet(
            boundary_size=small_sdnet.boundary_size,
            hidden_size=small_sdnet.hidden_size,
            trunk_layers=2,
            embedding_channels=(2,),
            rng=999,
        )
        load_model(path, clone)
        g = rng.normal(size=(2, small_sdnet.boundary_size))
        x = rng.uniform(size=(2, 4, 2))
        assert np.allclose(clone.predict(g, x), small_sdnet.predict(g, x))

    def test_reconstruct_sdnet_from_config(self, tmp_path, small_sdnet, rng):
        path = save_checkpoint(small_sdnet, tmp_path / "lib" / "laplace.npz")
        rebuilt = load_sdnet(path)
        assert rebuilt.boundary_size == small_sdnet.boundary_size
        g = rng.normal(size=(1, small_sdnet.boundary_size))
        x = rng.uniform(size=(1, 3, 2))
        assert np.allclose(rebuilt.predict(g, x), small_sdnet.predict(g, x))

    def test_override_on_reconstruction(self, tmp_path, small_sdnet):
        path = save_checkpoint(small_sdnet, tmp_path / "sdnet.npz")
        state, config, class_name = load_state(path)
        assert class_name == "SDNet"
        assert config["hidden_size"] == small_sdnet.hidden_size
        assert set(state) == set(dict(small_sdnet.named_parameters()))

    def test_wrong_class_rejected(self, tmp_path, small_concat_solver):
        path = save_checkpoint(small_concat_solver, tmp_path / "baseline.npz",
                               config={"hidden_size": 16})
        with pytest.raises(ValueError):
            load_sdnet(path)

    def test_missing_config_rejected(self, tmp_path, small_sdnet):
        path = save_checkpoint(small_sdnet, tmp_path / "noconf.npz", config={})
        # explicit empty config -> reconstruction impossible
        with pytest.raises(ValueError):
            load_sdnet(path)

    def test_concat_solver_roundtrip_via_load_model(self, tmp_path, small_concat_solver, rng):
        path = save_checkpoint(small_concat_solver, tmp_path / "concat.npz")
        clone = ConcatSolver(boundary_size=small_concat_solver.boundary_size,
                             hidden_size=16, trunk_layers=2, rng=5)
        load_model(path, clone)
        g = rng.normal(size=(1, small_concat_solver.boundary_size))
        x = rng.uniform(size=(1, 3, 2))
        assert np.allclose(clone.predict(g, x), small_concat_solver.predict(g, x))
