"""Shared fixtures for the test suite.

The fixtures build intentionally tiny instances (small grids, small networks,
few samples) so the full suite runs in seconds while still exercising every
code path of the reproduction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_dataset
from repro.fd import Grid2D
from repro.models import ConcatSolver, SDNet
from repro.mosaic import FDSubdomainSolver, MosaicGeometry


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_grid() -> Grid2D:
    """A 9x9 grid on a 0.5 x 0.5 domain (tiny version of the training grid)."""

    return Grid2D(9, 9, extent=(0.5, 0.5))


@pytest.fixture(scope="session")
def small_sdnet(small_grid) -> SDNet:
    return SDNet(
        boundary_size=small_grid.boundary_size,
        hidden_size=16,
        trunk_layers=2,
        embedding_channels=(2,),
        rng=7,
    )


@pytest.fixture(scope="session")
def small_concat_solver(small_grid) -> ConcatSolver:
    return ConcatSolver(
        boundary_size=small_grid.boundary_size, hidden_size=16, trunk_layers=2, rng=7
    )


@pytest.fixture(scope="session")
def small_geometry() -> MosaicGeometry:
    """2x2-subdomain Mosaic geometry with 9-point subdomains."""

    return MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=4, steps_y=4)


@pytest.fixture(scope="session")
def fd_subdomain_solver(small_geometry) -> FDSubdomainSolver:
    return FDSubdomainSolver(small_geometry.subdomain_grid(), method="direct")


@pytest.fixture(scope="session")
def tiny_dataset():
    """A 16-sample SDNet dataset on a 9x9 grid (session-scoped: generated once)."""

    return generate_dataset(num_samples=16, resolution=9, extent=(0.5, 0.5), seed=3)
