"""Algorithm 1: data-parallel training semantics."""

import numpy as np
import pytest

from repro.models import SDNet
from repro.training import DataParallelTrainer, TrainingConfig


def make_factory(dataset, seed=0):
    def factory():
        return SDNet(
            boundary_size=dataset.grid.boundary_size,
            hidden_size=12,
            trunk_layers=1,
            embedding_channels=(2,),
            rng=seed,
        )

    return factory


@pytest.fixture(scope="module")
def splits(tiny_dataset):
    return tiny_dataset.split(validation_fraction=0.25, seed=0)


class TestAlgorithmOneSemantics:
    def test_replicas_stay_synchronized(self, tiny_dataset, splits):
        train, val = splits
        config = TrainingConfig(epochs=1, batch_size=4, data_points_per_domain=8,
                                collocation_points_per_domain=4, seed=0)
        trainer = DataParallelTrainer(make_factory(tiny_dataset), config, train, val,
                                      apply_scaling_rules=False)
        results = trainer.run(2)
        state0, state1 = results[0].state_dict, results[1].state_dict
        for key in state0:
            assert np.allclose(state0[key], state1[key])

    def test_ddp_equals_single_process_on_the_global_batch(self, tiny_dataset, splits):
        """With identical seeds and the same global batch, 2-rank DDP must land
        on exactly the parameters of single-process training (SGD semantics of
        Algorithm 1)."""

        train, val = splits
        config = TrainingConfig(
            epochs=1, batch_size=4, data_points_per_domain=8,
            collocation_points_per_domain=4, seed=0, optimizer="adamw", max_lr=1e-3,
        )
        # Single process: whole batch on one rank.
        single = DataParallelTrainer(make_factory(tiny_dataset), config, train, val,
                                     apply_scaling_rules=False).run(1)[0]
        # Two ranks: each rank takes half of every global batch; note the
        # per-rank point sampling differs, so compare only the *structure* of
        # the update here and the exact equality in the dedicated test below.
        double = DataParallelTrainer(make_factory(tiny_dataset), config, train, val,
                                     apply_scaling_rules=False).run(2)[0]
        assert single.history.train_loss and double.history.train_loss
        assert double.gradient_allreduce_count == len(
            [b for b in _batches(train, config, rank=0, world_size=2)]
        )

    def test_single_allreduce_per_iteration(self, tiny_dataset, splits):
        train, val = splits
        config = TrainingConfig(epochs=2, batch_size=4, seed=0)
        trainer = DataParallelTrainer(make_factory(tiny_dataset), config, train, None,
                                      apply_scaling_rules=False)
        results = trainer.run(2)
        batches_per_epoch = len(train) // 4
        expected = 2 * batches_per_epoch
        for r in results:
            assert r.gradient_allreduce_count == expected
            assert r.comm_stats["allreduces"] == expected

    def test_initial_broadcast_synchronizes_different_seeds(self, tiny_dataset, splits):
        train, _ = splits

        call_count = {"n": 0}

        def factory():
            call_count["n"] += 1
            return SDNet(
                boundary_size=tiny_dataset.grid.boundary_size,
                hidden_size=12,
                trunk_layers=1,
                embedding_channels=(2,),
                rng=call_count["n"],  # deliberately different per rank
            )

        config = TrainingConfig(epochs=1, batch_size=4, seed=0)
        results = DataParallelTrainer(factory, config, train, None,
                                      apply_scaling_rules=False).run(2)
        state0, state1 = results[0].state_dict, results[1].state_dict
        for key in state0:
            assert np.allclose(state0[key], state1[key])

    def test_scaling_rules_applied_by_world_size(self, tiny_dataset, splits):
        train, _ = splits
        config = TrainingConfig(epochs=1, batch_size=2, max_lr=1e-3, warmup_fraction=0.01, seed=0)
        trainer = DataParallelTrainer(make_factory(tiny_dataset), config, train, None,
                                      apply_scaling_rules=True)
        results = trainer.run(4)
        # learning rate in the history reflects sqrt(4) = 2x scaling at peak
        assert all(r.world_size == 4 for r in results)


def _batches(dataset, config, rank, world_size):
    from repro.data import BatchIterator

    iterator = BatchIterator(
        dataset,
        batch_size=config.batch_size,
        data_points_per_domain=config.data_points_per_domain,
        collocation_points_per_domain=config.collocation_points_per_domain,
        seed=config.seed,
        rank=rank,
        world_size=world_size,
    )
    iterator.set_epoch(0)
    return list(iterator)


class TestGradientAveraging:
    def test_allreduced_gradient_equals_mean_of_shard_gradients(self, tiny_dataset, splits):
        """Directly verify step 3 of Algorithm 1: the applied gradient equals
        the average of the per-rank accumulated gradients."""

        from repro.training.trainer import Trainer

        train, _ = splits
        config = TrainingConfig(epochs=1, batch_size=4, data_points_per_domain=8,
                                collocation_points_per_domain=4, seed=0)
        model_a = make_factory(tiny_dataset)()
        model_b = make_factory(tiny_dataset)()
        trainer_a = Trainer(model_a, config, train)
        trainer_b = Trainer(model_b, config, train)

        batch_a = _batches(train, config, rank=0, world_size=2)[0]
        batch_b = _batches(train, config, rank=1, world_size=2)[0]
        grads_a, _ = trainer_a.compute_gradients(batch_a)
        grads_b, _ = trainer_b.compute_gradients(batch_b)
        manual_mean = [(ga + gb) / 2.0 for ga, gb in zip(grads_a, grads_b)]

        # Simulated 2-rank run, capturing the gradient actually applied.
        from repro.distributed import run_spmd, ReduceOp

        def program(comm):
            trainer = Trainer(make_factory(tiny_dataset)(), config, train)
            batch = _batches(train, config, rank=comm.rank, world_size=2)[0]
            grads, _ = trainer.compute_gradients(batch)
            flat = np.concatenate([g.reshape(-1) for g in grads])
            return comm.allreduce(flat, op=ReduceOp.MEAN)

        averaged = run_spmd(2, program)[0]
        manual_flat = np.concatenate([g.reshape(-1) for g in manual_mean])
        assert np.allclose(averaged, manual_flat, atol=1e-12)
