"""Single-device training, metrics and the Table 3 memory study."""

import numpy as np
import pytest

from repro.models import SDNet
from repro.training import (
    EvaluationMetrics,
    Trainer,
    TrainingConfig,
    evaluate_validation_mse,
    mae,
    max_error,
    measure_training_memory,
    mse,
    relative_l2,
)


class TestMetrics:
    def test_values(self):
        pred = np.array([1.0, 2.0, 4.0])
        target = np.array([1.0, 1.0, 1.0])
        assert mse(pred, target) == pytest.approx(10.0 / 3.0)
        assert mae(pred, target) == pytest.approx(4.0 / 3.0)
        assert max_error(pred, target) == pytest.approx(3.0)
        assert relative_l2(pred, target) == pytest.approx(np.sqrt(10.0) / np.sqrt(3.0))

    def test_zero_target_relative_error(self):
        assert relative_l2(np.array([1.0]), np.array([0.0])) == pytest.approx(1.0)

    def test_evaluation_metrics_container(self):
        metrics = EvaluationMetrics(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        assert metrics.as_dict() == {"mse": 0.0, "mae": 0.0, "max_error": 0.0, "relative_l2": 0.0}


def make_model(dataset, seed=0):
    return SDNet(
        boundary_size=dataset.grid.boundary_size,
        hidden_size=16,
        trunk_layers=2,
        embedding_channels=(2,),
        rng=seed,
    )


class TestTrainer:
    def test_loss_decreases_over_epochs(self, tiny_dataset):
        train, val = tiny_dataset.split(validation_fraction=0.25, seed=0)
        config = TrainingConfig(
            epochs=3, batch_size=4, data_points_per_domain=16,
            collocation_points_per_domain=8, max_lr=2e-3, seed=0,
        )
        trainer = Trainer(make_model(tiny_dataset), config, train, val)
        history = trainer.fit()
        assert len(history.train_loss) == 3
        assert history.train_loss[-1] < history.train_loss[0]
        assert len(history.validation_mse) == 3
        assert all(np.isfinite(history.validation_mse))

    def test_pure_data_training_without_pde_loss(self, tiny_dataset):
        train, val = tiny_dataset.split(validation_fraction=0.25, seed=0)
        config = TrainingConfig(epochs=1, batch_size=4, use_pde_loss=False, seed=1)
        trainer = Trainer(make_model(tiny_dataset), config, train, val)
        history = trainer.fit()
        assert history.train_pde_loss[0] == 0.0

    def test_gradient_computation_structure(self, tiny_dataset):
        config = TrainingConfig(epochs=1, batch_size=4, data_points_per_domain=8,
                                collocation_points_per_domain=4)
        model = make_model(tiny_dataset)
        trainer = Trainer(model, config, tiny_dataset)
        batch = next(iter(trainer._iterator(0, 1)))
        grads, losses = trainer.compute_gradients(batch)
        assert len(grads) == len(model.parameters())
        assert all(g.shape == p.data.shape for g, p in zip(grads, model.parameters()))
        assert losses["total"] == pytest.approx(losses["data"] + losses["pde"])

    def test_history_epochs_to_reach(self, tiny_dataset):
        from repro.training import TrainingHistory

        history = TrainingHistory(validation_mse=[0.5, 0.1, 0.01])
        assert history.epochs_to_reach(0.2) == 2
        assert history.epochs_to_reach(1e-9) is None
        assert history.best_validation_mse() == pytest.approx(0.01)

    def test_invalid_optimizer_name(self, tiny_dataset):
        config = TrainingConfig(optimizer="rmsprop")
        with pytest.raises(ValueError):
            Trainer(make_model(tiny_dataset), config, tiny_dataset)

    def test_evaluate_validation_mse_bounds_instances(self, tiny_dataset, small_sdnet):
        full = evaluate_validation_mse(small_sdnet, tiny_dataset)
        partial = evaluate_validation_mse(small_sdnet, tiny_dataset, max_instances=4)
        assert np.isfinite(full) and np.isfinite(partial)


class TestMemoryStudy:
    def test_pde_loss_inflates_graph_memory(self, tiny_dataset):
        model = make_model(tiny_dataset)
        without = measure_training_memory(model, num_domains=4, points_per_domain=16,
                                           with_pde_loss=False)
        with_pde = measure_training_memory(model, num_domains=4, points_per_domain=16,
                                           with_pde_loss=True)
        assert with_pde.graph_bytes > 3 * without.graph_bytes
        assert with_pde.tensor_count > without.tensor_count

    def test_memory_grows_with_domain_count(self, tiny_dataset):
        model = make_model(tiny_dataset)
        small = measure_training_memory(model, num_domains=2, with_pde_loss=True)
        large = measure_training_memory(model, num_domains=8, with_pde_loss=True)
        assert large.graph_bytes > 2 * small.graph_bytes

    def test_oom_projection(self, tiny_dataset):
        model = make_model(tiny_dataset)
        report = measure_training_memory(model, num_domains=2, with_pde_loss=True)
        assert not report.would_oom()           # tiny model fits a 16 GB budget
        assert report.would_oom(budget_bytes=1)  # but not a 1-byte budget
        assert report.gigabytes > 0
