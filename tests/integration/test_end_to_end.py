"""End-to-end integration tests: data -> training -> Mosaic Flow inference.

These mirror the paper's full pipeline on a miniature problem: generate a GP
dataset on the small training domain, train an SDNet with the physics loss,
and use the trained model as the subdomain solver of the (distributed) Mosaic
Flow predictor on a larger unseen domain.
"""

import numpy as np
import pytest

from repro.data import generate_dataset
from repro.fd import solve_laplace_from_loop
from repro.models import SDNet
from repro.mosaic import (
    DistributedMosaicFlowPredictor,
    FDSubdomainSolver,
    MosaicFlowPredictor,
    MosaicGeometry,
    SDNetSubdomainSolver,
)
from repro.pde import HARMONIC_FUNCTIONS
from repro.training import DataParallelTrainer, Trainer, TrainingConfig, mae


@pytest.fixture(scope="module")
def trained_setup():
    """Train a tiny SDNet for a few epochs on a coarse dataset."""

    dataset = generate_dataset(num_samples=48, resolution=9, extent=(0.5, 0.5), seed=0)
    train, val = dataset.split(validation_fraction=0.125, seed=0)
    model = SDNet(
        boundary_size=dataset.grid.boundary_size,
        hidden_size=24,
        trunk_layers=2,
        embedding_channels=(2,),
        rng=0,
    )
    config = TrainingConfig(
        epochs=4, batch_size=8, data_points_per_domain=32,
        collocation_points_per_domain=16, max_lr=3e-3, seed=0,
    )
    trainer = Trainer(model, config, train, val)
    history = trainer.fit()
    return dataset, model, history


class TestTrainingPipeline:
    def test_validation_mse_improves(self, trained_setup):
        _, _, history = trained_setup
        assert history.validation_mse[-1] < history.validation_mse[0]

    def test_trained_model_beats_untrained_on_held_out_data(self, trained_setup):
        dataset, model, _ = trained_setup
        untrained = SDNet(
            boundary_size=dataset.grid.boundary_size, hidden_size=24, trunk_layers=2,
            embedding_channels=(2,), rng=123,
        )
        boundaries, x, u = dataset.full_grid_batch(np.arange(8))
        trained_error = mae(model.predict(boundaries, x), u)
        untrained_error = mae(untrained.predict(boundaries, x), u)
        assert trained_error < untrained_error


class TestFullMosaicFlowPipeline:
    def test_trained_sdnet_drives_the_mfp_on_a_larger_domain(self, trained_setup):
        dataset, model, _ = trained_setup
        # A domain 2x larger per side than the training subdomain.
        geometry = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=4, steps_y=4)
        grid = geometry.global_grid()
        loop = grid.boundary_from_function(HARMONIC_FUNCTIONS["product"])
        reference = solve_laplace_from_loop(grid, loop, method="direct")

        neural = MosaicFlowPredictor(geometry, SDNetSubdomainSolver(model), batched=True)
        neural_result = neural.run(loop, max_iterations=40, tol=1e-6, reference=reference)
        neural_mae = np.mean(np.abs(neural_result.solution - reference))

        # The briefly-trained network will not be pyAMG-accurate, but it must
        # produce a bounded, finite field that is far better than an untrained
        # network and in the right value range.
        assert np.all(np.isfinite(neural_result.solution))
        untrained = SDNet(
            boundary_size=dataset.grid.boundary_size, hidden_size=24, trunk_layers=2,
            embedding_channels=(2,), rng=321,
        )
        untrained_result = MosaicFlowPredictor(
            geometry, SDNetSubdomainSolver(untrained), batched=True
        ).run(loop, max_iterations=40, tol=1e-6, reference=reference)
        untrained_mae = np.mean(np.abs(untrained_result.solution - reference))
        assert neural_mae < untrained_mae

    def test_distributed_and_sequential_neural_mfp_agree_on_one_rank(self, trained_setup):
        dataset, model, _ = trained_setup
        geometry = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=4, steps_y=4)
        grid = geometry.global_grid()
        loop = grid.boundary_from_function(HARMONIC_FUNCTIONS["saddle"])

        sequential = MosaicFlowPredictor(geometry, SDNetSubdomainSolver(model))
        seq_result = sequential.run(loop, max_iterations=12, tol=0.0)
        distributed = DistributedMosaicFlowPredictor(
            geometry, lambda: SDNetSubdomainSolver(model)
        )
        dist_result = distributed.run(1, loop, max_iterations=12, tol=0.0)[0]
        assert np.allclose(dist_result.solution, seq_result.solution)

    def test_exact_subdomain_solver_pipeline_reaches_paper_accuracy_threshold(self):
        """With the exact subdomain solver, the distributed MFP reaches the
        paper's MAE 0.05 stopping threshold on a GP boundary condition."""

        from repro.data import GaussianProcessSampler

        geometry = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=4, steps_y=4)
        grid = geometry.global_grid()
        sampler = GaussianProcessSampler(boundary_size=grid.boundary_size, perimeter=4.0, seed=9)
        loop = sampler.sample_one()
        reference = solve_laplace_from_loop(grid, grid.extract_boundary(grid.insert_boundary(loop)))

        predictor = DistributedMosaicFlowPredictor(
            geometry, lambda: FDSubdomainSolver(geometry.subdomain_grid())
        )
        results = predictor.run(
            2, loop, max_iterations=400, tol=0.0, reference=reference, target_mae=0.05
        )
        assert results[0].converged
        assert results[0].mae_history[-1][1] < 0.05


class TestDataParallelIntegration:
    def test_ddp_training_then_inference(self, trained_setup):
        dataset, _, _ = trained_setup
        train, val = dataset.split(validation_fraction=0.125, seed=1)

        def factory():
            return SDNet(
                boundary_size=dataset.grid.boundary_size, hidden_size=16, trunk_layers=1,
                embedding_channels=(2,), rng=5,
            )

        config = TrainingConfig(epochs=1, batch_size=8, data_points_per_domain=16,
                                collocation_points_per_domain=8, seed=0)
        results = DataParallelTrainer(factory, config, train, val,
                                      apply_scaling_rules=False).run(2)
        model = factory()
        model.load_state_dict(results[0].state_dict)

        geometry = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=4, steps_y=4)
        grid = geometry.global_grid()
        loop = grid.boundary_from_function(HARMONIC_FUNCTIONS["linear"])
        result = MosaicFlowPredictor(geometry, SDNetSubdomainSolver(model)).run(
            loop, max_iterations=8, tol=0.0
        )
        assert np.all(np.isfinite(result.solution))
