"""Mosaic interface-lattice geometry."""

import numpy as np
import pytest

from repro.mosaic import PHASE_OFFSETS, MosaicGeometry


class TestConstruction:
    def test_derived_sizes(self):
        geo = MosaicGeometry(subdomain_points=33, subdomain_extent=0.5, steps_x=8, steps_y=4)
        assert geo.half == 16
        assert geo.global_nx == 8 * 16 + 1
        assert geo.global_ny == 4 * 16 + 1
        assert geo.global_extent == (2.0, 1.0)
        assert geo.anchor_rows == 3 and geo.anchor_cols == 7
        assert geo.num_subdomains == 21
        assert geo.spacing == pytest.approx(0.5 / 32)

    def test_validation(self):
        with pytest.raises(ValueError):
            MosaicGeometry(subdomain_points=32, subdomain_extent=0.5, steps_x=4, steps_y=4)
        with pytest.raises(ValueError):
            MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=1, steps_y=4)
        with pytest.raises(ValueError):
            MosaicGeometry(subdomain_points=9, subdomain_extent=-1.0, steps_x=4, steps_y=4)

    def test_from_domain_size(self):
        geo = MosaicGeometry.from_domain_size((2.0, 2.0), subdomain_points=33, subdomain_extent=0.5)
        assert geo.steps_x == 8 and geo.steps_y == 8
        with pytest.raises(ValueError):
            MosaicGeometry.from_domain_size((2.1, 2.0), subdomain_points=33)

    def test_from_domain_size_too_small_raises_clearly(self):
        # a domain smaller than one subdomain must fail with an actionable
        # message, not a misleading "not a multiple" error (or an empty
        # anchor list downstream)
        with pytest.raises(ValueError, match="too small for a single"):
            MosaicGeometry.from_domain_size((0.2, 2.0), subdomain_extent=0.5)
        with pytest.raises(ValueError, match="too small for a single"):
            MosaicGeometry.from_domain_size((2.0, 0.25), subdomain_extent=0.5)
        with pytest.raises(ValueError, match="positive"):
            MosaicGeometry.from_domain_size((0.0, 2.0))

    def test_half_subdomain_domain_names_anchor_requirement(self):
        # 0.25 x 2.0 with 0.5 subdomains -> steps (1, 8): no anchor fits
        with pytest.raises(ValueError, match="anchor"):
            MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=1, steps_y=8)

    def test_scaled(self):
        geo = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=2, steps_y=2)
        big = geo.scaled(4)
        assert big.steps_x == 8 and big.num_subdomains == 49
        with pytest.raises(ValueError):
            geo.scaled(0)

    def test_grids_share_spacing(self, small_geometry):
        assert small_geometry.global_grid().hx == pytest.approx(
            small_geometry.subdomain_grid().hx
        )


class TestAnchorsAndPhases:
    def test_anchor_count(self, small_geometry):
        anchors = small_geometry.anchors()
        assert len(anchors) == small_geometry.num_subdomains
        assert (0, 0) in anchors

    def test_phases_partition_all_anchors(self, small_geometry):
        union = []
        for phase in range(len(PHASE_OFFSETS)):
            union.extend(small_geometry.anchors_for_phase(phase))
        assert sorted(union) == sorted(small_geometry.anchors())
        # phases are disjoint
        assert len(union) == len(set(union))

    def test_phase_subdomains_do_not_overlap(self):
        geo = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=8, steps_y=8)
        for phase in range(4):
            covered = np.zeros((geo.global_ny, geo.global_nx), dtype=int)
            m = geo.subdomain_points
            for anchor in geo.anchors_for_phase(phase):
                r0, c0 = geo.anchor_window(anchor)
                covered[r0: r0 + m, c0: c0 + m] += 1
            # Interiors never overlap within a phase; only shared edges/corners
            # may be touched by up to four tiles.
            assert covered.max() <= 4
            rows, cols = np.where(covered[1:-1, 1:-1] > 1)
            # overlapping points may only lie on shared subdomain edges (lattice lines)
            assert all(
                (r + 1) % geo.half == 0 or (c + 1) % geo.half == 0
                for r, c in zip(rows, cols)
            )

    def test_anchor_window_bounds(self, small_geometry):
        with pytest.raises(ValueError):
            small_geometry.anchor_window((99, 0))
        assert small_geometry.anchor_window((1, 2)) == (
            small_geometry.half,
            2 * small_geometry.half,
        )


class TestIndexSets:
    def test_center_lines_exclude_endpoints_and_count(self, small_geometry):
        rows, cols = small_geometry.center_line_local_indices()
        m, h = small_geometry.subdomain_points, small_geometry.half
        assert len(rows) == (m - 2) + (m - 3)
        # no point lies on the subdomain boundary
        assert rows.min() >= 1 and rows.max() <= m - 2
        assert cols.min() >= 1 and cols.max() <= m - 2
        # every point is on one of the two centre lines and the centre appears once
        on_lines = (rows == h) | (cols == h)
        assert np.all(on_lines)
        assert np.sum((rows == h) & (cols == h)) == 1

    def test_center_line_coordinates_match_indices(self, small_geometry):
        rows, cols = small_geometry.center_line_local_indices()
        coords = small_geometry.center_line_local_coordinates()
        assert np.allclose(coords[:, 0], cols * small_geometry.spacing)
        assert np.allclose(coords[:, 1], rows * small_geometry.spacing)

    def test_interior_indices_cover_interior(self, small_geometry):
        rows, cols = small_geometry.interior_local_indices()
        m = small_geometry.subdomain_points
        assert len(rows) == (m - 2) ** 2

    def test_lattice_mask_structure(self, small_geometry):
        mask = small_geometry.lattice_mask()
        assert mask[0, :].all() and mask[:, 0].all()
        assert mask[small_geometry.half, :].all()
        assert not mask[1, 1]

    def test_every_interior_lattice_point_is_updated_by_some_anchor(self):
        """Coverage invariant: the union of all centre lines over all anchors
        equals the interior lattice points."""

        geo = MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=6, steps_y=4)
        updated = np.zeros((geo.global_ny, geo.global_nx), dtype=bool)
        crow, ccol = geo.center_line_local_indices()
        for anchor in geo.anchors():
            r0, c0 = geo.anchor_window(anchor)
            updated[r0 + crow, c0 + ccol] = True
        lattice = geo.lattice_mask()
        boundary = np.zeros_like(lattice)
        boundary[0, :] = boundary[-1, :] = True
        boundary[:, 0] = boundary[:, -1] = True
        expected = lattice & ~boundary
        assert np.array_equal(updated, expected)
