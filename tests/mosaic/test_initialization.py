"""Lattice-field initialization modes against exact harmonic solutions.

``initialize_lattice_field`` sets up the starting iterate of every Mosaic
Flow predictor: exact Dirichlet data on the global boundary, interior filled
by the chosen mode.  These tests pin the contract of each mode against
analytically known harmonic solutions — and that the warm starts actually
rank as warm starts (linear beats mean beats zero on a generic problem).
"""

import numpy as np
import pytest

from repro.mosaic import MosaicGeometry, initialize_lattice_field
from repro.pde import HARMONIC_FUNCTIONS


@pytest.fixture(scope="module")
def geometry():
    return MosaicGeometry(subdomain_points=9, subdomain_extent=0.5, steps_x=4, steps_y=4)


def _problem(geometry, name):
    grid = geometry.global_grid()
    exact = grid.field_from_function(HARMONIC_FUNCTIONS[name])
    return grid, grid.extract_boundary(exact), exact


class TestModeContracts:
    @pytest.mark.parametrize("name", sorted(HARMONIC_FUNCTIONS))
    @pytest.mark.parametrize("mode", ["zero", "mean", "linear"])
    def test_boundary_is_exact_for_every_mode(self, geometry, name, mode):
        grid, loop, exact = _problem(geometry, name)
        field = initialize_lattice_field(geometry, loop, mode)
        mask = grid.boundary_mask()
        np.testing.assert_allclose(field[mask], exact[mask], atol=1e-12)

    @pytest.mark.parametrize("name", sorted(HARMONIC_FUNCTIONS))
    def test_zero_mode_clears_interior(self, geometry, name):
        _, loop, _ = _problem(geometry, name)
        field = initialize_lattice_field(geometry, loop, "zero")
        assert np.all(field[1:-1, 1:-1] == 0.0)

    @pytest.mark.parametrize("name", sorted(HARMONIC_FUNCTIONS))
    def test_mean_mode_fills_interior_with_boundary_mean(self, geometry, name):
        _, loop, _ = _problem(geometry, name)
        field = initialize_lattice_field(geometry, loop, "mean")
        np.testing.assert_allclose(field[1:-1, 1:-1], loop.mean(), atol=1e-12)

    def test_linear_mode_reproduces_linear_harmonics_exactly(self, geometry):
        # u(x,y) = ax + by + c is both harmonic and transfinite-bilinear, so
        # the Coons-patch warm start *is* the exact solution.
        grid, loop, exact = _problem(geometry, "linear")
        field = initialize_lattice_field(geometry, loop, "linear")
        np.testing.assert_allclose(field, exact, atol=1e-12)

    def test_linear_mode_reproduces_bilinear_fields_exactly(self, geometry):
        # The product harmonic u = xy is bilinear: also reproduced exactly.
        grid, loop, exact = _problem(geometry, "product")
        field = initialize_lattice_field(geometry, loop, "linear")
        np.testing.assert_allclose(field, exact, atol=1e-12)

    def test_invalid_mode_raises(self, geometry):
        _, loop, _ = _problem(geometry, "linear")
        with pytest.raises(ValueError, match="mode"):
            initialize_lattice_field(geometry, loop, "warmstart")


class TestWarmStartQuality:
    def test_linear_start_is_closest_on_polynomial_harmonics(self, geometry):
        # On low-order polynomial harmonics the bilinear blend must start
        # closer to the exact solution than the constant fills.  (Oscillatory
        # harmonics like sin_cosh can defeat the Coons patch — the blend of
        # four wavy edges overshoots — so no ranking is asserted there.)
        for name in ("saddle", "cubic", "product"):
            _, loop, exact = _problem(geometry, name)
            errors = {
                mode: np.mean(
                    np.abs(initialize_lattice_field(geometry, loop, mode) - exact)
                )
                for mode in ("zero", "mean", "linear")
            }
            assert errors["linear"] < errors["mean"]
            assert errors["linear"] < errors["zero"]
